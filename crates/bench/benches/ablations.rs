//! Ablation benches for the design choices called out in DESIGN.md.
//!
//! Each group prints the *quality* impact of the ablated choice (admitted
//! volume over a few seeds) and then times the variants, so the log shows
//! both what the knob buys and what it costs.

use criterion::{criterion_group, criterion_main, Criterion};
use edgerep_bench::representative_instance;
use edgerep_core::appro::{Appro, ApproConfig, QueryOrder};
use edgerep_workload::{generate_instance, WorkloadParams};
use std::hint::black_box;

fn quality(cfg: ApproConfig) -> f64 {
    let params = WorkloadParams::default();
    (0..5u64)
        .map(|seed| {
            let inst = generate_instance(&params, seed);
            let sol = Appro::with_config(cfg).run(&inst).solution;
            sol.admitted_volume(&inst)
        })
        .sum::<f64>()
        / 5.0
}

/// Ablation 1: the multiplicative price base `μ` (theory: `1 + |V|`).
fn ablation_price_mu(c: &mut Criterion) {
    println!("\n== ablation: primal-dual price base μ (mean admitted volume, 5 seeds) ==");
    for (label, mu) in [
        ("theory (1+|V|)", None),
        ("mu=2", Some(2.0)),
        ("mu=16", Some(16.0)),
        ("mu=1024", Some(1024.0)),
    ] {
        let cfg = ApproConfig {
            price_mu: mu,
            ..Default::default()
        };
        println!("  {label:>16}: {:8.2} GB", quality(cfg));
    }
    let inst = representative_instance(32, 7, 3);
    let mut g = c.benchmark_group("ablation_price_mu");
    g.sample_size(10);
    for (label, mu) in [("theory", None), ("mu=2", Some(2.0))] {
        let cfg = ApproConfig {
            price_mu: mu,
            ..Default::default()
        };
        g.bench_function(label, |b| {
            b.iter(|| black_box(Appro::with_config(cfg).run(black_box(&inst))))
        });
    }
    g.finish();
}

/// Ablation 2: the query commit order (paper: global cheapest-first).
fn ablation_query_order(c: &mut Criterion) {
    println!("\n== ablation: query commit order (mean admitted volume, 5 seeds) ==");
    let orders = [
        ("global-cheapest", QueryOrder::GlobalCheapestFirst),
        ("input", QueryOrder::Input),
        ("volume-desc", QueryOrder::VolumeDesc),
        ("deadline-asc", QueryOrder::DeadlineAsc),
    ];
    for (label, order) in orders {
        let cfg = ApproConfig {
            order,
            ..Default::default()
        };
        println!("  {label:>16}: {:8.2} GB", quality(cfg));
    }
    let inst = representative_instance(32, 7, 3);
    let mut g = c.benchmark_group("ablation_query_order");
    g.sample_size(10);
    for (label, order) in orders {
        let cfg = ApproConfig {
            order,
            ..Default::default()
        };
        g.bench_function(label, |b| {
            b.iter(|| black_box(Appro::with_config(cfg).run(black_box(&inst))))
        });
    }
    g.finish();
}

/// Ablation 3: the replica price term (replica reuse incentive).
fn ablation_replica_price(c: &mut Criterion) {
    println!("\n== ablation: replica price weight (mean admitted volume, 5 seeds) ==");
    for (label, w) in [("on (1.0)", 1.0), ("strong (4.0)", 4.0), ("off (0.0)", 0.0)] {
        let cfg = ApproConfig {
            replica_weight: w,
            ..Default::default()
        };
        println!("  {label:>16}: {:8.2} GB", quality(cfg));
    }
    let inst = representative_instance(32, 7, 3);
    let mut g = c.benchmark_group("ablation_replica_price");
    g.sample_size(10);
    for (label, w) in [("on", 1.0), ("off", 0.0)] {
        let cfg = ApproConfig {
            replica_weight: w,
            ..Default::default()
        };
        g.bench_function(label, |b| {
            b.iter(|| black_box(Appro::with_config(cfg).run(black_box(&inst))))
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    ablation_price_mu,
    ablation_query_order,
    ablation_replica_price
);
criterion_main!(ablations);
