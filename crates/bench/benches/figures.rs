//! One Criterion group per evaluation figure.
//!
//! Before timing, each group prints the regenerated series (3 seeds per
//! point, the `--quick` setting of the `repro` binary) so the bench log is
//! itself a reproduction record; the timed portion benchmarks each
//! algorithm of the figure's panel on a representative workload point.
//! Full-fidelity series (15 seeds) come from
//! `cargo run -p edgerep-exp --release --bin repro -- all`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use edgerep_bench::representative_instance;
use edgerep_exp::report::render_text;
use edgerep_testbed::{build_testbed_instance, run_testbed, SimConfig, TestbedConfig};
use std::hint::black_box;

const PRINT_SEEDS: usize = 3;

fn bench_panel(
    c: &mut Criterion,
    group: &str,
    inst: &edgerep_model::Instance,
    panel: Vec<edgerep_core::BoxedAlgorithm>,
) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    for alg in panel {
        g.bench_function(alg.name(), |b| {
            b.iter(|| black_box(alg.solve(black_box(inst))))
        });
    }
    g.finish();
}

fn fig2_special_case(c: &mut Criterion) {
    println!("{}", render_text(&edgerep_exp::figures::fig2(PRINT_SEEDS)));
    let inst = representative_instance(100, 1, 3);
    bench_panel(c, "fig2_special_case", &inst, edgerep_core::special_panel());
}

fn fig3_general_case(c: &mut Criterion) {
    println!("{}", render_text(&edgerep_exp::figures::fig3(PRINT_SEEDS)));
    let inst = representative_instance(100, 7, 3);
    bench_panel(
        c,
        "fig3_general_case",
        &inst,
        edgerep_core::simulation_panel(),
    );
}

fn fig4_vary_f(c: &mut Criterion) {
    println!("{}", render_text(&edgerep_exp::figures::fig4(PRINT_SEEDS)));
    let inst = representative_instance(32, 5, 3);
    bench_panel(c, "fig4_vary_f", &inst, edgerep_core::simulation_panel());
}

fn fig5_vary_k(c: &mut Criterion) {
    println!("{}", render_text(&edgerep_exp::figures::fig5(PRINT_SEEDS)));
    let inst = representative_instance(32, 7, 7);
    bench_panel(c, "fig5_vary_k", &inst, edgerep_core::simulation_panel());
}

fn fig7_testbed_vary_f(c: &mut Criterion) {
    println!("{}", render_text(&edgerep_exp::figures::fig7(PRINT_SEEDS)));
    let cfg = TestbedConfig::default().with_max_datasets_per_query(3);
    let world = build_testbed_instance(&cfg, 42);
    let sim = SimConfig::default();
    let mut g = c.benchmark_group("fig7_testbed_vary_f");
    g.sample_size(10);
    g.bench_function("Appro-G/testbed-run", |b| {
        b.iter_batched(
            || world.clone(),
            |w| {
                black_box(run_testbed(
                    &edgerep_core::appro::ApproG::default(),
                    &w,
                    &sim,
                ))
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("Popularity-G/testbed-run", |b| {
        b.iter_batched(
            || world.clone(),
            |w| {
                black_box(run_testbed(
                    &edgerep_core::popularity::Popularity::general(),
                    &w,
                    &sim,
                ))
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn fig8_testbed_vary_k(c: &mut Criterion) {
    println!("{}", render_text(&edgerep_exp::figures::fig8(PRINT_SEEDS)));
    let cfg = TestbedConfig::default().with_max_replicas(5);
    let world = build_testbed_instance(&cfg, 42);
    let sim = SimConfig::default();
    let mut g = c.benchmark_group("fig8_testbed_vary_k");
    g.sample_size(10);
    for k in [1usize, 4, 7] {
        let cfg_k = TestbedConfig::default().with_max_replicas(k);
        let world_k = build_testbed_instance(&cfg_k, 42);
        g.bench_function(format!("Appro-G/K={k}"), |b| {
            b.iter(|| {
                black_box(run_testbed(
                    &edgerep_core::appro::ApproG::default(),
                    &world_k,
                    &sim,
                ))
            })
        });
    }
    let _ = world;
    g.finish();
}

criterion_group!(
    figures,
    fig2_special_case,
    fig3_general_case,
    fig4_vary_f,
    fig5_vary_k,
    fig7_testbed_vary_f,
    fig8_testbed_vary_k
);
criterion_main!(figures);
