//! Overhead of the `edgerep-obs` instrumentation on solver hot paths.
//!
//! The acceptance bar for the observability layer is that with
//! `EDGEREP_OBS` unset the instrumented code is within noise of an
//! uninstrumented build: the disabled path is one relaxed atomic load per
//! span/emit site plus a handful of unconditional relaxed adds at
//! end-of-solve flush. The `disabled` vs `enabled` groups below quantify
//! exactly that gap on the same instance; `disabled` is the number to
//! compare against historical baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use edgerep_bench::representative_instance;
use edgerep_core::appro::ApproG;
use edgerep_core::{BoxedAlgorithm, PlacementAlgorithm};
use edgerep_exp::runner::run_simulation_point;
use edgerep_obs as obs;
use edgerep_workload::WorkloadParams;
use std::hint::black_box;

/// Appro-G on a representative instance, observability disabled vs fully
/// enabled (no trace sink attached — measures tallying + span clocks, not
/// I/O).
fn obs_solver_overhead(c: &mut Criterion) {
    let inst = representative_instance(32, 7, 3);
    let mut g = c.benchmark_group("obs_overhead_appro_g");
    g.sample_size(30);
    obs::disable();
    g.bench_function("disabled", |b| {
        b.iter(|| black_box(ApproG::default().solve(black_box(&inst))))
    });
    obs::enable_all();
    g.bench_function("enabled", |b| {
        b.iter(|| black_box(ApproG::default().solve(black_box(&inst))))
    });
    obs::disable();
    obs::reset_registry();
    g.finish();
}

/// A full simulation point (panel × seeds through `par_map`), the path the
/// ISSUE's "within noise" criterion names.
fn obs_simulation_point_overhead(c: &mut Criterion) {
    let params = WorkloadParams {
        query_count: (10, 20),
        ..Default::default()
    };
    let mut g = c.benchmark_group("obs_overhead_simulation_point");
    g.sample_size(10);
    obs::disable();
    g.bench_function("disabled", |b| {
        b.iter(|| {
            let panel: Vec<BoxedAlgorithm> = vec![Box::new(ApproG::default())];
            black_box(run_simulation_point(black_box(&params), &panel, 3))
        })
    });
    obs::enable_all();
    g.bench_function("enabled", |b| {
        b.iter(|| {
            let panel: Vec<BoxedAlgorithm> = vec![Box::new(ApproG::default())];
            black_box(run_simulation_point(black_box(&params), &panel, 3))
        })
    });
    obs::disable();
    obs::reset_registry();
    g.finish();
}

criterion_group!(
    obs_overhead,
    obs_solver_overhead,
    obs_simulation_point_overhead
);
criterion_main!(obs_overhead);
