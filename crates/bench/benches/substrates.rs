//! Substrate scaling benches: the foundations the algorithms stand on.

use criterion::{criterion_group, criterion_main, Criterion};
use edgerep_graph::partition::partition_kway;
use edgerep_graph::topology::{flat_random, FlatRandomConfig};
use edgerep_graph::{DelayMatrix, Dijkstra, NodeId};
use edgerep_lp_shim::knapsack_lp;
use edgerep_workload::mobile_trace::{generate_trace, TraceConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Tiny local shim so the bench crate does not need a direct `edgerep-lp`
/// dependency edge for one helper.
mod edgerep_lp_shim {
    use edgerep_core::ilp::lp_upper_bound;
    use edgerep_workload::{generate_instance, WorkloadParams};

    /// Builds a small instance and solves its LP relaxation.
    pub fn knapsack_lp() -> f64 {
        let params = WorkloadParams {
            data_centers: 2,
            cloudlets: 4,
            switches: 1,
            dataset_count: (4, 4),
            query_count: (8, 8),
            datasets_per_query: (1, 2),
            ..Default::default()
        };
        let inst = generate_instance(&params, 7);
        lp_upper_bound(&inst)
    }
}

fn graph_of(n: usize) -> edgerep_graph::Graph {
    let cfg = FlatRandomConfig {
        nodes: n,
        ..Default::default()
    };
    flat_random(&cfg, &mut SmallRng::seed_from_u64(1))
}

fn bench_shortest_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_shortest_paths");
    for n in [32usize, 100, 200] {
        let graph = graph_of(n);
        g.bench_function(format!("dijkstra/n={n}"), |b| {
            b.iter(|| black_box(Dijkstra::run(black_box(&graph), NodeId(0))))
        });
        g.bench_function(format!("all_pairs/n={n}"), |b| {
            b.iter(|| black_box(DelayMatrix::compute(black_box(&graph))))
        });
    }
    g.finish();
}

fn bench_partitioning(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_partitioning");
    g.sample_size(10);
    for n in [32usize, 64] {
        let graph = graph_of(n);
        g.bench_function(format!("kernighan_lin/n={n},k=4"), |b| {
            b.iter(|| black_box(partition_kway(black_box(&graph), 4)))
        });
    }
    g.finish();
}

fn bench_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_lp");
    g.sample_size(10);
    g.bench_function("lp_relaxation_small_instance", |b| {
        b.iter(|| black_box(knapsack_lp()))
    });
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_trace");
    g.sample_size(10);
    let cfg = TraceConfig {
        users: 1_000,
        apps: 100,
        days: 30,
        ..Default::default()
    };
    g.bench_function("generate_trace/15k_sessions", |b| {
        b.iter(|| black_box(generate_trace(black_box(&cfg), 5)))
    });
    g.finish();
}

fn bench_instance_generation(c: &mut Criterion) {
    use edgerep_workload::{generate_instance, WorkloadParams};
    let mut g = c.benchmark_group("substrate_instance_generation");
    for n in [32usize, 100, 200] {
        let params = WorkloadParams::default().with_network_size(n);
        g.bench_function(format!("generate/n={n}"), |b| {
            b.iter(|| black_box(generate_instance(black_box(&params), 3)))
        });
    }
    g.finish();
}

criterion_group!(
    substrates,
    bench_shortest_paths,
    bench_partitioning,
    bench_lp,
    bench_trace_generation,
    bench_instance_generation
);
criterion_main!(substrates);
