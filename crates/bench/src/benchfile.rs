//! The `BENCH_<n>.json` interchange format.
//!
//! Schema-versioned (`"schema": "edgerep-bench/v1"`) so future layout
//! changes are detectable instead of silently misread. Rendering and
//! parsing are hand-rolled over `std` only — this module must work on
//! machines without cargo registry access, which rules out serde. The
//! parser accepts exactly the JSON this module writes plus ordinary
//! whitespace/field-order variation, which is all the comparator needs.

use std::fmt::Write as _;

use crate::harness::BenchResult;

/// Current schema identifier, bumped on any layout change.
pub const SCHEMA: &str = "edgerep-bench/v1";

/// One benchmark entry of a BENCH file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Stable benchmark id.
    pub name: String,
    /// `"micro"` or `"e2e"`.
    pub kind: String,
    /// Calls averaged within each sample.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: u64,
    /// Median per-call nanoseconds (the compared statistic).
    pub median_ns: u64,
    /// Median absolute deviation of the samples.
    pub mad_ns: u64,
    /// Mean per-call nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Slowest sample.
    pub max_ns: u64,
}

/// A whole BENCH file: schema tag, creation time, entries in run order.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchFile {
    /// Schema identifier; [`SCHEMA`] for files this build writes.
    pub schema: String,
    /// Unix seconds when the run finished.
    pub created_unix_s: u64,
    /// All measured benchmarks.
    pub entries: Vec<BenchEntry>,
}

impl BenchFile {
    /// Packages harness results into a file value stamped `created_unix_s`.
    pub fn from_results(results: &[BenchResult], created_unix_s: u64) -> BenchFile {
        BenchFile {
            schema: SCHEMA.to_owned(),
            created_unix_s,
            entries: results
                .iter()
                .map(|r| BenchEntry {
                    name: r.name.clone(),
                    kind: r.kind.clone(),
                    iters_per_sample: r.iters_per_sample,
                    samples: r.samples_ns.len() as u64,
                    median_ns: r.median_ns,
                    mad_ns: r.mad_ns,
                    mean_ns: r.mean_ns,
                    min_ns: r.min_ns,
                    max_ns: r.max_ns,
                })
                .collect(),
        }
    }

    /// Entry with the given name, if present.
    pub fn entry(&self, name: &str) -> Option<&BenchEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Renders the file as pretty-printed JSON (one entry per line).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json_str(&self.schema));
        let _ = writeln!(out, "  \"created_unix_s\": {},", self.created_unix_s);
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": {}, \"kind\": {}, \"iters_per_sample\": {}, \"samples\": {}, \
                 \"median_ns\": {}, \"mad_ns\": {}, \"mean_ns\": {:.1}, \"min_ns\": {}, \"max_ns\": {}}}",
                json_str(&e.name),
                json_str(&e.kind),
                e.iters_per_sample,
                e.samples,
                e.median_ns,
                e.mad_ns,
                e.mean_ns,
                e.min_ns,
                e.max_ns
            );
            out.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a BENCH file, rejecting unknown schemas and malformed JSON.
    pub fn parse(text: &str) -> Result<BenchFile, String> {
        let root = Json::parse(text)?;
        let schema = root
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing \"schema\"")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?} (want {SCHEMA:?})"));
        }
        let created_unix_s = root
            .get("created_unix_s")
            .and_then(Json::as_u64)
            .ok_or("missing \"created_unix_s\"")?;
        let entries = root
            .get("entries")
            .and_then(Json::as_array)
            .ok_or("missing \"entries\"")?
            .iter()
            .map(|e| {
                let field = |k: &str| {
                    e.get(k)
                        .and_then(Json::as_u64)
                        .ok_or(format!("entry missing {k:?}"))
                };
                Ok(BenchEntry {
                    name: e
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("entry missing \"name\"")?
                        .to_owned(),
                    kind: e
                        .get("kind")
                        .and_then(Json::as_str)
                        .ok_or("entry missing \"kind\"")?
                        .to_owned(),
                    iters_per_sample: field("iters_per_sample")?,
                    samples: field("samples")?,
                    median_ns: field("median_ns")?,
                    mad_ns: field("mad_ns")?,
                    mean_ns: e
                        .get("mean_ns")
                        .and_then(Json::as_f64)
                        .ok_or("entry missing \"mean_ns\"")?,
                    min_ns: field("min_ns")?,
                    max_ns: field("max_ns")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(BenchFile {
            schema: schema.to_owned(),
            created_unix_s,
            entries,
        })
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON value — just enough for BENCH files.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_keyword(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, word: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("bad keyword at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        fields.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_bench, BenchSpec};

    fn sample_file() -> BenchFile {
        let r = run_bench("test.roundtrip", "micro", BenchSpec::smoke(), || {
            std::hint::black_box(1u64);
        });
        BenchFile::from_results(&[r], 1_700_000_000)
    }

    #[test]
    fn render_parse_round_trip() {
        let f = sample_file();
        let text = f.render();
        let parsed = BenchFile::parse(&text).expect("round trip");
        assert_eq!(parsed, f);
    }

    #[test]
    fn parse_rejects_wrong_schema_and_garbage() {
        let mut f = sample_file();
        f.schema = "edgerep-bench/v999".into();
        let err = BenchFile::parse(&f.render()).unwrap_err();
        assert!(err.contains("unsupported schema"), "{err}");
        assert!(BenchFile::parse("{not json").is_err());
        assert!(BenchFile::parse("{}").is_err());
        assert!(BenchFile::parse("{\"schema\": \"edgerep-bench/v1\"} x").is_err());
    }

    #[test]
    fn parse_accepts_field_reordering_and_whitespace() {
        let text = r#"
        {
          "entries": [
            {"median_ns": 10, "name": "a.b", "kind": "micro",
             "iters_per_sample": 1, "samples": 2, "mad_ns": 0,
             "mean_ns": 10.5, "min_ns": 9, "max_ns": 12}
          ],
          "created_unix_s": 5,
          "schema": "edgerep-bench/v1"
        }"#;
        let f = BenchFile::parse(text).expect("parses");
        assert_eq!(f.created_unix_s, 5);
        assert_eq!(f.entry("a.b").unwrap().median_ns, 10);
        assert_eq!(f.entry("a.b").unwrap().mean_ns, 10.5);
        assert!(f.entry("missing").is_none());
    }

    #[test]
    fn json_strings_escape_and_unescape() {
        let f = BenchFile {
            schema: SCHEMA.into(),
            created_unix_s: 0,
            entries: vec![BenchEntry {
                name: "weird\"\\\n\tname".into(),
                kind: "micro".into(),
                iters_per_sample: 1,
                samples: 1,
                median_ns: 1,
                mad_ns: 0,
                mean_ns: 1.0,
                min_ns: 1,
                max_ns: 1,
            }],
        };
        let parsed = BenchFile::parse(&f.render()).expect("escaped round trip");
        assert_eq!(parsed, f);
    }
}
