//! `bench` — zero-dependency benchmark runner and regression gate.
//!
//! ```text
//! bench run  [--out FILE] [--smoke] [--filter PAT]   measure, write BENCH json
//! bench diff OLD NEW [--threshold PCT] [--report-only]   compare two BENCH files
//! bench list                                          print suite entries
//! ```
//!
//! `bench diff` exits 1 when any entry regresses beyond the threshold
//! (default 10%) unless `--report-only` is given; usage and I/O errors
//! exit 2. `scripts/bench.sh` wraps `run` + `diff` into the per-PR
//! `BENCH_<n>.json` trajectory.

use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

use edgerep_bench::benchfile::BenchFile;
use edgerep_bench::diff::{diff, DEFAULT_THRESHOLD_PCT};
use edgerep_bench::suite::{run_suite, SuiteSpec, BENCH_NAMES};

const USAGE: &str = "usage: bench <run|diff|list> [options]
  run  [--out FILE] [--smoke] [--filter PAT]
       Measure the suite (1 warmup + 1 iteration with --smoke) and write
       a schema-versioned BENCH json to FILE (default: stdout).
  diff OLD NEW [--threshold PCT] [--report-only]
       Compare two BENCH files; exit 1 on any regression beyond PCT
       (default 10) unless --report-only.
  list
       Print every suite entry name and kind.";

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn opt_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            args.remove(i);
            if i < args.len() {
                Ok(Some(args.remove(i)))
            } else {
                Err(format!("{flag} needs a value"))
            }
        }
    }
}

fn opt_flag(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        None => false,
        Some(i) => {
            args.remove(i);
            true
        }
    }
}

fn cmd_run(mut args: Vec<String>) -> ExitCode {
    let out = match opt_value(&mut args, "--out") {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let filter = match opt_value(&mut args, "--filter") {
        Ok(v) => v,
        Err(e) => return fail(&e),
    };
    let smoke = opt_flag(&mut args, "--smoke");
    if let Some(extra) = args.first() {
        return fail(&format!("unexpected argument {extra:?}"));
    }
    let spec = if smoke {
        SuiteSpec::smoke()
    } else {
        SuiteSpec::full()
    };
    let results = run_suite(&spec, filter.as_deref(), |r| {
        eprintln!(
            "  {:<28} {:>12} ns/call (median, {} samples, MAD {} ns)",
            r.name,
            r.median_ns,
            r.samples_ns.len(),
            r.mad_ns
        );
    });
    if results.is_empty() {
        return fail("no benches matched the filter");
    }
    let created = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let rendered = BenchFile::from_results(&results, created).render();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, rendered) {
                eprintln!("bench: cannot write {path}: {e}");
                return ExitCode::from(2);
            }
            eprintln!("wrote {path} ({} entries)", results.len());
        }
        None => print!("{rendered}"),
    }
    ExitCode::SUCCESS
}

fn load(path: &str) -> Result<BenchFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchFile::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_diff(mut args: Vec<String>) -> ExitCode {
    let threshold = match opt_value(&mut args, "--threshold") {
        Ok(None) => DEFAULT_THRESHOLD_PCT,
        Ok(Some(v)) => match v.parse::<f64>() {
            Ok(pct) if pct >= 0.0 => pct,
            _ => return fail(&format!("bad --threshold {v:?}")),
        },
        Err(e) => return fail(&e),
    };
    let report_only = opt_flag(&mut args, "--report-only");
    let [old_path, new_path] = args.as_slice() else {
        return fail("diff needs exactly OLD and NEW files");
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench: {e}");
            return ExitCode::from(2);
        }
    };
    let report = diff(&old, &new, threshold);
    print!("{}", report.render());
    if old.entries.is_empty() {
        // An empty trajectory baseline (fresh checkout, retracted
        // measurement) has nothing to gate against — succeed loudly
        // instead of silently comparing zero entries.
        println!("no baseline entries in {old_path}: gate skipped");
        return ExitCode::SUCCESS;
    }
    if report.has_regressions() && !report_only {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "run" => cmd_run(args),
        "diff" => cmd_diff(args),
        "list" => {
            let mut entries = BENCH_NAMES;
            entries.sort_unstable_by_key(|(name, _)| *name);
            for (name, kind) in entries {
                println!("{name} ({kind})");
            }
            ExitCode::SUCCESS
        }
        other => fail(&format!("unknown command {other:?}")),
    }
}
