//! `bench diff`: compare two BENCH files and gate on regressions.
//!
//! The compared statistic is each entry's `median_ns` (robust to
//! scheduler noise; see [`crate::harness`]). An entry regresses when its
//! new median exceeds the old by more than the threshold percentage
//! *and* the move clears the measured noise floor (3× the larger MAD),
//! so a jittery microbench cannot fail the gate on spread alone.

use std::fmt::Write as _;

use crate::benchfile::BenchFile;

/// Default regression threshold: 10% keeps honest regressions visible
/// while staying clear of run-to-run noise on a quiet machine.
pub const DEFAULT_THRESHOLD_PCT: f64 = 10.0;

/// How one entry moved between the two files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffStatus {
    /// Slower beyond threshold + noise floor — fails the gate.
    Regressed,
    /// Faster beyond threshold.
    Improved,
    /// Within threshold either way.
    Unchanged,
    /// Present only in the new file (no baseline to compare).
    Added,
    /// Present only in the old file.
    Removed,
}

/// One compared entry.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Benchmark id.
    pub name: String,
    /// Baseline median (0 when [`DiffStatus::Added`]).
    pub old_median_ns: u64,
    /// New median (0 when [`DiffStatus::Removed`]).
    pub new_median_ns: u64,
    /// `new/old − 1` as a percentage (0 for added/removed entries).
    pub change_pct: f64,
    /// Classification under the threshold.
    pub status: DiffStatus,
}

/// Full comparison of two BENCH files.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Threshold the classification used.
    pub threshold_pct: f64,
    /// Every entry of either file, old-file order then additions.
    pub entries: Vec<DiffEntry>,
}

impl DiffReport {
    /// Whether any entry regressed (the gate's exit condition).
    pub fn has_regressions(&self) -> bool {
        self.entries
            .iter()
            .any(|e| e.status == DiffStatus::Regressed)
    }

    /// Human-facing table plus a one-line verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<36} {:>12} {:>12} {:>9}  status",
            "bench", "old_ns", "new_ns", "change"
        );
        for e in &self.entries {
            let status = match e.status {
                DiffStatus::Regressed => "REGRESSED",
                DiffStatus::Improved => "improved",
                DiffStatus::Unchanged => "ok",
                DiffStatus::Added => "added",
                DiffStatus::Removed => "removed",
            };
            let change = match e.status {
                DiffStatus::Added | DiffStatus::Removed => "-".to_owned(),
                _ => format!("{:+.1}%", e.change_pct),
            };
            let _ = writeln!(
                out,
                "{:<36} {:>12} {:>12} {:>9}  {status}",
                e.name, e.old_median_ns, e.new_median_ns, change
            );
        }
        let regressed = self
            .entries
            .iter()
            .filter(|e| e.status == DiffStatus::Regressed)
            .count();
        let _ = writeln!(
            out,
            "{} entries compared, {} regressed (threshold {:.1}%)",
            self.entries.len(),
            regressed,
            self.threshold_pct
        );
        out
    }
}

/// Compares `new` against the `old` baseline at `threshold_pct`.
pub fn diff(old: &BenchFile, new: &BenchFile, threshold_pct: f64) -> DiffReport {
    let mut entries = Vec::new();
    for o in &old.entries {
        let Some(n) = new.entry(&o.name) else {
            entries.push(DiffEntry {
                name: o.name.clone(),
                old_median_ns: o.median_ns,
                new_median_ns: 0,
                change_pct: 0.0,
                status: DiffStatus::Removed,
            });
            continue;
        };
        let change_pct = if o.median_ns == 0 {
            0.0
        } else {
            100.0 * (n.median_ns as f64 - o.median_ns as f64) / o.median_ns as f64
        };
        let noise_floor_ns = 3 * o.mad_ns.max(n.mad_ns);
        let moved_ns = n.median_ns.abs_diff(o.median_ns);
        let status = if o.median_ns > 0 && change_pct > threshold_pct && moved_ns > noise_floor_ns {
            DiffStatus::Regressed
        } else if o.median_ns > 0 && change_pct < -threshold_pct {
            DiffStatus::Improved
        } else {
            DiffStatus::Unchanged
        };
        entries.push(DiffEntry {
            name: o.name.clone(),
            old_median_ns: o.median_ns,
            new_median_ns: n.median_ns,
            change_pct,
            status,
        });
    }
    for n in &new.entries {
        if old.entry(&n.name).is_none() {
            entries.push(DiffEntry {
                name: n.name.clone(),
                old_median_ns: 0,
                new_median_ns: n.median_ns,
                change_pct: 0.0,
                status: DiffStatus::Added,
            });
        }
    }
    DiffReport {
        threshold_pct,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchfile::{BenchEntry, BenchFile, SCHEMA};

    fn file(entries: &[(&str, u64, u64)]) -> BenchFile {
        BenchFile {
            schema: SCHEMA.into(),
            created_unix_s: 0,
            entries: entries
                .iter()
                .map(|&(name, median_ns, mad_ns)| BenchEntry {
                    name: name.into(),
                    kind: "micro".into(),
                    iters_per_sample: 1,
                    samples: 5,
                    median_ns,
                    mad_ns,
                    mean_ns: median_ns as f64,
                    min_ns: median_ns,
                    max_ns: median_ns,
                })
                .collect(),
        }
    }

    #[test]
    fn regression_beyond_threshold_fails_the_gate() {
        let old = file(&[("hot", 1000, 10)]);
        let new = file(&[("hot", 1250, 10)]); // +25% > 10%, move 250 > 30
        let report = diff(&old, &new, DEFAULT_THRESHOLD_PCT);
        assert!(report.has_regressions());
        assert_eq!(report.entries[0].status, DiffStatus::Regressed);
        assert!((report.entries[0].change_pct - 25.0).abs() < 1e-9);
        assert!(report.render().contains("REGRESSED"), "{}", report.render());
    }

    #[test]
    fn noisy_entries_do_not_regress_on_spread_alone() {
        // +25% but the MAD is wider than the move: not a regression.
        let old = file(&[("noisy", 1000, 200)]);
        let new = file(&[("noisy", 1250, 200)]);
        let report = diff(&old, &new, DEFAULT_THRESHOLD_PCT);
        assert!(!report.has_regressions());
        assert_eq!(report.entries[0].status, DiffStatus::Unchanged);
    }

    #[test]
    fn improvements_additions_and_removals_pass() {
        let old = file(&[("faster", 1000, 5), ("gone", 50, 1)]);
        let new = file(&[("faster", 500, 5), ("fresh", 70, 1)]);
        let report = diff(&old, &new, DEFAULT_THRESHOLD_PCT);
        assert!(!report.has_regressions());
        let by_name = |n: &str| report.entries.iter().find(|e| e.name == n).unwrap().status;
        assert_eq!(by_name("faster"), DiffStatus::Improved);
        assert_eq!(by_name("gone"), DiffStatus::Removed);
        assert_eq!(by_name("fresh"), DiffStatus::Added);
        let text = report.render();
        assert!(text.contains("3 entries compared, 0 regressed"), "{text}");
    }

    #[test]
    fn empty_baseline_never_gates() {
        // A fresh checkout has no BENCH trajectory; everything shows as
        // added and the gate passes (`bench diff` also prints an
        // explicit "gate skipped" note in this case).
        let old = file(&[]);
        let new = file(&[("fresh", 100, 1)]);
        let report = diff(&old, &new, DEFAULT_THRESHOLD_PCT);
        assert!(!report.has_regressions());
        assert!(report.entries.iter().all(|e| e.status == DiffStatus::Added));
        assert!(report.render().contains("1 entries compared, 0 regressed"));
    }

    #[test]
    fn small_drift_is_unchanged() {
        let old = file(&[("steady", 1000, 2)]);
        let new = file(&[("steady", 1050, 2)]); // +5% < 10%
        let report = diff(&old, &new, DEFAULT_THRESHOLD_PCT);
        assert_eq!(report.entries[0].status, DiffStatus::Unchanged);
        assert!(!report.has_regressions());
    }
}
