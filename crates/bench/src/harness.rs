//! Zero-dependency measurement core for the `bench` binary.
//!
//! Criterion needs a cargo registry to build; this harness needs only
//! `std`. The protocol per benchmark:
//!
//! 1. **warmup** — run the closure `warmup_iters` times, unmeasured, to
//!    fault in caches and steady-state allocator behavior;
//! 2. **sampling** — take `samples` wall-clock samples, each timing
//!    `iters_per_sample` back-to-back calls and dividing, so per-call
//!    costs below timer resolution still measure;
//! 3. **summary** — report the median and the MAD (median absolute
//!    deviation), which are robust to scheduler noise, alongside
//!    mean/min/max.
//!
//! Call sites keep the optimizer honest with [`std::hint::black_box`]
//! (re-exported as [`black_box`]) around inputs and outputs.

use std::time::Instant;

pub use std::hint::black_box;

/// How hard to measure: warmup runs, then `samples` × `iters_per_sample`
/// timed calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchSpec {
    /// Unmeasured calls before sampling starts.
    pub warmup_iters: u64,
    /// Number of wall-clock samples taken.
    pub samples: usize,
    /// Calls per sample (per-call time = sample time / this).
    pub iters_per_sample: u64,
}

impl BenchSpec {
    /// Default effort for microbenches: enough samples for a stable
    /// median on a busy machine.
    pub fn micro() -> Self {
        BenchSpec {
            warmup_iters: 10,
            samples: 30,
            iters_per_sample: 3,
        }
    }

    /// Effort for end-to-end figure timings, where one call is already
    /// hundreds of milliseconds.
    pub fn e2e() -> Self {
        BenchSpec {
            warmup_iters: 1,
            samples: 5,
            iters_per_sample: 1,
        }
    }

    /// CI smoke effort: 1 warmup + 1 timed iteration, just enough to
    /// prove the bench runs and the schema validates.
    pub fn smoke() -> Self {
        BenchSpec {
            warmup_iters: 1,
            samples: 1,
            iters_per_sample: 1,
        }
    }
}

/// One measured benchmark: name, kind tag, and per-call nanosecond
/// statistics over all samples.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Stable benchmark id (`appro.candidate_scan`, `figure.fig2`, …).
    pub name: String,
    /// `"micro"` or `"e2e"` — the comparator reports them separately.
    pub kind: String,
    /// Calls averaged within each sample.
    pub iters_per_sample: u64,
    /// Per-call wall time of every sample, in nanoseconds, sample order.
    pub samples_ns: Vec<u64>,
    /// Median per-call time (robust location).
    pub median_ns: u64,
    /// Median absolute deviation from the median (robust spread).
    pub mad_ns: u64,
    /// Mean per-call time.
    pub mean_ns: f64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Slowest sample.
    pub max_ns: u64,
}

/// Median of `sorted` (must be sorted ascending, non-empty); even counts
/// average the two middle elements.
fn median_of_sorted(sorted: &[u64]) -> u64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    }
}

/// Runs one benchmark under `spec`. The closure is the measured unit;
/// wrap its inputs and outputs in [`black_box`] at the call site.
pub fn run_bench<F: FnMut()>(name: &str, kind: &str, spec: BenchSpec, mut f: F) -> BenchResult {
    for _ in 0..spec.warmup_iters {
        f();
    }
    let iters = spec.iters_per_sample.max(1);
    let mut samples_ns = Vec::with_capacity(spec.samples.max(1));
    for _ in 0..spec.samples.max(1) {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let total = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        samples_ns.push(total / iters);
    }
    let mut sorted = samples_ns.clone();
    sorted.sort_unstable();
    let median_ns = median_of_sorted(&sorted);
    let mut devs: Vec<u64> = sorted.iter().map(|&s| s.abs_diff(median_ns)).collect();
    devs.sort_unstable();
    let mad_ns = median_of_sorted(&devs);
    let sum: u128 = samples_ns.iter().map(|&s| s as u128).sum();
    BenchResult {
        name: name.to_owned(),
        kind: kind.to_owned(),
        iters_per_sample: iters,
        mean_ns: sum as f64 / samples_ns.len() as f64,
        min_ns: sorted[0],
        max_ns: sorted[sorted.len() - 1],
        median_ns,
        mad_ns,
        samples_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad_are_robust() {
        // Directly exercise the summary path with a deterministic closure
        // that cannot be optimized away.
        let mut calls = 0u64;
        let r = run_bench(
            "test.counted",
            "micro",
            BenchSpec {
                warmup_iters: 2,
                samples: 5,
                iters_per_sample: 4,
            },
            || {
                calls += 1;
                black_box(calls);
            },
        );
        assert_eq!(calls, 2 + 5 * 4);
        assert_eq!(r.samples_ns.len(), 5);
        assert_eq!(r.iters_per_sample, 4);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.mean_ns >= r.min_ns as f64 && r.mean_ns <= r.max_ns as f64);
    }

    #[test]
    fn median_of_sorted_handles_even_and_odd() {
        assert_eq!(median_of_sorted(&[3]), 3);
        assert_eq!(median_of_sorted(&[1, 3]), 2);
        assert_eq!(median_of_sorted(&[1, 2, 9]), 2);
        assert_eq!(median_of_sorted(&[1, 2, 4, 9]), 3);
    }

    #[test]
    fn smoke_spec_is_one_and_one() {
        let s = BenchSpec::smoke();
        assert_eq!((s.warmup_iters, s.samples, s.iters_per_sample), (1, 1, 1));
        let r = run_bench("test.smoke", "micro", s, || {
            black_box(7u64);
        });
        assert_eq!(r.samples_ns.len(), 1);
        assert_eq!(r.median_ns, r.min_ns);
        assert_eq!(r.mad_ns, 0);
    }
}
