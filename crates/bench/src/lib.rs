#![warn(missing_docs)]

//! Benchmark harnesses for the workspace: a zero-dependency measured
//! suite (the `bench` binary) plus the original Criterion benches.
//!
//! The zero-dep side lives here in `src/` — [`harness`] (warmup +
//! timed samples, median/MAD), [`suite`] (the measured hot paths),
//! [`benchfile`] (the schema-versioned `BENCH_<n>.json` format), and
//! [`diff`] (the regression gate) — and needs nothing beyond the
//! workspace, so it runs on machines without cargo registry access.
//! `scripts/bench.sh` drives it.
//!
//! The Criterion benches are feature-gated behind `criterion-benches`
//! (they need the registry to build):
//! `cargo bench -p edgerep-bench --features criterion-benches`.
//!
//! * `figures` — one Criterion group per evaluation figure of the paper
//!   (2, 3, 4, 5, 7, 8). Each group first prints the regenerated series
//!   (a reduced-seed rendering of what `repro` produces) so `cargo bench`
//!   output doubles as a reproduction record, then times every algorithm
//!   on the figure's representative workload point.
//! * `ablations` — design-choice benches called out in DESIGN.md: the
//!   primal-dual price base `μ`, the query commit order, and the replica
//!   price term.
//! * `substrates` — scaling of the substrates (Dijkstra/all-pairs delays,
//!   simplex, Kernighan–Lin, trace generation) so regressions in the
//!   foundations are visible independently of the algorithms.

pub mod benchfile;
pub mod diff;
pub mod harness;
pub mod suite;

use edgerep_model::Instance;
use edgerep_workload::{generate_instance, WorkloadParams};

/// A deterministic mid-size instance representative of one figure point.
pub fn representative_instance(network_size: usize, f: usize, k: usize) -> Instance {
    let params = WorkloadParams::default()
        .with_network_size(network_size)
        .with_max_datasets_per_query(f)
        .with_max_replicas(k);
    generate_instance(&params, 42)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_is_reproducible() {
        let a = representative_instance(60, 3, 3);
        let b = representative_instance(60, 3, 3);
        assert_eq!(a.queries(), b.queries());
        assert_eq!(a.cloud().graph().node_count(), 60);
    }
}
