//! The benchmark suite the `bench run` subcommand executes.
//!
//! Microbenches cover the named hot paths (the ROADMAP's "hot-path
//! speed, measured" item): the ApproS/ApproG dual update, the per-query
//! candidate scan, the admission feasibility check, controller repair
//! planning, and forecaster `predict`. Two end-to-end entries time whole
//! figure regenerations at one seed so macro drift is visible even when
//! no single micro entry moved.
//!
//! Names are stable identifiers — the `BENCH_<n>.json` trajectory and
//! `bench diff` key on them — so renaming one severs its history.

use edgerep_core::admission::AdmissionState;
use edgerep_core::appro::{Appro, ApproConfig};
use edgerep_core::repair::plan_replacements;
use edgerep_forecast::{DemandHistory, DemandKey, EpochDemand, ForecasterKind};
use edgerep_model::QueryId;

use crate::harness::{black_box, run_bench, BenchResult, BenchSpec};
use crate::representative_instance;

/// Every suite entry as `(name, kind)`, run order. Kinds: `"micro"` or
/// `"e2e"`.
pub const BENCH_NAMES: [(&str, &str); 13] = [
    ("appro.dual_update_special", "micro"),
    ("appro.dual_update_general", "micro"),
    ("appro.candidate_scan", "micro"),
    ("admission.check", "micro"),
    ("repair.plan", "micro"),
    ("rolling.incremental_replan", "micro"),
    ("forecast.predict", "micro"),
    ("transfer.rarest_first", "micro"),
    ("ec.encode_plan", "micro"),
    ("ec.degraded_read", "micro"),
    ("shard.partition_solve", "micro"),
    ("figure.fig2", "e2e"),
    ("figure.fig8", "e2e"),
];

/// Measurement effort per kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteSpec {
    /// Spec for `"micro"` entries.
    pub micro: BenchSpec,
    /// Spec for `"e2e"` entries.
    pub e2e: BenchSpec,
}

impl SuiteSpec {
    /// Full effort: what `scripts/bench.sh` records into `BENCH_<n>.json`.
    pub fn full() -> Self {
        SuiteSpec {
            micro: BenchSpec::micro(),
            e2e: BenchSpec::e2e(),
        }
    }

    /// CI smoke effort: 1 warmup + 1 timed iteration everywhere.
    pub fn smoke() -> Self {
        SuiteSpec {
            micro: BenchSpec::smoke(),
            e2e: BenchSpec::smoke(),
        }
    }
}

fn synthetic_history() -> DemandHistory {
    let mut hist = DemandHistory::new(16);
    for epoch in 0..12u32 {
        let mut demand = EpochDemand::new();
        for k in 0..50u32 {
            // Seasonal (period 4) signal with per-key amplitude, so every
            // forecaster family has structure to chew on.
            let volume = (k + 1) as f64 * (1.0 + (epoch % 4) as f64);
            demand.add(DemandKey::new(k % 5, k), volume);
        }
        hist.record(demand);
    }
    hist
}

/// Runs the entries whose name contains `filter` (all when `None`),
/// invoking `progress` after each finished bench.
pub fn run_suite(
    spec: &SuiteSpec,
    filter: Option<&str>,
    mut progress: impl FnMut(&BenchResult),
) -> Vec<BenchResult> {
    let mut results = Vec::new();
    for (name, kind) in BENCH_NAMES {
        if filter.is_some_and(|pat| !name.contains(pat)) {
            continue;
        }
        let effort = if kind == "e2e" { spec.e2e } else { spec.micro };
        let result = match name {
            "appro.dual_update_special" => {
                // Paper special case: one dataset per query (Appro-S).
                let inst = representative_instance(60, 1, 3);
                let appro = Appro::with_config(ApproConfig::default());
                run_bench(name, kind, effort, || {
                    black_box(appro.run(black_box(&inst)));
                })
            }
            "appro.dual_update_general" => {
                // General case: multi-dataset queries (Appro-G).
                let inst = representative_instance(48, 3, 3);
                let appro = Appro::with_config(ApproConfig::default());
                run_bench(name, kind, effort, || {
                    black_box(appro.run(black_box(&inst)));
                })
            }
            "appro.candidate_scan" => {
                // One primal-dual pricing pass over every pending query
                // against a fresh admission state — the inner loop of the
                // dual update, isolated from the commit machinery.
                let inst = representative_instance(60, 3, 3);
                let appro = Appro::with_config(ApproConfig::default());
                let state = AdmissionState::new(&inst);
                let queries: Vec<QueryId> = inst.query_ids().collect();
                run_bench(name, kind, effort, || {
                    for &q in &queries {
                        black_box(appro.plan_query_public(black_box(&state), q));
                    }
                })
            }
            "admission.check" => {
                // Capacity/deadline/replica feasibility of every
                // (query, node) pair for the first demand.
                let inst = representative_instance(60, 3, 3);
                let state = AdmissionState::new(&inst);
                let queries: Vec<QueryId> = inst.query_ids().collect();
                run_bench(name, kind, effort, || {
                    for &q in &queries {
                        for v in inst.cloud().compute_ids() {
                            black_box(state.demand_check(q, 0, v, 0.0).is_ok());
                        }
                    }
                })
            }
            "repair.plan" => {
                // Replacement planning after knocking out every fifth
                // node under a full-replication target.
                let inst = representative_instance(60, 3, 3);
                let solution = Appro::with_config(ApproConfig::default())
                    .run(&inst)
                    .solution;
                let mut alive = vec![true; inst.cloud().compute_count()];
                for i in (0..alive.len()).step_by(5) {
                    alive[i] = false;
                }
                let needed = vec![inst.max_replicas(); inst.dataset_ids().len()];
                run_bench(name, kind, effort, || {
                    black_box(plan_replacements(
                        black_box(&inst),
                        &solution,
                        &alive,
                        &needed,
                    ));
                })
            }
            "rolling.incremental_replan" => {
                // A short Periodic rolling run: epoch instances stamped
                // from a cached world (no per-epoch Dijkstra), each epoch
                // replanned through the demand-group diff gate.
                use edgerep_core::appro::ApproG;
                use edgerep_testbed::rolling::{run_rolling, ReplanPolicy, RollingConfig};
                use edgerep_testbed::topology::TestbedConfig;
                let cfg = RollingConfig {
                    testbed: TestbedConfig {
                        query_count: 12,
                        windows: 4,
                        ..Default::default()
                    },
                    epochs: 3,
                    seed: 7,
                    ..Default::default()
                };
                let alg = ApproG::default();
                run_bench(name, kind, effort, || {
                    black_box(run_rolling(
                        black_box(&alg),
                        black_box(&cfg),
                        ReplanPolicy::Periodic,
                    ));
                })
            }
            "forecast.predict" => {
                let history = synthetic_history();
                let forecasters: Vec<_> = [
                    ForecasterKind::SeasonalNaive { period: 4 },
                    ForecasterKind::Ewma,
                    ForecasterKind::Holt,
                    ForecasterKind::TopK { k: 10 },
                ]
                .into_iter()
                .map(ForecasterKind::build)
                .collect();
                run_bench(name, kind, effort, || {
                    for f in &forecasters {
                        black_box(f.predict(black_box(&history)));
                    }
                })
            }
            "transfer.rarest_first" => {
                // Rarest-first chunk selection across a swarm of eight
                // concurrent 64 GB fetches of the same dataset with
                // staggered progress — the chunked engine's inner loop.
                use edgerep_testbed::event::SimTime;
                use edgerep_testbed::transfer::{Engine, SourcePath};
                use edgerep_testbed::{ChunkLedger, ChunkedConfig, FlowTier};
                let cfg = ChunkedConfig::default();
                let mut eng = Engine::new(cfg, 32);
                let sources: Vec<SourcePath> = (0..4)
                    .map(|n| SourcePath {
                        node: n,
                        delay_s_per_gb: 0.02 + n as f64 * 0.01,
                        factor: 1.0,
                    })
                    .collect();
                let ids: Vec<usize> = (0..8)
                    .map(|i| {
                        let mut ledger = ChunkLedger::new(64.0, cfg.chunk_gb);
                        // Stagger verified prefixes so rarity differs.
                        for c in 0..(i * 17) {
                            ledger.mark_verified(c);
                        }
                        eng.begin(
                            SimTime(0),
                            8 + i,
                            FlowTier::Background,
                            Some(0),
                            ledger,
                            &sources,
                        )
                    })
                    .collect();
                run_bench(name, kind, effort, || {
                    for &id in &ids {
                        black_box(black_box(&eng).pick_chunk(id));
                    }
                })
            }
            "ec.encode_plan" => {
                // Shard-layout derivation for every (scheme, size) pair an
                // instance activation touches: the ext-ec arms over a
                // spread of dataset sizes.
                use edgerep_ec::RedundancyScheme;
                let schemes = [
                    RedundancyScheme::Replication { k: 3 },
                    RedundancyScheme::ErasureCoded { k: 2, m: 1 },
                    RedundancyScheme::ErasureCoded { k: 4, m: 2 },
                    RedundancyScheme::ErasureCoded { k: 8, m: 3 },
                ];
                let sizes: Vec<f64> = (1..=32).map(|i| i as f64 * 0.75).collect();
                run_bench(name, kind, effort, || {
                    for &scheme in &schemes {
                        for &gb in &sizes {
                            black_box(edgerep_ec::encode_plan(
                                black_box(scheme),
                                black_box(gb),
                            ));
                        }
                    }
                })
            }
            "ec.degraded_read" => {
                // Gather planning for a degraded EC(8,3) read: pick the
                // k − 1 nearest live co-holders out of a 16-node pool —
                // the per-arrival inner loop in the testbed sim.
                use edgerep_ec::{plan_read, RedundancyScheme, ShardSource};
                let scheme = RedundancyScheme::ErasureCoded { k: 8, m: 3 };
                let others: Vec<ShardSource> = (0..16)
                    .map(|n| ShardSource {
                        node: n,
                        delay_s_per_gb: 0.01 + (n as f64 * 0.37).sin().abs() * 0.2,
                    })
                    .collect();
                run_bench(name, kind, effort, || {
                    // Sweep the live-holder count across the quorum
                    // boundary so both degraded and lost paths price.
                    for live in 4..16 {
                        black_box(plan_read(
                            black_box(scheme),
                            black_box(24.0),
                            black_box(&others[..live]),
                            11,
                        ));
                    }
                })
            }
            "shard.partition_solve" => {
                // Region extraction plus a four-way sharded ApproG solve
                // with boundary reconciliation — the ext-shard cell body.
                use edgerep_core::appro::ApproG;
                use edgerep_shard::{ShardConfig, ShardedSolver};
                let inst = representative_instance(60, 3, 3);
                let solver = ShardedSolver::new(
                    ApproG::default(),
                    ShardConfig {
                        regions: 4,
                        reconcile: true,
                    },
                );
                run_bench(name, kind, effort, || {
                    black_box(solver.solve_sharded(black_box(&inst)));
                })
            }
            "figure.fig2" => run_bench(name, kind, effort, || {
                black_box(edgerep_exp::figures::fig2(1));
            }),
            "figure.fig8" => run_bench(name, kind, effort, || {
                black_box(edgerep_exp::figures::fig8(1));
            }),
            other => unreachable!("bench {other} listed but not implemented"),
        };
        progress(&result);
        results.push(result);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_names_are_unique_and_cover_the_issue_floor() {
        let mut names: Vec<&str> = BENCH_NAMES.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BENCH_NAMES.len(), "duplicate bench names");
        let micro = BENCH_NAMES.iter().filter(|(_, k)| *k == "micro").count();
        let e2e = BENCH_NAMES.iter().filter(|(_, k)| *k == "e2e").count();
        assert!(micro >= 5, "need ≥5 microbenches, have {micro}");
        assert!(e2e >= 2, "need ≥2 e2e figure timings, have {e2e}");
    }

    #[test]
    fn suite_membership_is_pinned() {
        // Drift guard: adding or removing an entry must be a conscious
        // decision — it changes what `BENCH_<n>.json` tracks over time.
        assert_eq!(BENCH_NAMES.len(), 13, "bench suite size drifted");
        assert!(
            BENCH_NAMES
                .iter()
                .any(|(n, k)| *n == "shard.partition_solve" && *k == "micro"),
            "shard.partition_solve missing from the suite"
        );
    }

    #[test]
    fn filtered_smoke_run_produces_one_result() {
        // forecast.predict is the cheapest entry; a smoke-effort run keeps
        // this test fast while exercising the whole setup path.
        let results = run_suite(&SuiteSpec::smoke(), Some("forecast"), |_| {});
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "forecast.predict");
        assert_eq!(results[0].samples_ns.len(), 1);
    }
}
