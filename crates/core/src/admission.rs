//! Shared admission state machine.
//!
//! Every placement algorithm mutates an [`AdmissionState`]: it tracks the
//! remaining compute per node and the replica placements so far, and offers
//! the three feasibility predicates of the ILP — capacity (2), replica
//! availability / budget (3) + (5), and deadline (4) — plus transactional
//! commit of a whole query (admission is all-or-nothing: a query counts
//! only when *every* demanded dataset is served within its deadline, which
//! is how the paper argues Fig. 4's throughput decline in `F`).

use std::cell::Cell;

use edgerep_model::delay::{assignment_delay, read_overhead};
use edgerep_model::{ComputeNodeId, DatasetId, Instance, QueryId, Solution, FEASIBILITY_EPS};
use edgerep_obs as obs;

/// Why a single (demand, node) feasibility check failed — the three hard
/// constraints of the ILP, in the order they are tested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Constraints (3) + (5): the node holds no replica and the dataset's
    /// replica budget `K` is exhausted.
    ReplicaBudget,
    /// Constraint (2): the node's remaining compute cannot absorb the
    /// demand.
    Capacity,
    /// Constraint (4): the access delay at the node exceeds the query's
    /// deadline.
    Deadline,
}

impl RejectReason {
    /// Stable label used in metric names (`admission.reject.<label>`) and
    /// trace fields.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::ReplicaBudget => "replica_budget",
            RejectReason::Capacity => "capacity",
            RejectReason::Deadline => "deadline",
        }
    }
}

/// Running tallies of feasibility checks and commits, kept in plain
/// integers on the [`AdmissionState`] hot path and flushed to the
/// process-wide metric registry once per solve (see
/// [`AdmissionTally::flush_to_registry`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionTally {
    /// Feasibility checks evaluated (demand predicates and price probes).
    pub checks: u64,
    /// Checks that failed on the replica budget.
    pub reject_replica_budget: u64,
    /// Checks that failed on compute capacity.
    pub reject_capacity: u64,
    /// Checks that failed on the deadline.
    pub reject_deadline: u64,
    /// Queries committed (admitted).
    pub committed_queries: u64,
    /// Demand assignments committed.
    pub committed_demands: u64,
}

impl AdmissionTally {
    fn note(&mut self, rejection: Option<RejectReason>) {
        self.checks += 1;
        match rejection {
            None => {}
            Some(RejectReason::ReplicaBudget) => self.reject_replica_budget += 1,
            Some(RejectReason::Capacity) => self.reject_capacity += 1,
            Some(RejectReason::Deadline) => self.reject_deadline += 1,
        }
    }

    /// Adds the tally to the registry counters
    /// `admission.{checks,commit.queries,commit.demands}` and
    /// `admission.reject.{replica_budget,capacity,deadline}`, and emits an
    /// `admission.summary` trace event when the `admission` target is
    /// enabled. A handful of relaxed atomic adds — cheap enough to run
    /// unconditionally once per solve.
    pub fn flush_to_registry(&self) {
        obs::counter("admission.checks").add(self.checks);
        obs::counter("admission.reject.replica_budget").add(self.reject_replica_budget);
        obs::counter("admission.reject.capacity").add(self.reject_capacity);
        obs::counter("admission.reject.deadline").add(self.reject_deadline);
        obs::counter("admission.commit.queries").add(self.committed_queries);
        obs::counter("admission.commit.demands").add(self.committed_demands);
        obs::emit(
            "admission",
            "admission",
            "admission.summary",
            &[
                ("checks", self.checks.into()),
                ("reject_replica_budget", self.reject_replica_budget.into()),
                ("reject_capacity", self.reject_capacity.into()),
                ("reject_deadline", self.reject_deadline.into()),
                ("commit_queries", self.committed_queries.into()),
                ("commit_demands", self.committed_demands.into()),
            ],
        );
    }
}

/// Mutable placement state shared by all algorithms.
#[derive(Debug, Clone)]
pub struct AdmissionState<'a> {
    inst: &'a Instance,
    /// Compute consumed per node so far.
    used: Vec<f64>,
    /// The solution under construction.
    sol: Solution,
    /// Check/reject/commit tallies (interior-mutable so the read-only
    /// feasibility predicates can count themselves).
    tally: Cell<AdmissionTally>,
}

/// A planned service location for one demand of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedDemand {
    /// Chosen node.
    pub node: ComputeNodeId,
    /// Advisory: whether the planner expected to place a new replica at
    /// [`Self::node`]. Purely diagnostic — [`AdmissionState::commit`]
    /// derives the actual placements itself (and
    /// [`AdmissionState::plan_feasible`] re-validates), so a stale value
    /// here can never corrupt state.
    pub new_replica: bool,
}

impl<'a> AdmissionState<'a> {
    /// Fresh state: no replicas, all capacity available.
    pub fn new(inst: &'a Instance) -> Self {
        Self {
            inst,
            used: vec![0.0; inst.cloud().compute_count()],
            sol: Solution::empty(inst),
            tally: Cell::new(AdmissionTally::default()),
        }
    }

    /// State resuming from an existing solution: replicas and admissions
    /// as in `sol`, compute consumption re-derived from its assignments.
    /// This is how the repair planner re-enters admission bookkeeping
    /// mid-run without replaying the original algorithm.
    pub fn from_solution(inst: &'a Instance, sol: &Solution) -> Self {
        Self {
            inst,
            used: sol.node_loads(inst),
            sol: sol.clone(),
            tally: Cell::new(AdmissionTally::default()),
        }
    }

    /// The instance this state is built over.
    pub fn instance(&self) -> &'a Instance {
        self.inst
    }

    /// Compute already consumed at `v`.
    pub fn used(&self, v: ComputeNodeId) -> f64 {
        self.used[v.index()]
    }

    /// Remaining compute at `v`.
    pub fn remaining(&self, v: ComputeNodeId) -> f64 {
        self.inst.cloud().available(v) - self.used[v.index()]
    }

    /// Fraction of `v`'s availability consumed (0 when the node has none).
    pub fn load_fraction(&self, v: ComputeNodeId) -> f64 {
        let avail = self.inst.cloud().available(v);
        if avail <= 0.0 {
            // A node with zero available compute can serve nothing; treat
            // it as saturated so price-based selection never picks it.
            1.0
        } else {
            self.used[v.index()] / avail
        }
    }

    /// The solution built so far (replicas + admitted queries).
    pub fn solution(&self) -> &Solution {
        &self.sol
    }

    /// Consumes the state, yielding the final solution. Flushes the
    /// check/reject/commit tallies to the metric registry (see
    /// [`AdmissionTally::flush_to_registry`]).
    pub fn into_solution(self) -> Solution {
        self.tally.get().flush_to_registry();
        self.sol
    }

    /// The check/reject/commit tallies accumulated so far.
    pub fn tally(&self) -> AdmissionTally {
        self.tally.get()
    }

    /// Records the outcome of one feasibility check performed *outside*
    /// this state's own predicates (e.g. a price probe in the primal-dual
    /// engine that tests the same three constraints inline).
    #[inline]
    pub fn note_check(&self, rejection: Option<RejectReason>) {
        let mut t = self.tally.get();
        t.note(rejection);
        self.tally.set(t);
    }

    /// Whether `d` still has holder budget for a *new* location — the
    /// per-dataset `slots(d)` generalization of constraint (5)'s `K`.
    pub fn replica_budget_left(&self, d: DatasetId) -> bool {
        self.sol.replica_count(d) < self.inst.slots(d)
    }

    /// The holder set `d` would have after serving a read at `v`:
    /// existing holders ∪ plan-pending holders for `d` ∪ `{v}`, extended
    /// with the nearest fill nodes (by delay to `v`, ties lowest id)
    /// until the scheme's read quorum is met — the `k`-shard bootstrap an
    /// erasure-coded dataset performs on first activation. For
    /// replication this is just "existing plus `v`"; the fill step never
    /// runs.
    pub fn planned_holders_with(
        &self,
        d: DatasetId,
        v: ComputeNodeId,
        pending: &[(DatasetId, ComputeNodeId)],
    ) -> Vec<ComputeNodeId> {
        let mut holders: Vec<ComputeNodeId> = self.sol.replicas_of(d).to_vec();
        for &(pd, pv) in pending {
            if pd == d && !holders.contains(&pv) {
                holders.push(pv);
            }
        }
        if !holders.contains(&v) {
            holders.push(v);
        }
        let quorum = self.inst.scheme(d).min_read();
        if holders.len() < quorum {
            let cloud = self.inst.cloud();
            let mut fills: Vec<ComputeNodeId> =
                cloud.compute_ids().filter(|c| !holders.contains(c)).collect();
            fills.sort_by(|&a, &b| {
                cloud
                    .min_delay(a, v)
                    .total_cmp(&cloud.min_delay(b, v))
                    .then(a.0.cmp(&b.0))
            });
            fills.truncate(quorum - holders.len());
            holders.extend(fills);
        }
        holders
    }

    /// Whether `v` already holds a replica of `d`.
    pub fn has_replica(&self, d: DatasetId, v: ComputeNodeId) -> bool {
        self.sol.has_replica(d, v)
    }

    /// Current replica count of `d`.
    pub fn replica_count(&self, d: DatasetId) -> usize {
        self.sol.replica_count(d)
    }

    /// Places a replica without serving anything (used by algorithms whose
    /// published procedure burns replica budget on failed probes, e.g.
    /// `Greedy`). Returns `false` when the replica already existed.
    ///
    /// # Panics
    /// Panics if the budget is already exhausted — callers check first.
    pub fn place_replica(&mut self, d: DatasetId, v: ComputeNodeId) -> bool {
        if self.sol.has_replica(d, v) {
            return false;
        }
        assert!(
            self.replica_budget_left(d),
            "replica budget exhausted for {d}"
        );
        self.sol.place_replica(d, v)
    }

    /// The compute demand (GHz) that demand `demand_idx` of `q` puts on its
    /// serving node: `|S_n| · r_m`.
    pub fn compute_demand(&self, q: QueryId, demand_idx: usize) -> f64 {
        let query = self.inst.query(q);
        self.inst.size(query.demands[demand_idx].dataset) * query.compute_rate
    }

    /// Checks whether serving demand `demand_idx` of `q` at `v` satisfies
    /// capacity, deadline, and replica availability/budget, given `extra`
    /// compute already tentatively planned onto `v` by earlier demands of
    /// the same query. Returns the first violated constraint and tallies
    /// the outcome.
    pub fn demand_check(
        &self,
        q: QueryId,
        demand_idx: usize,
        v: ComputeNodeId,
        extra_load: f64,
    ) -> Result<(), RejectReason> {
        let res = (|| {
            let d = self.inst.query(q).demands[demand_idx].dataset;
            // Erasure-coded datasets admit shard *sets*: serving at `v`
            // implies the whole bootstrap holder set must fit the budget,
            // and the deadline must absorb the gather + decode overhead.
            let planned = if self.inst.scheme(d).needs_decode() {
                Some(self.planned_holders_with(d, v, &[]))
            } else {
                None
            };
            match &planned {
                Some(holders) => {
                    if holders.len() > self.inst.slots(d) {
                        return Err(RejectReason::ReplicaBudget);
                    }
                }
                None => {
                    if !self.has_replica(d, v) && !self.replica_budget_left(d) {
                        return Err(RejectReason::ReplicaBudget);
                    }
                }
            }
            if self.used[v.index()] + extra_load + self.compute_demand(q, demand_idx)
                > self.inst.cloud().available(v) + FEASIBILITY_EPS
            {
                return Err(RejectReason::Capacity);
            }
            let mut delay = assignment_delay(self.inst, q, demand_idx, v);
            if let Some(holders) = &planned {
                delay += read_overhead(self.inst, d, v, holders);
            }
            if delay > self.inst.query(q).deadline + FEASIBILITY_EPS {
                return Err(RejectReason::Deadline);
            }
            Ok(())
        })();
        self.note_check(res.err());
        res
    }

    /// Whether serving demand `demand_idx` of `q` at `v` is feasible given
    /// `extra_load` tentative compute already planned onto `v` (see
    /// [`Self::demand_check`] for the reason-carrying form).
    pub fn demand_feasible_with(
        &self,
        q: QueryId,
        demand_idx: usize,
        v: ComputeNodeId,
        extra_load: f64,
    ) -> bool {
        self.demand_check(q, demand_idx, v, extra_load).is_ok()
    }

    /// [`Self::demand_feasible_with`] with no tentative extra load.
    pub fn demand_feasible(&self, q: QueryId, demand_idx: usize, v: ComputeNodeId) -> bool {
        self.demand_feasible_with(q, demand_idx, v, 0.0)
    }

    /// Validates a whole-query plan (one [`PlannedDemand`] per demand)
    /// against the current state, accounting for intra-query load stacking
    /// and replica-budget sharing between demands of the same dataset.
    pub fn plan_feasible(&self, q: QueryId, plan: &[PlannedDemand]) -> bool {
        let query = self.inst.query(q);
        if plan.len() != query.demands.len() {
            return false;
        }
        let mut extra = vec![0.0; self.used.len()];
        let mut new_replicas: Vec<(DatasetId, ComputeNodeId)> = Vec::new();
        for (idx, p) in plan.iter().enumerate() {
            let d = query.demands[idx].dataset;
            // Every holder the demand would materialize (just `p.node` for
            // replication; the whole shard bootstrap set for EC) must fit
            // the per-dataset slot budget, shared across the plan.
            let planned = self.planned_holders_with(d, p.node, &new_replicas);
            for &h in &planned {
                let have = self.has_replica(d, h)
                    || new_replicas.iter().any(|&(nd, nv)| nd == d && nv == h);
                if !have {
                    let pending = new_replicas.iter().filter(|&&(nd, _)| nd == d).count();
                    if self.replica_count(d) + pending >= self.inst.slots(d) {
                        return false;
                    }
                    new_replicas.push((d, h));
                }
            }
            if self.used[p.node.index()] + extra[p.node.index()] + self.compute_demand(q, idx)
                > self.inst.cloud().available(p.node) + FEASIBILITY_EPS
            {
                return false;
            }
            let mut delay = assignment_delay(self.inst, q, idx, p.node);
            if self.inst.scheme(d).needs_decode() {
                delay += read_overhead(self.inst, d, p.node, &planned);
            }
            if delay > query.deadline + FEASIBILITY_EPS {
                return false;
            }
            extra[p.node.index()] += self.compute_demand(q, idx);
        }
        true
    }

    /// Commits a feasible plan: places any new replicas, consumes compute,
    /// and admits the query.
    ///
    /// # Panics
    /// Panics when the plan is not feasible — callers must check with
    /// [`Self::plan_feasible`] (the double bookkeeping catches algorithm
    /// bugs in debug runs and tests).
    pub fn commit(&mut self, q: QueryId, plan: &[PlannedDemand]) {
        assert!(
            self.plan_feasible(q, plan),
            "committing infeasible plan for {q}"
        );
        let query = self.inst.query(q);
        let nodes: Vec<ComputeNodeId> = plan.iter().map(|p| p.node).collect();
        for (idx, p) in plan.iter().enumerate() {
            let d = query.demands[idx].dataset;
            // Materialize the full holder set the feasibility pass planned:
            // `p.node` alone for replication, the shard bootstrap set for
            // EC. `place_replica` dedupes holders that already exist, so
            // demands applied in plan order reproduce `plan_feasible`'s
            // simulation exactly.
            for h in self.planned_holders_with(d, p.node, &[]) {
                self.sol.place_replica(d, h);
            }
            self.used[p.node.index()] += self.compute_demand(q, idx);
        }
        self.sol.assign_query(q, nodes);
        let mut t = self.tally.get();
        t.committed_queries += 1;
        t.committed_demands += plan.len() as u64;
        self.tally.set(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgerep_model::prelude::*;

    /// dc (cap 100, proc 0.001) --0.05-- cl (cap 8, proc 0.01).
    /// S0 = 4 GB @ dc, S1 = 2 GB @ dc. q0 @ cl wants S0 (α .5, ddl 1).
    /// q1 @ cl wants S0 + S1 (ddl 1). K = 2.
    fn setup() -> Instance {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(8.0, 0.01);
        b.link(dc, cl, 0.05);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d0 = ib.add_dataset(4.0, dc);
        let d1 = ib.add_dataset(2.0, dc);
        ib.add_query(cl, vec![Demand::new(d0, 0.5)], 1.0, 1.0);
        ib.add_query(
            cl,
            vec![Demand::new(d0, 1.0), Demand::new(d1, 0.5)],
            1.0,
            1.0,
        );
        ib.build().unwrap()
    }

    const DC: ComputeNodeId = ComputeNodeId(0);
    const CL: ComputeNodeId = ComputeNodeId(1);

    #[test]
    fn fresh_state_has_full_capacity() {
        let inst = setup();
        let st = AdmissionState::new(&inst);
        assert_eq!(st.remaining(DC), 100.0);
        assert_eq!(st.remaining(CL), 8.0);
        assert_eq!(st.load_fraction(DC), 0.0);
        assert_eq!(st.replica_count(DatasetId(0)), 0);
    }

    #[test]
    fn demand_feasibility_checks_all_three_constraints() {
        let inst = setup();
        let st = AdmissionState::new(&inst);
        // Both nodes feasible for q0's demand while budget remains.
        assert!(st.demand_feasible(QueryId(0), 0, DC));
        assert!(st.demand_feasible(QueryId(0), 0, CL));
        // Capacity: q0 demand on CL costs 4 GHz of 8 — but with 5 extra
        // tentative load it no longer fits.
        assert!(!st.demand_feasible_with(QueryId(0), 0, CL, 5.0));
    }

    #[test]
    fn replica_budget_blocks_new_locations() {
        let inst = setup();
        let mut st = AdmissionState::new(&inst);
        st.place_replica(DatasetId(0), DC);
        st.place_replica(DatasetId(0), CL);
        assert!(!st.replica_budget_left(DatasetId(0)));
        // Existing replica locations stay feasible…
        assert!(st.demand_feasible(QueryId(0), 0, DC));
        // …and place_replica on a fresh location would panic (checked via
        // the budget query; the panic path is exercised below).
    }

    #[test]
    #[should_panic(expected = "replica budget exhausted")]
    fn place_replica_panics_over_budget() {
        let inst = setup();
        let mut st = AdmissionState::new(&inst);
        st.place_replica(DatasetId(0), DC);
        st.place_replica(DatasetId(0), CL);
        // Third distinct location: over K = 2.
        let mut b = EdgeCloudBuilder::new();
        b.add_cloudlet(1.0, 0.1);
        let _ = b; // silence unused in this panic test
        st.place_replica(DatasetId(0), ComputeNodeId(0)); // duplicate: ok, returns false
                                                          // Force: dedupe returned false, so exhaust with a different id.
        st.place_replica(DatasetId(0), ComputeNodeId(1)); // duplicate too
                                                          // Both nodes already hold replicas; fabricate a third node id to
                                                          // hit the budget assert.
        st.place_replica(DatasetId(0), ComputeNodeId(2));
    }

    #[test]
    fn commit_consumes_capacity_and_admits() {
        let inst = setup();
        let mut st = AdmissionState::new(&inst);
        let plan = vec![PlannedDemand {
            node: DC,
            new_replica: true,
        }];
        assert!(st.plan_feasible(QueryId(0), &plan));
        st.commit(QueryId(0), &plan);
        assert!(st.solution().is_admitted(QueryId(0)));
        assert_eq!(st.used(DC), 4.0);
        assert!(st.has_replica(DatasetId(0), DC));
        let sol = st.into_solution();
        assert!(sol.validate(&inst).is_ok());
        assert_eq!(sol.admitted_volume(&inst), 4.0);
    }

    #[test]
    fn plan_feasibility_accounts_intra_query_stacking() {
        let inst = setup();
        let st = AdmissionState::new(&inst);
        // q1 on CL: S0 costs 4 GHz, S1 costs 2 GHz, total 6 of 8: fits.
        let plan = vec![
            PlannedDemand {
                node: CL,
                new_replica: true,
            },
            PlannedDemand {
                node: CL,
                new_replica: true,
            },
        ];
        assert!(st.plan_feasible(QueryId(1), &plan));
        // A cloudlet with only 5 GHz cannot stack both.
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(5.0, 0.01);
        b.link(dc, cl, 0.05);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d0 = ib.add_dataset(4.0, dc);
        let d1 = ib.add_dataset(2.0, dc);
        ib.add_query(
            cl,
            vec![Demand::new(d0, 1.0), Demand::new(d1, 0.5)],
            1.0,
            1.0,
        );
        let tight = ib.build().unwrap();
        let st = AdmissionState::new(&tight);
        let plan = vec![
            PlannedDemand {
                node: cl,
                new_replica: true,
            },
            PlannedDemand {
                node: cl,
                new_replica: true,
            },
        ];
        assert!(!st.plan_feasible(QueryId(0), &plan));
        // Splitting across nodes works.
        let plan = vec![
            PlannedDemand {
                node: cl,
                new_replica: true,
            },
            PlannedDemand {
                node: dc,
                new_replica: true,
            },
        ];
        assert!(st.plan_feasible(QueryId(0), &plan));
    }

    #[test]
    fn plan_feasibility_shares_replica_budget_within_query() {
        // K = 1 and a query demanding the same dataset cannot spawn two
        // replica locations through one plan.
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(8.0, 0.01);
        b.link(dc, cl, 0.05);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 1);
        let d0 = ib.add_dataset(1.0, dc);
        let d1 = ib.add_dataset(1.0, dc);
        ib.add_query(
            cl,
            vec![Demand::new(d0, 1.0), Demand::new(d1, 1.0)],
            1.0,
            10.0,
        );
        let inst = ib.build().unwrap();
        let st = AdmissionState::new(&inst);
        // Different datasets on different nodes: one new replica each, ok.
        let plan = vec![
            PlannedDemand {
                node: dc,
                new_replica: true,
            },
            PlannedDemand {
                node: cl,
                new_replica: true,
            },
        ];
        assert!(st.plan_feasible(QueryId(0), &plan));
    }

    #[test]
    #[should_panic(expected = "infeasible plan")]
    fn commit_rejects_infeasible_plan() {
        let inst = setup();
        let mut st = AdmissionState::new(&inst);
        // Wrong arity.
        st.commit(
            QueryId(1),
            &[PlannedDemand {
                node: DC,
                new_replica: true,
            }],
        );
    }

    #[test]
    fn wrong_arity_plan_is_infeasible() {
        let inst = setup();
        let st = AdmissionState::new(&inst);
        assert!(!st.plan_feasible(QueryId(1), &[]));
    }

    #[test]
    fn tally_tracks_checks_rejections_and_commits() {
        let inst = setup();
        let mut st = AdmissionState::new(&inst);
        assert!(st.demand_feasible(QueryId(0), 0, DC));
        // Capacity rejection: 5 GHz tentative + 4 GHz demand > 8 GHz at CL.
        assert_eq!(
            st.demand_check(QueryId(0), 0, CL, 5.0),
            Err(RejectReason::Capacity)
        );
        st.note_check(Some(RejectReason::Deadline));
        st.commit(
            QueryId(0),
            &[PlannedDemand {
                node: DC,
                new_replica: true,
            }],
        );
        let t = st.tally();
        assert_eq!(t.checks, 3);
        assert_eq!(t.reject_capacity, 1);
        assert_eq!(t.reject_deadline, 1);
        assert_eq!(t.reject_replica_budget, 0);
        assert_eq!(t.committed_queries, 1);
        assert_eq!(t.committed_demands, 1);
    }

    #[test]
    fn reject_reason_labels_are_stable() {
        assert_eq!(RejectReason::ReplicaBudget.label(), "replica_budget");
        assert_eq!(RejectReason::Capacity.label(), "capacity");
        assert_eq!(RejectReason::Deadline.label(), "deadline");
    }

    /// dc --0.05-- c0 --0.1-- c1 --0.1-- c2, one 4 GB dataset @ dc striped
    /// ec(2,1): shard 2 GB, quorum 2, slots 3. q0 @ c0 wants it (α .5).
    fn ec_setup() -> Instance {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let c0 = b.add_cloudlet(8.0, 0.01);
        let c1 = b.add_cloudlet(8.0, 0.01);
        let c2 = b.add_cloudlet(8.0, 0.01);
        b.link(dc, c0, 0.05);
        b.link(c0, c1, 0.1);
        b.link(c1, c2, 0.1);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 3);
        let d0 = ib.add_dataset(4.0, dc);
        ib.set_default_scheme(RedundancyScheme::erasure(2, 1).unwrap());
        ib.add_query(c0, vec![Demand::new(d0, 0.5)], 1.0, 1.0);
        ib.build().unwrap()
    }

    #[test]
    fn ec_commit_places_the_shard_bootstrap_set() {
        let inst = ec_setup();
        let c0 = ComputeNodeId(1);
        let mut st = AdmissionState::new(&inst);
        let plan = vec![PlannedDemand {
            node: c0,
            new_replica: true,
        }];
        assert!(st.plan_feasible(QueryId(0), &plan));
        st.commit(QueryId(0), &plan);
        // First activation bootstraps the read quorum: the serving node
        // plus its nearest fill (the dc at 0.05, closer than c1 at 0.1).
        assert_eq!(st.replica_count(DatasetId(0)), 2);
        assert!(st.has_replica(DatasetId(0), c0));
        assert!(st.has_replica(DatasetId(0), ComputeNodeId(0)));
        let sol = st.into_solution();
        assert!(sol.validate(&inst).is_ok());
    }

    #[test]
    fn ec_budget_rejects_when_shard_set_exceeds_slots() {
        let inst = ec_setup();
        let d0 = DatasetId(0);
        let mut st = AdmissionState::new(&inst);
        // Fill all k + m = 3 slots by hand.
        st.place_replica(d0, ComputeNodeId(1));
        st.place_replica(d0, ComputeNodeId(0));
        st.place_replica(d0, ComputeNodeId(2));
        assert!(!st.replica_budget_left(d0));
        // Reading at an existing holder is still fine…
        assert!(st.demand_feasible(QueryId(0), 0, ComputeNodeId(1)));
        // …but a fourth shard location would exceed k + m.
        assert_eq!(
            st.demand_check(QueryId(0), 0, ComputeNodeId(3), 0.0),
            Err(RejectReason::ReplicaBudget)
        );
    }

    #[test]
    fn ec_deadline_check_charges_gather_and_decode() {
        // Same topology, but a deadline tighter than the EC overhead:
        // serving at c0 costs proc 0.04 + gather 0.05·2 + decode 0.02·4
        // = 0.22 s, so a 0.2 s deadline admits plain replication (0.04 s)
        // but rejects the striped read.
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let c0 = b.add_cloudlet(8.0, 0.01);
        b.link(dc, c0, 0.05);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 3);
        let d0 = ib.add_dataset(4.0, dc);
        ib.set_default_scheme(RedundancyScheme::erasure(2, 1).unwrap());
        // Selectivity is irrelevant here: the query is served at its own
        // home, so the result-shipping term is 0 either way.
        ib.add_query(c0, vec![Demand::new(d0, 0.5)], 1.0, 0.2);
        let inst = ib.build().unwrap();
        let st = AdmissionState::new(&inst);
        assert_eq!(
            st.demand_check(QueryId(0), 0, c0, 0.0),
            Err(RejectReason::Deadline)
        );
    }
}
