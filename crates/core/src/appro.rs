//! `Appro-S` / `Appro-G`: the paper's primal-dual approximation algorithms.
//!
//! # From pseudo-code to an executable algorithm
//!
//! Algorithm 1 of the paper raises the dual variables "uniformly by 1 in a
//! unit time" until dual constraint (9) becomes tight for some
//! (query, node) pair, then commits that pair (admitting the query, placing
//! the replica, consuming capacity) and repeats. Discretizing the uniform
//! raise gives the standard primal-dual dynamic update for online packing
//! (Buchbinder–Naor): at every step the pair whose constraint tightens
//! *first* is exactly the feasible pair with the **lowest current dual
//! price**, where the price aggregates
//!
//! * a **capacity price** `θ_l` that grows multiplicatively with node
//!   load — `θ(x) = (μ^x − 1)/(μ − 1)` with `μ = 1 + |V|`, near 0 for an
//!   empty node and 1 for a full one;
//! * a **delay price** `η`: the fraction of the query's deadline its
//!   demand would consume at that node (`D(m,n,l)/d_qm ∈ [0,1]` for
//!   feasible pairs). QoS-awareness is enforced by the *hard* deadline
//!   filter (constraint (4)); the weighted price is an optional steering
//!   term and defaults to **off** — the ablation bench shows that any
//!   positive weight drags demands onto home-local cloudlets even while
//!   they are the scarce resource, costing admitted volume at every `K`;
//! * a **replica price** `μ_n`: `replicas(n)/K`, so reusing an existing
//!   replica is free and fresh locations get dearer as the budget drains.
//!
//! Queries are admitted **globally cheapest-per-GB first** — the discrete
//! image of "all constraints rise together, the first to tighten wins" —
//! which is precisely the "overall perspective" the paper credits for
//! `Appro`'s margin over the greedy and partitioning baselines (§4.2).
//!
//! Admission remains all-or-nothing per query and every hard constraint
//! (capacity, deadline, `K`) is enforced by [`AdmissionState`]; the dual
//! prices only *rank* the feasible choices. [`ApproReport::dual_bound`]
//! assembles the feasible dual solution of program (8)–(14) implied by the
//! final prices, giving a per-run upper bound used by the tests and the
//! approximation-ratio experiment.
//!
//! `Appro-G` (Algorithm 2) reuses the single-dataset engine per demand,
//! exactly as the paper invokes Algorithm 1 per (query, dataset) pair,
//! with intra-query load stacking and replica-budget sharing handled by
//! [`AdmissionState::plan_feasible`].

use edgerep_model::delay::{assignment_delay, read_overhead};
use edgerep_model::{ComputeNodeId, DatasetId, Instance, QueryId, Solution, FEASIBILITY_EPS};
use edgerep_obs as obs;

use crate::admission::{AdmissionState, PlannedDemand, RejectReason};
use crate::PlacementAlgorithm;

/// Order in which admissible queries are committed (ablation knob; the
/// paper's algorithm corresponds to [`QueryOrder::GlobalCheapestFirst`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryOrder {
    /// Repeatedly admit the pending query with the lowest dual price per
    /// demanded GB (the primal-dual dynamic update).
    #[default]
    GlobalCheapestFirst,
    /// One pass in input order (an online flavour).
    Input,
    /// One pass, largest demanded volume first.
    VolumeDesc,
    /// One pass, tightest deadline first.
    DeadlineAsc,
}

/// Tunables for the primal-dual engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproConfig {
    /// Multiplicative base of the capacity price; `None` uses the
    /// theory-guided `1 + |V|`.
    pub price_mu: Option<f64>,
    /// Commit order (see [`QueryOrder`]).
    pub order: QueryOrder,
    /// Weight of the delay price relative to the capacity price.
    pub delay_weight: f64,
    /// Weight of the replica price.
    pub replica_weight: f64,
}

impl Default for ApproConfig {
    fn default() -> Self {
        Self {
            price_mu: None,
            order: QueryOrder::GlobalCheapestFirst,
            delay_weight: 0.0,
            replica_weight: 1.0,
        }
    }
}

/// Outcome of a primal-dual run: the solution plus the dual certificate.
#[derive(Debug, Clone)]
pub struct ApproReport {
    /// The feasible primal solution.
    pub solution: Solution,
    /// Value of the feasible dual solution (8) assembled from the final
    /// prices — an upper bound on the optimum of the LP relaxation and
    /// hence on every feasible placement's volume.
    pub dual_bound: f64,
    /// Final capacity price per node.
    pub theta: Vec<f64>,
}

/// Reusable scratch buffers for [`Appro::plan_query`]: one allocation
/// per run instead of one per (query, dataset) invocation.
#[derive(Debug, Default)]
struct PlanScratch {
    /// Tentative extra load per node from demands already planned for
    /// the current query; only `touched` entries are non-zero.
    extra: Vec<f64>,
    /// Node indices with non-zero `extra`, zeroed lazily on entry.
    touched: Vec<usize>,
    /// Replicas the current plan would create.
    pending: Vec<(DatasetId, ComputeNodeId)>,
    /// Demand indices in planning order (largest compute demand first).
    order: Vec<usize>,
}

/// The shared primal-dual engine behind `Appro-S` and `Appro-G`.
#[derive(Debug, Clone, Default)]
pub struct Appro {
    /// Engine configuration.
    pub config: ApproConfig,
}

impl Appro {
    /// Creates an engine with explicit configuration.
    pub fn with_config(config: ApproConfig) -> Self {
        Self { config }
    }

    fn mu(&self, inst: &Instance) -> f64 {
        self.config
            .price_mu
            .unwrap_or(1.0 + inst.cloud().compute_count() as f64)
    }

    /// Capacity price of a node at load fraction `x ∈ [0, 1]`.
    fn theta(&self, mu: f64, x: f64) -> f64 {
        debug_assert!(mu > 1.0);
        (mu.powf(x.clamp(0.0, 1.0)) - 1.0) / (mu - 1.0)
    }

    /// `θ_l` at node `v`'s committed load — the batched capacity price
    /// the candidate scan reuses for every node the current plan has not
    /// stacked extra load on. Bit-identical to pricing `used + 0.0`
    /// inline (`used ≥ 0`, so adding `+0.0` is the identity).
    fn theta_committed(&self, st: &AdmissionState<'_>, mu: f64, v: ComputeNodeId) -> f64 {
        let avail = st.instance().cloud().available(v);
        let x = if avail > 0.0 { st.used(v) / avail } else { 1.0 };
        self.theta(mu, x)
    }

    /// Price of serving demand `idx` of `q` at `v`, given the cached
    /// base assignment delay of the pair, tentative extra load per node,
    /// replicas pending within the same plan, and the batched capacity
    /// prices `theta0`. Returns `None` when the pair is infeasible.
    #[allow(clippy::too_many_arguments)]
    fn demand_price(
        &self,
        st: &AdmissionState<'_>,
        mu: f64,
        q: QueryId,
        idx: usize,
        v: ComputeNodeId,
        base_delay: f64,
        extra: &[f64],
        pending_replicas: &[(DatasetId, ComputeNodeId)],
        theta0: &[f64],
    ) -> Option<f64> {
        let inst = st.instance();
        let query = inst.query(q);
        let d = query.demands[idx].dataset;
        let pending_here = pending_replicas.iter().any(|&(pd, pv)| pd == d && pv == v);
        let have = st.has_replica(d, v) || pending_here;
        let pending_count = pending_replicas.iter().filter(|&&(pd, _)| pd == d).count();
        // For erasure-coded datasets the candidate scan prices the whole
        // shard set a read at `v` would materialize; for replication the
        // planned set degenerates to `{v}` and the checks below reproduce
        // the paper's single-copy rule bit for bit.
        let scheme = inst.scheme(d);
        let planned = if scheme.needs_decode() {
            Some(st.planned_holders_with(d, v, pending_replicas))
        } else {
            None
        };
        let new_holders = match &planned {
            Some(holders) => holders
                .iter()
                .filter(|&&h| {
                    !st.has_replica(d, h)
                        && !pending_replicas.iter().any(|&(pd, pv)| pd == d && pv == h)
                })
                .count(),
            None => usize::from(!have),
        };
        if st.replica_count(d) + pending_count + new_holders > inst.slots(d) {
            st.note_check(Some(RejectReason::ReplicaBudget));
            return None;
        }
        let need = st.compute_demand(q, idx);
        let avail = inst.cloud().available(v);
        if st.used(v) + extra[v.index()] + need > avail + FEASIBILITY_EPS {
            st.note_check(Some(RejectReason::Capacity));
            return None;
        }
        let mut delay = base_delay;
        if let Some(holders) = &planned {
            delay += read_overhead(inst, d, v, holders);
        }
        if delay > query.deadline + FEASIBILITY_EPS {
            st.note_check(Some(RejectReason::Deadline));
            return None;
        }
        st.note_check(None);
        // Current load fraction prices the congestion (the classic
        // Buchbinder–Naor rule: price × demand, with the price frozen at
        // the pre-assignment load — a post-assignment price would tax
        // large demands quadratically and fragment capacity across many
        // small queries, hurting exactly the big-volume admissions the
        // objective rewards). The batched `theta0` already holds θ_l at
        // the committed load; only nodes stacked by the current plan
        // (extra ≠ 0, rare) need a fresh `powf`.
        let capacity_price = if extra[v.index()] == 0.0 {
            query.compute_rate * theta0[v.index()]
        } else {
            let x = if avail > 0.0 {
                (st.used(v) + extra[v.index()]) / avail
            } else {
                1.0
            };
            query.compute_rate * self.theta(mu, x)
        };
        let delay_price = self.config.delay_weight * delay / query.deadline;
        // The replica price sums over every *new* holder the read would
        // create: the i-th fresh location is priced (placed + pending + i)
        // / slots, so a shard set pays for each slot it consumes. For
        // replication (at most one new holder) this is exactly the paper's
        // (count + pending)/K.
        let replica_price = {
            let base = st.replica_count(d) + pending_count;
            let slots = inst.slots(d) as f64;
            self.config.replica_weight
                * (0..new_holders)
                    .map(|i| (base + i) as f64 / slots)
                    .sum::<f64>()
        };
        Some(capacity_price + delay_price + replica_price)
    }

    /// Builds the cheapest feasible plan for `q` under the current state:
    /// demands are planned hardest-first (largest compute demand), each at
    /// its min-price node, with intra-plan stacking. Returns the plan and
    /// its total price.
    ///
    /// `naive` selects the reference per-node probe (used by the
    /// equivalence suite); the default path scans the instance's cached
    /// deadline-feasible candidate list instead. Both visit surviving
    /// candidates in ascending node-id order with strict `<` improvement,
    /// so tie-breaks — and therefore output — are bit-for-bit identical.
    fn plan_query(
        &self,
        st: &AdmissionState<'_>,
        mu: f64,
        q: QueryId,
        theta0: &[f64],
        scratch: &mut PlanScratch,
        naive: bool,
    ) -> Option<(Vec<PlannedDemand>, f64)> {
        let inst = st.instance();
        let query = inst.query(q);
        let n_demands = query.demands.len();
        let PlanScratch {
            extra,
            touched,
            pending,
            order,
        } = scratch;
        extra.resize(inst.cloud().compute_count(), 0.0);
        for &vi in touched.iter() {
            extra[vi] = 0.0;
        }
        touched.clear();
        pending.clear();
        order.clear();
        order.extend(0..n_demands);
        order.sort_by(|&a, &b| st.compute_demand(q, b).total_cmp(&st.compute_demand(q, a)));
        let mut plan = vec![
            PlannedDemand {
                node: ComputeNodeId(0),
                new_replica: false,
            };
            n_demands
        ];
        let mut total_price = 0.0;
        for &idx in order.iter() {
            let mut best: Option<(ComputeNodeId, f64)> = None;
            if naive {
                for v in inst.cloud().compute_ids() {
                    let base = assignment_delay(inst, q, idx, v);
                    if let Some(p) =
                        self.demand_price(st, mu, q, idx, v, base, extra, pending, theta0)
                    {
                        if best.is_none_or(|(_, bp)| p < bp) {
                            best = Some((v, p));
                        }
                    }
                }
            } else {
                for (v, base) in inst.solver_cache().candidates(q, idx) {
                    if let Some(p) =
                        self.demand_price(st, mu, q, idx, v, base, extra, pending, theta0)
                    {
                        if best.is_none_or(|(_, bp)| p < bp) {
                            best = Some((v, p));
                        }
                    }
                }
            }
            let (v, p) = best?;
            let d = query.demands[idx].dataset;
            let new_replica =
                !st.has_replica(d, v) && !pending.iter().any(|&(pd, pv)| pd == d && pv == v);
            // Record every holder the chosen node commits the plan to:
            // just `v` for replication, `v` plus the shard bootstrap set
            // for erasure-coded datasets, so later demands price the
            // remaining budget correctly.
            for h in st.planned_holders_with(d, v, pending) {
                if !st.has_replica(d, h) && !pending.iter().any(|&(pd, pv)| pd == d && pv == h) {
                    pending.push((d, h));
                }
            }
            if extra[v.index()] == 0.0 {
                touched.push(v.index());
            }
            extra[v.index()] += st.compute_demand(q, idx);
            plan[idx] = PlannedDemand {
                node: v,
                new_replica,
            };
            total_price += p;
        }
        debug_assert!(st.plan_feasible(q, &plan));
        Some((plan, total_price))
    }

    /// Plans one query against an external [`AdmissionState`]: the
    /// per-arrival step reused by the online controller
    /// ([`crate::online::OnlineAppro`]). Returns the cheapest feasible
    /// plan and its total dual price, or `None` when the query cannot be
    /// served at all.
    pub fn plan_query_public(
        &self,
        st: &AdmissionState<'_>,
        q: QueryId,
    ) -> Option<(Vec<PlannedDemand>, f64)> {
        let inst = st.instance();
        let mu = self.mu(inst);
        let theta0: Vec<f64> = inst
            .cloud()
            .compute_ids()
            .map(|v| self.theta_committed(st, mu, v))
            .collect();
        let mut scratch = PlanScratch::default();
        self.plan_query(st, mu, q, &theta0, &mut scratch, false)
    }

    /// Runs the engine, returning the solution plus the dual certificate.
    pub fn run(&self, inst: &Instance) -> ApproReport {
        self.run_inner(inst, false)
    }

    /// Reference path kept for the equivalence suite: prices every
    /// compute node through [`assignment_delay`] per probe instead of the
    /// pre-filtered candidate matrix. Tests pin [`Appro::run`]
    /// byte-identical to this; it is not meant for production use.
    #[doc(hidden)]
    pub fn run_naive(&self, inst: &Instance) -> ApproReport {
        self.run_inner(inst, true)
    }

    fn run_inner(&self, inst: &Instance, naive: bool) -> ApproReport {
        let _run_span = obs::span("appro", "appro.run");
        let mu = self.mu(inst);
        let mut st = AdmissionState::new(inst);
        // One scratch allocation for the whole run, reused across every
        // per-(query, dataset) invocation the engine makes.
        let mut scratch = PlanScratch::default();
        // Batched capacity prices: θ_l at each node's committed load,
        // recomputed only for the nodes a commit touches instead of per
        // candidate probe (`µ^x` is the scan's priciest flop).
        let mut theta0: Vec<f64> = inst
            .cloud()
            .compute_ids()
            .map(|v| self.theta_committed(&st, mu, v))
            .collect();
        // Tallied locally in plain integers and flushed to the registry
        // once at the end: the hot loop stays free of atomics.
        let mut iterations: u64 = 0;
        let mut plans: u64 = 0;
        match self.config.order {
            QueryOrder::GlobalCheapestFirst => {
                let mut pending: Vec<QueryId> = inst.query_ids().collect();
                loop {
                    iterations += 1;
                    // One `appro.select` span per committed query: the
                    // O(|pending|) candidate scan is the solver's hot
                    // path, so profiles attribute self-time to it.
                    let select_span = obs::span("appro", "appro.select");
                    let mut best: Option<(usize, Vec<PlannedDemand>, f64)> = None;
                    for (i, &q) in pending.iter().enumerate() {
                        plans += 1;
                        if let Some((plan, price)) =
                            self.plan_query(&st, mu, q, &theta0, &mut scratch, naive)
                        {
                            // Cheapest dual price per admitted GB first:
                            // the discrete uniform-raise winner.
                            let density = price / inst.demanded_volume(q).max(1e-12);
                            if best.as_ref().is_none_or(|&(_, _, bd)| density < bd) {
                                best = Some((i, plan, density));
                            }
                        }
                    }
                    drop(select_span);
                    let Some((i, plan, _)) = best else { break };
                    let q = pending.swap_remove(i);
                    st.commit(q, &plan);
                    for p in &plan {
                        theta0[p.node.index()] = self.theta_committed(&st, mu, p.node);
                    }
                }
            }
            one_pass => {
                let mut queue: Vec<QueryId> = inst.query_ids().collect();
                match one_pass {
                    QueryOrder::Input => {}
                    QueryOrder::VolumeDesc => queue.sort_by(|&a, &b| {
                        inst.demanded_volume(b).total_cmp(&inst.demanded_volume(a))
                    }),
                    QueryOrder::DeadlineAsc => queue
                        .sort_by(|&a, &b| inst.query(a).deadline.total_cmp(&inst.query(b).deadline)),
                    QueryOrder::GlobalCheapestFirst => unreachable!(),
                }
                for q in queue {
                    iterations += 1;
                    plans += 1;
                    if let Some((plan, _)) =
                        self.plan_query(&st, mu, q, &theta0, &mut scratch, naive)
                    {
                        st.commit(q, &plan);
                        for p in &plan {
                            theta0[p.node.index()] = self.theta_committed(&st, mu, p.node);
                        }
                    }
                }
            }
        }

        // Final capacity prices and the feasible dual certificate.
        let theta: Vec<f64> = inst
            .cloud()
            .compute_ids()
            .map(|v| self.theta(mu, st.load_fraction(v)))
            .collect();
        let dual_bound = self.dual_bound(inst, &theta);
        let admitted_volume = st.solution().admitted_volume(inst);
        let admitted_count = st.solution().admitted_count();
        obs::counter("appro.iterations").add(iterations);
        obs::counter("appro.plans").add(plans);
        obs::gauge("appro.dual_bound").set(dual_bound);
        obs::gauge("appro.dual_gap").set(dual_bound - admitted_volume);
        obs::emit(
            "appro",
            "appro.run",
            "appro.summary",
            &[
                ("iterations", iterations.into()),
                ("plans", plans.into()),
                ("admitted_count", admitted_count.into()),
                ("admitted_volume", admitted_volume.into()),
                ("dual_bound", dual_bound.into()),
                ("dual_gap", (dual_bound - admitted_volume).into()),
            ],
        );
        ApproReport {
            solution: st.into_solution(),
            dual_bound,
            theta,
        }
    }

    /// Assembles the feasible dual solution of program (8)–(14) implied by
    /// final capacity prices `theta` and returns its objective value:
    ///
    /// * `η_ml = 0`;
    /// * `y_ml = max(0, |S_qm|·(1 − r_m·θ_l))` makes every constraint (9)
    ///   hold;
    /// * constraint (10) requires `Σ_m μ_qm ≥ Σ_m y_ml` at every node, so
    ///   `Σ_m μ_qm = max_l Σ_m y_ml`;
    /// * dual objective (8) = `Σ_l A(v_l)·θ_l + K·Σ_m μ_qm`.
    ///
    /// For multi-dataset queries the per-demand volumes replace `|S_qm|`,
    /// mirroring how Algorithm 2 invokes Algorithm 1 per demand. With
    /// per-dataset redundancy schemes the budget multiplier `K` becomes
    /// `max_n slots(n)` — every dataset's holder count stays below it, so
    /// the certificate remains a valid upper bound (and is unchanged when
    /// all datasets use the default `Replication(K)`).
    pub fn dual_bound(&self, inst: &Instance, theta: &[f64]) -> f64 {
        let cloud = inst.cloud();
        let capacity_part: f64 = cloud
            .compute_ids()
            .map(|v| cloud.available(v) * theta[v.index()])
            .sum();
        let mut worst_y_sum: f64 = 0.0;
        for v in cloud.compute_ids() {
            let mut y_sum = 0.0;
            for q in inst.queries() {
                for dem in &q.demands {
                    let size = inst.size(dem.dataset);
                    let y = size * (1.0 - q.compute_rate * theta[v.index()]);
                    if y > 0.0 {
                        y_sum += y;
                    }
                }
            }
            worst_y_sum = worst_y_sum.max(y_sum);
        }
        let k_max = inst
            .dataset_ids()
            .map(|d| inst.slots(d))
            .max()
            .unwrap_or(inst.max_replicas());
        capacity_part + k_max as f64 * worst_y_sum
    }
}

/// Algorithm 1 of the paper: the special case where every query demands a
/// single dataset. The engine is shared with [`ApproG`]; the type exists so
/// experiment panels and reports carry the paper's algorithm names.
#[derive(Debug, Clone, Default)]
pub struct ApproS {
    /// Engine configuration.
    pub config: ApproConfig,
}

impl PlacementAlgorithm for ApproS {
    fn name(&self) -> &'static str {
        "Appro-S"
    }

    fn solve(&self, inst: &Instance) -> Solution {
        debug_assert!(
            inst.queries().iter().all(|q| q.demands.len() == 1),
            "Appro-S expects single-dataset queries (use Appro-G otherwise)"
        );
        Appro::with_config(self.config).run(inst).solution
    }
}

/// Algorithm 2 of the paper: the general case with multi-dataset queries.
#[derive(Debug, Clone, Default)]
pub struct ApproG {
    /// Engine configuration.
    pub config: ApproConfig,
}

impl PlacementAlgorithm for ApproG {
    fn name(&self) -> &'static str {
        "Appro-G"
    }

    fn solve(&self, inst: &Instance) -> Solution {
        Appro::with_config(self.config).run(inst).solution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgerep_model::prelude::*;

    fn two_node_instance(k: usize) -> Instance {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(8.0, 0.01);
        b.link(dc, cl, 0.05);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, k);
        let d0 = ib.add_dataset(4.0, dc);
        let d1 = ib.add_dataset(2.0, dc);
        ib.add_query(cl, vec![Demand::new(d0, 0.5)], 1.0, 1.0);
        ib.add_query(cl, vec![Demand::new(d1, 0.5)], 1.0, 1.0);
        ib.add_query(
            cl,
            vec![Demand::new(d0, 1.0), Demand::new(d1, 0.5)],
            1.0,
            1.0,
        );
        ib.build().unwrap()
    }

    #[test]
    fn admits_everything_when_resources_abound() {
        let inst = two_node_instance(2);
        let report = Appro::default().run(&inst);
        report.solution.validate(&inst).unwrap();
        assert_eq!(report.solution.admitted_count(), 3);
        assert_eq!(report.solution.admitted_volume(&inst), 4.0 + 2.0 + 6.0);
    }

    #[test]
    fn dual_bound_dominates_primal() {
        let inst = two_node_instance(2);
        let report = Appro::default().run(&inst);
        assert!(
            report.dual_bound >= report.solution.admitted_volume(&inst) - 1e-9,
            "dual {} < primal {}",
            report.dual_bound,
            report.solution.admitted_volume(&inst)
        );
    }

    #[test]
    fn theta_prices_rise_with_load() {
        let inst = two_node_instance(2);
        let report = Appro::default().run(&inst);
        // Something was admitted, so at least one node carries load and a
        // positive price.
        assert!(report.theta.iter().any(|&t| t > 0.0));
        assert!(report
            .theta
            .iter()
            .all(|&t| (0.0..=1.0 + 1e-9).contains(&t)));
    }

    #[test]
    fn respects_tight_deadline_by_rejecting() {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(8.0, 0.01);
        b.link(dc, cl, 10.0); // remote DC behind a terrible link
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 1);
        let d0 = ib.add_dataset(4.0, dc);
        // Deadline so tight only local processing at cl would work, but cl
        // also cannot process in time (0.01·4 = 0.04 > 0.03).
        ib.add_query(cl, vec![Demand::new(d0, 1.0)], 1.0, 0.03);
        let inst = ib.build().unwrap();
        let sol = ApproS::default().solve(&inst);
        sol.validate(&inst).unwrap();
        assert_eq!(sol.admitted_count(), 0);
    }

    #[test]
    fn serves_at_home_cloudlet_when_deadline_requires() {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(8.0, 0.01);
        b.link(dc, cl, 10.0);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 1);
        let d0 = ib.add_dataset(4.0, dc);
        // 0.04 processing at cl fits a 0.05 deadline; the DC path cannot.
        ib.add_query(cl, vec![Demand::new(d0, 1.0)], 1.0, 0.05);
        let inst = ib.build().unwrap();
        let sol = ApproS::default().solve(&inst);
        sol.validate(&inst).unwrap();
        assert_eq!(sol.admitted_count(), 1);
        assert_eq!(sol.assignment_of(QueryId(0)).unwrap(), &[cl]);
        assert!(sol.has_replica(DatasetId(0), cl));
    }

    #[test]
    fn replica_budget_respected_under_pressure() {
        // Three cloudlets, each home to one query on the same dataset, all
        // needing local service; K = 1 admits only one of the remote pair.
        let mut b = EdgeCloudBuilder::new();
        let c0 = b.add_cloudlet(8.0, 0.01);
        let c1 = b.add_cloudlet(8.0, 0.01);
        let c2 = b.add_cloudlet(8.0, 0.01);
        b.link(c0, c1, 10.0);
        b.link(c1, c2, 10.0);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 1);
        let d0 = ib.add_dataset(2.0, c0);
        for home in [c0, c1, c2] {
            ib.add_query(home, vec![Demand::new(d0, 1.0)], 1.0, 0.05);
        }
        let inst = ib.build().unwrap();
        let sol = ApproS::default().solve(&inst);
        sol.validate(&inst).unwrap();
        assert_eq!(sol.replica_count(DatasetId(0)), 1);
        assert_eq!(sol.admitted_count(), 1);
    }

    #[test]
    fn capacity_forces_selectivity() {
        // One cloudlet (8 GHz), no other nodes; three 4-GB queries at
        // r = 1 need 4 GHz each: only two fit.
        let mut b = EdgeCloudBuilder::new();
        let cl = b.add_cloudlet(8.0, 0.001);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 3);
        let d0 = ib.add_dataset(4.0, cl);
        for _ in 0..3 {
            ib.add_query(cl, vec![Demand::new(d0, 1.0)], 1.0, 1.0);
        }
        let inst = ib.build().unwrap();
        let sol = ApproS::default().solve(&inst);
        sol.validate(&inst).unwrap();
        assert_eq!(sol.admitted_count(), 2);
        assert_eq!(sol.admitted_volume(&inst), 8.0);
    }

    #[test]
    fn all_orders_produce_feasible_solutions() {
        let inst = two_node_instance(2);
        for order in [
            QueryOrder::GlobalCheapestFirst,
            QueryOrder::Input,
            QueryOrder::VolumeDesc,
            QueryOrder::DeadlineAsc,
        ] {
            let cfg = ApproConfig {
                order,
                ..Default::default()
            };
            let report = Appro::with_config(cfg).run(&inst);
            report
                .solution
                .validate(&inst)
                .unwrap_or_else(|e| panic!("order {order:?} produced infeasible solution: {e:?}"));
        }
    }

    #[test]
    fn custom_mu_accepted() {
        let inst = two_node_instance(2);
        let cfg = ApproConfig {
            price_mu: Some(64.0),
            ..Default::default()
        };
        let report = Appro::with_config(cfg).run(&inst);
        report.solution.validate(&inst).unwrap();
    }

    #[test]
    fn multi_demand_query_stacks_and_admits() {
        let inst = two_node_instance(2);
        let sol = ApproG::default().solve(&inst);
        sol.validate(&inst).unwrap();
        assert!(sol.is_admitted(QueryId(2)), "general query should fit");
        let nodes = sol.assignment_of(QueryId(2)).unwrap();
        assert_eq!(nodes.len(), 2);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(ApproS::default().name(), "Appro-S");
        assert_eq!(ApproG::default().name(), "Appro-G");
    }

    /// Asserts `run()` (cached candidate matrix, batched θ) and
    /// `run_naive()` (per-probe `assignment_delay` over every node)
    /// produce byte-identical reports: same replicas and assignments,
    /// bit-for-bit equal duals.
    fn assert_cached_matches_naive(inst: &Instance, cfg: ApproConfig) {
        let appro = Appro::with_config(cfg);
        let cached = appro.run(inst);
        let naive = appro.run_naive(inst);
        assert_eq!(
            cached.solution, naive.solution,
            "cached scan changed the solution (order {:?})",
            cfg.order
        );
        assert_eq!(
            cached.dual_bound.to_bits(),
            naive.dual_bound.to_bits(),
            "dual bound drifted: {} vs {}",
            cached.dual_bound,
            naive.dual_bound
        );
        for (c, n) in cached.theta.iter().zip(&naive.theta) {
            assert_eq!(c.to_bits(), n.to_bits(), "theta drifted: {c} vs {n}");
        }
    }

    #[test]
    fn cached_scan_matches_naive_on_small_instances() {
        for k in [1, 2, 3] {
            let inst = two_node_instance(k);
            for order in [
                QueryOrder::GlobalCheapestFirst,
                QueryOrder::Input,
                QueryOrder::VolumeDesc,
                QueryOrder::DeadlineAsc,
            ] {
                assert_cached_matches_naive(
                    &inst,
                    ApproConfig {
                        order,
                        ..Default::default()
                    },
                );
            }
        }
    }

    #[test]
    fn cached_scan_matches_naive_on_fig2_and_fig3_workloads() {
        use edgerep_workload::{generate_instance, presets};
        for seed in 0..3u64 {
            let special = generate_instance(&presets::fig2_special_case(32), seed);
            assert_cached_matches_naive(&special, ApproConfig::default());
            let general = generate_instance(&presets::fig3_general_case(32), seed);
            assert_cached_matches_naive(&general, ApproConfig::default());
        }
        // One larger point so the pre-filter actually prunes.
        let big = generate_instance(&presets::fig3_general_case(60), 1);
        assert_cached_matches_naive(&big, ApproConfig::default());
    }

    #[test]
    fn cached_scan_matches_naive_under_erasure_coding() {
        // EC read overhead is applied on top of the cached base delay;
        // the filter must stay output-safe.
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let c0 = b.add_cloudlet(16.0, 0.01);
        let c1 = b.add_cloudlet(16.0, 0.01);
        let c2 = b.add_cloudlet(16.0, 0.01);
        b.link(dc, c0, 0.05);
        b.link(c0, c1, 0.05);
        b.link(c1, c2, 0.05);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 3);
        let d0 = ib.add_dataset(4.0, dc);
        ib.set_default_scheme(RedundancyScheme::erasure(2, 2).unwrap());
        for home in [c0, c1, c2] {
            ib.add_query(home, vec![Demand::new(d0, 1.0)], 1.0, 0.23);
        }
        let inst = ib.build().unwrap();
        assert_cached_matches_naive(&inst, ApproConfig::default());
    }

    #[test]
    fn erasure_coded_dataset_admits_with_shard_quorum() {
        // dc --0.05-- c0 --0.1-- c1; 4 GB dataset striped ec(2,1): any
        // admitted read must leave at least k = 2 shard holders placed.
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let c0 = b.add_cloudlet(8.0, 0.01);
        let c1 = b.add_cloudlet(8.0, 0.01);
        b.link(dc, c0, 0.05);
        b.link(c0, c1, 0.1);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 3);
        let d0 = ib.add_dataset(4.0, dc);
        ib.set_default_scheme(RedundancyScheme::erasure(2, 1).unwrap());
        ib.add_query(c0, vec![Demand::new(d0, 0.5)], 1.0, 1.0);
        let inst = ib.build().unwrap();
        let report = Appro::default().run(&inst);
        report.solution.validate(&inst).unwrap();
        assert_eq!(report.solution.admitted_count(), 1);
        assert!(report.solution.replica_count(DatasetId(0)) >= 2);
        assert!(
            report.dual_bound >= report.solution.admitted_volume(&inst) - 1e-9,
            "dual certificate must still dominate under EC"
        );
    }

    #[test]
    fn ec_storage_undercuts_replication_at_equal_admitted_volume() {
        // dc --0.05-- c0 --0.05-- c1 --0.05-- c2, one 4 GB dataset, three
        // queries (α = 1) homed at c0..c2 with a 0.23 s deadline. Remote
        // service costs ≥ 0.05·4 + proc > 0.23, so Replication(3) must
        // materialize three full copies (12 GB). ec(2,2) serves each home
        // locally (proc 0.04 + gather 0.05·2 + decode 0.02·4 = 0.22 s)
        // from 2 GB shards: four holders, 8 GB, same admitted volume.
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let c0 = b.add_cloudlet(16.0, 0.01);
        let c1 = b.add_cloudlet(16.0, 0.01);
        let c2 = b.add_cloudlet(16.0, 0.01);
        b.link(dc, c0, 0.05);
        b.link(c0, c1, 0.05);
        b.link(c1, c2, 0.05);
        let cloud = b.build().unwrap();
        let mut results = Vec::new();
        for scheme in [
            RedundancyScheme::replication(3).unwrap(),
            RedundancyScheme::erasure(2, 2).unwrap(),
        ] {
            let mut ib = InstanceBuilder::new(cloud.clone(), 3);
            let d0 = ib.add_dataset(4.0, dc);
            ib.set_default_scheme(scheme);
            for home in [c0, c1, c2] {
                ib.add_query(home, vec![Demand::new(d0, 1.0)], 1.0, 0.23);
            }
            let inst = ib.build().unwrap();
            let sol = ApproG::default().solve(&inst);
            sol.validate(&inst).unwrap();
            results.push((sol.admitted_volume(&inst), sol.storage_gb(&inst)));
        }
        let (rep_vol, rep_gb) = results[0];
        let (ec_vol, ec_gb) = results[1];
        assert_eq!(rep_vol, 12.0);
        assert_eq!(ec_vol, 12.0, "ec(2,2) must admit the same volume");
        assert!(
            ec_gb < rep_gb,
            "ec(2,2) storage {ec_gb} must undercut replication(3) {rep_gb}"
        );
    }
}
