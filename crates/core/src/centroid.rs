//! `Centroid-G`: a delay-centroid placement baseline (extension).
//!
//! Not in the paper, but the natural "facility location" strawman a
//! practitioner would try first: place each dataset's replicas at the
//! 1-median of its consumers' homes (weighted by demanded volume), spread
//! the remaining `K − 1` replicas over the homes with the worst service
//! delay from the replicas placed so far, then admit queries volume-first
//! at their cheapest feasible replica.
//!
//! It is deadline-aware at assignment time but, unlike `Appro`, its
//! placement ignores capacity contention and each dataset is placed in
//! isolation — which is exactly where the joint primal-dual view wins.
//! `placement_study` and the online extension bench include it for
//! context.

use edgerep_graph::centrality::weighted_centroid;
use edgerep_graph::NodeId;
use edgerep_model::delay::assignment_delay;
use edgerep_model::{ComputeNodeId, Instance, QueryId, Solution};

use crate::admission::{AdmissionState, PlannedDemand};
use crate::PlacementAlgorithm;

/// The delay-centroid baseline.
#[derive(Debug, Clone, Default)]
pub struct Centroid;

impl PlacementAlgorithm for Centroid {
    fn name(&self) -> &'static str {
        "Centroid-G"
    }

    fn solve(&self, inst: &Instance) -> Solution {
        let cloud = inst.cloud();
        let delays = cloud.delay_matrix();
        let mut st = AdmissionState::new(inst);
        let candidates: Vec<NodeId> = cloud
            .compute_ids()
            .map(|v| cloud.node(v).graph_node)
            .collect();
        // Reverse map graph node -> compute id for the chosen centroids.
        let compute_of: std::collections::HashMap<NodeId, ComputeNodeId> = cloud
            .compute_ids()
            .map(|v| (cloud.node(v).graph_node, v))
            .collect();

        // --- Placement: per dataset, 1-median then worst-served homes. --
        for d in inst.dataset_ids() {
            let consumers: Vec<(ComputeNodeId, f64)> = inst
                .consumers_of(d)
                .map(|q| (q.home, inst.size(d)))
                .collect();
            if consumers.is_empty() {
                continue; // nothing demands it; keep the budget
            }
            let targets: Vec<(NodeId, f64)> = consumers
                .iter()
                .map(|&(home, w)| (cloud.node(home).graph_node, w))
                .collect();
            let Some(first) = weighted_centroid(delays, &candidates, &targets) else {
                continue;
            };
            st.place_replica(d, compute_of[&first]);
            // Remaining budget: repeatedly cover the consumer home whose
            // best current replica delay is worst.
            for _ in 1..inst.max_replicas() {
                let worst = consumers
                    .iter()
                    .map(|&(home, _)| {
                        let best = st
                            .solution()
                            .replicas_of(d)
                            .iter()
                            .map(|&r| cloud.min_delay(r, home))
                            .fold(f64::INFINITY, f64::min);
                        (home, best)
                    })
                    .max_by(|a, b| a.1.total_cmp(&b.1));
                let Some((worst_home, worst_delay)) = worst else {
                    break;
                };
                if worst_delay <= 0.0 {
                    break; // everyone already served locally
                }
                if st.has_replica(d, worst_home) {
                    break; // no further improvement available
                }
                st.place_replica(d, worst_home);
            }
        }

        // --- Assignment: volume-descending, cheapest feasible replica. --
        let mut queries: Vec<QueryId> = inst.query_ids().collect();
        queries.sort_by(|&a, &b| {
            inst.demanded_volume(b)
                .total_cmp(&inst.demanded_volume(a))
                .then(a.cmp(&b))
        });
        for q in queries {
            let query = inst.query(q);
            let mut plan = Vec::with_capacity(query.demands.len());
            let mut extra = vec![0.0; cloud.compute_count()];
            let mut complete = true;
            for (idx, dem) in query.demands.iter().enumerate() {
                let mut replicas: Vec<ComputeNodeId> =
                    st.solution().replicas_of(dem.dataset).to_vec();
                replicas.sort_by(|&a, &b| {
                    assignment_delay(inst, q, idx, a)
                        .total_cmp(&assignment_delay(inst, q, idx, b))
                        .then(a.cmp(&b))
                });
                match replicas
                    .into_iter()
                    .find(|&v| st.demand_feasible_with(q, idx, v, extra[v.index()]))
                {
                    Some(v) => {
                        extra[v.index()] += st.compute_demand(q, idx);
                        plan.push(PlannedDemand {
                            node: v,
                            new_replica: false,
                        });
                    }
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete && st.plan_feasible(q, &plan) {
                st.commit(q, &plan);
            }
        }
        st.into_solution()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgerep_model::prelude::*;

    #[test]
    fn places_at_the_consumer_centroid() {
        // Homes at cl0, cl1 and cl2 on a path cl0 - cl1 - cl2: cl1 is the
        // strict 1-median (0.01 + 0 + 0.01 < any alternative).
        let mut b = EdgeCloudBuilder::new();
        let c0 = b.add_cloudlet(50.0, 0.001);
        let c1 = b.add_cloudlet(50.0, 0.001);
        let c2 = b.add_cloudlet(50.0, 0.001);
        b.link(c0, c1, 0.01);
        b.link(c1, c2, 0.01);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 1);
        let d = ib.add_dataset(2.0, c0);
        ib.add_query(c0, vec![Demand::new(d, 1.0)], 1.0, 1.0);
        ib.add_query(c1, vec![Demand::new(d, 1.0)], 1.0, 1.0);
        ib.add_query(c2, vec![Demand::new(d, 1.0)], 1.0, 1.0);
        let inst = ib.build().unwrap();
        let sol = Centroid.solve(&inst);
        sol.validate(&inst).unwrap();
        assert!(sol.has_replica(DatasetId(0), c1), "centroid is c1");
        assert_eq!(sol.admitted_count(), 3);
    }

    #[test]
    fn spreads_remaining_budget_to_worst_served_home() {
        // Two distant homes, K = 2: both should end up with local copies.
        let mut b = EdgeCloudBuilder::new();
        let c0 = b.add_cloudlet(50.0, 0.001);
        let c1 = b.add_cloudlet(50.0, 0.001);
        b.link(c0, c1, 5.0);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d = ib.add_dataset(2.0, c0);
        ib.add_query(c0, vec![Demand::new(d, 1.0)], 1.0, 0.1);
        ib.add_query(c1, vec![Demand::new(d, 1.0)], 1.0, 0.1);
        let inst = ib.build().unwrap();
        let sol = Centroid.solve(&inst);
        sol.validate(&inst).unwrap();
        assert_eq!(sol.replica_count(DatasetId(0)), 2);
        assert_eq!(sol.admitted_count(), 2);
    }

    #[test]
    fn unconsumed_dataset_gets_no_replicas() {
        let mut b = EdgeCloudBuilder::new();
        let c0 = b.add_cloudlet(50.0, 0.001);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d_used = ib.add_dataset(2.0, c0);
        let _d_unused = ib.add_dataset(3.0, c0);
        ib.add_query(c0, vec![Demand::new(d_used, 1.0)], 1.0, 1.0);
        let inst = ib.build().unwrap();
        let sol = Centroid.solve(&inst);
        sol.validate(&inst).unwrap();
        assert_eq!(sol.replica_count(DatasetId(1)), 0);
    }

    #[test]
    fn feasible_on_random_instances_and_below_appro() {
        use edgerep_workload::{generate_instance, WorkloadParams};
        let params = WorkloadParams::default();
        let mut centroid_total = 0.0;
        let mut appro_total = 0.0;
        for seed in 0..6 {
            let inst = generate_instance(&params, seed);
            let sol = Centroid.solve(&inst);
            sol.validate(&inst).unwrap();
            centroid_total += sol.admitted_volume(&inst);
            appro_total += crate::appro::ApproG::default()
                .solve(&inst)
                .admitted_volume(&inst);
        }
        assert!(
            appro_total >= centroid_total,
            "Appro {appro_total} should dominate Centroid {centroid_total} on average"
        );
    }
}
