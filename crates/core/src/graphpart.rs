//! `Graph-S` / `Graph-G`: the paper's second simulation benchmark (§4.1),
//! adapted from Golab et al., "Distributed data placement to minimize
//! communication costs via graph partitioning" (SSDBM'14).
//!
//! Published sketch: "places `K` replicas for each dataset at data centers
//! or cloudlets, if the delay requirement of the query can be satisfied …
//! It then makes a graph partitioning with maximum volume of datasets
//! demanded by admitted queries."
//!
//! Concrete interpretation (documented per DESIGN.md):
//!
//! 1. **Replica placement** — each dataset gets up to `K` replicas at the
//!    nodes scoring the highest deadline-feasible demand volume over the
//!    dataset's consumers (a placement that looks at delays but not at
//!    capacity contention).
//! 2. **Partitioning** — a query–replica affinity graph over the compute
//!    nodes (edge weight = demanded volume routed between a query's home
//!    and a replica location) is cut into
//!    `max(2, |V|/8)` parts with the Kernighan–Lin partitioner from
//!    `edgerep-graph`.
//! 3. **Assignment** — queries in demanded-volume-descending order are
//!    served preferentially by replicas inside their home partition
//!    (falling back to remote parts when the local ones cannot meet the
//!    deadline or capacity), all-or-nothing per query.
//!
//! The algorithm beats `Greedy` (it respects deadlines when placing and
//! co-locates queries with data) but trails `Appro` (placement ignores
//! capacity contention and the partition boundary fragments capacity),
//! which is the ordering the paper reports.

use edgerep_graph::partition::partition_kway;
use edgerep_graph::Graph;
use edgerep_model::delay::assignment_delay;
use edgerep_model::{ComputeNodeId, Instance, QueryId, Solution, FEASIBILITY_EPS};
use edgerep_obs as obs;

use crate::admission::{AdmissionState, PlannedDemand};
use crate::PlacementAlgorithm;

/// The graph-partitioning benchmark.
#[derive(Debug, Clone)]
pub struct GraphPartition {
    name: &'static str,
    /// Number of partitions; `None` = `max(2, |V|/8)`.
    pub parts: Option<usize>,
}

impl GraphPartition {
    /// `Graph-S`: single-dataset panels (Fig. 2).
    pub fn special() -> Self {
        Self {
            name: "Graph-S",
            parts: None,
        }
    }

    /// `Graph-G`: multi-dataset panels (Figs. 3–5).
    pub fn general() -> Self {
        Self {
            name: "Graph-G",
            parts: None,
        }
    }

    fn part_count(&self, inst: &Instance) -> usize {
        self.parts
            .unwrap_or_else(|| (inst.cloud().compute_count() / 8).max(2))
    }
}

impl PlacementAlgorithm for GraphPartition {
    fn name(&self) -> &'static str {
        self.name
    }

    fn solve(&self, inst: &Instance) -> Solution {
        let _span = obs::span("graphpart", "graphpart.solve");
        let mut st = AdmissionState::new(inst);
        let v_count = inst.cloud().compute_count();

        // --- 1. Replica placement by deadline-feasible demand volume ----
        let place_span = obs::span("graphpart", "graphpart.place");
        for d in inst.dataset_ids() {
            let mut score = vec![0.0f64; v_count];
            for q in inst.consumers_of(d) {
                let idx = q
                    .demands
                    .iter()
                    .position(|dem| dem.dataset == d)
                    .expect("consumer demands d");
                for v in inst.cloud().compute_ids() {
                    if assignment_delay(inst, q.id, idx, v) <= q.deadline + FEASIBILITY_EPS {
                        score[v.index()] += inst.size(d);
                    }
                }
            }
            let mut ranked: Vec<ComputeNodeId> = inst.cloud().compute_ids().collect();
            ranked.sort_by(|&a, &b| score[b.index()].total_cmp(&score[a.index()]).then(a.cmp(&b)));
            for v in ranked
                .into_iter()
                .filter(|v| score[v.index()] > 0.0)
                .take(inst.max_replicas())
            {
                st.place_replica(d, v);
            }
        }

        drop(place_span);

        // --- 2. Partition the query-replica affinity graph --------------
        let part_span = obs::span("graphpart", "graphpart.partition");
        let mut affinity = Graph::with_nodes(v_count);
        for q in inst.queries() {
            for dem in &q.demands {
                for &v in st.solution().replicas_of(dem.dataset) {
                    if v != q.home {
                        affinity.add_edge(
                            edgerep_graph::NodeId(q.home.0),
                            edgerep_graph::NodeId(v.0),
                            inst.size(dem.dataset),
                        );
                    }
                }
            }
        }
        let labels = partition_kway(&affinity, self.part_count(inst));
        drop(part_span);

        // --- 3. Volume-descending assignment, local part first ----------
        let _assign_span = obs::span("graphpart", "graphpart.assign");
        let mut queries: Vec<QueryId> = inst.query_ids().collect();
        queries.sort_by(|&a, &b| {
            inst.demanded_volume(b)
                .total_cmp(&inst.demanded_volume(a))
                .then(a.cmp(&b))
        });
        for q in queries {
            let query = inst.query(q);
            let home_part = labels[query.home.index()];
            let mut plan = Vec::with_capacity(query.demands.len());
            let mut extra = vec![0.0; v_count];
            let mut complete = true;
            for (idx, dem) in query.demands.iter().enumerate() {
                // Candidates: existing replicas only (placement already
                // happened), local partition first, then by delay.
                let mut candidates: Vec<ComputeNodeId> =
                    st.solution().replicas_of(dem.dataset).to_vec();
                candidates.sort_by(|&a, &b| {
                    let local_a = labels[a.index()] == home_part;
                    let local_b = labels[b.index()] == home_part;
                    local_b
                        .cmp(&local_a)
                        .then_with(|| {
                            assignment_delay(inst, q, idx, a)
                                .total_cmp(&assignment_delay(inst, q, idx, b))
                        })
                        .then(a.cmp(&b))
                });
                let choice = candidates
                    .into_iter()
                    .find(|&v| st.demand_feasible_with(q, idx, v, extra[v.index()]));
                match choice {
                    Some(v) => {
                        extra[v.index()] += st.compute_demand(q, idx);
                        plan.push(PlannedDemand {
                            node: v,
                            new_replica: false,
                        });
                    }
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete && st.plan_feasible(q, &plan) {
                st.commit(q, &plan);
            }
        }
        st.into_solution()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgerep_model::prelude::*;

    fn inst() -> Instance {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let c1 = b.add_cloudlet(10.0, 0.01);
        let c2 = b.add_cloudlet(10.0, 0.01);
        b.link(dc, c1, 0.05);
        b.link(c1, c2, 0.02);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d0 = ib.add_dataset(3.0, dc);
        let d1 = ib.add_dataset(2.0, dc);
        ib.add_query(c1, vec![Demand::new(d0, 0.5)], 1.0, 1.0);
        ib.add_query(
            c2,
            vec![Demand::new(d0, 1.0), Demand::new(d1, 0.5)],
            1.0,
            1.0,
        );
        ib.build().unwrap()
    }

    #[test]
    fn names() {
        assert_eq!(GraphPartition::special().name(), "Graph-S");
        assert_eq!(GraphPartition::general().name(), "Graph-G");
    }

    #[test]
    fn produces_feasible_solutions() {
        let inst = inst();
        let sol = GraphPartition::general().solve(&inst);
        sol.validate(&inst).unwrap();
        assert!(sol.admitted_count() >= 1);
    }

    #[test]
    fn replicas_respect_budget() {
        let inst = inst();
        let sol = GraphPartition::general().solve(&inst);
        for d in inst.dataset_ids() {
            assert!(sol.replica_count(d) <= inst.max_replicas());
        }
    }

    #[test]
    fn replicas_only_at_deadline_feasible_nodes() {
        // A node that can serve no consumer within its deadline gets no
        // replica.
        let mut b = EdgeCloudBuilder::new();
        let far = b.add_cloudlet(10.0, 5.0); // absurdly slow processor
        let near = b.add_cloudlet(10.0, 0.001);
        b.link(far, near, 0.01);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d0 = ib.add_dataset(2.0, near);
        ib.add_query(near, vec![Demand::new(d0, 1.0)], 1.0, 0.1);
        let inst = ib.build().unwrap();
        let sol = GraphPartition::special().solve(&inst);
        sol.validate(&inst).unwrap();
        assert!(!sol.has_replica(DatasetId(0), far));
        assert!(sol.has_replica(DatasetId(0), near));
        assert_eq!(sol.admitted_count(), 1);
    }

    #[test]
    fn explicit_part_count_honoured() {
        let inst = inst();
        let alg = GraphPartition {
            name: "Graph-G",
            parts: Some(3),
        };
        let sol = alg.solve(&inst);
        sol.validate(&inst).unwrap();
    }

    #[test]
    fn random_instances_validate() {
        use edgerep_workload::{generate_instance, WorkloadParams};
        for seed in 0..5 {
            let inst = generate_instance(&WorkloadParams::default(), seed);
            let sol = GraphPartition::general().solve(&inst);
            sol.validate(&inst).unwrap();
        }
    }
}
