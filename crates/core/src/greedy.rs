//! `Greedy-S` / `Greedy-G`: the paper's first simulation benchmark (§4.1).
//!
//! Published procedure, implemented literally: for each demanded dataset,
//! the algorithm "selects a data center or cloudlet with largest available
//! computing resource to place a replica. If the delay requirement cannot
//! be satisfied, it then selects \[the\] second largest … This procedure
//! continues until the query is admitted or there are already `K` replicas
//! of the dataset in the system."
//!
//! Two consequences follow from that wording and explain the large margins
//! the paper reports for `Appro` (Figs. 2–5):
//!
//! * replicas placed while probing **persist even when the probe fails**
//!   the delay check — the budget burns on big-but-far nodes (typically
//!   data centers, whose Internet links are slow), and
//! * capacity is chased greedily with no view of the deadline or of other
//!   queries.

use edgerep_model::{ComputeNodeId, Instance, QueryId, Solution};
use edgerep_obs as obs;

use crate::admission::{AdmissionState, PlannedDemand};
use crate::PlacementAlgorithm;

/// The greedy benchmark; [`Greedy::special`] and [`Greedy::general`] only
/// differ in display name (the procedure is per-demand either way).
#[derive(Debug, Clone)]
pub struct Greedy {
    name: &'static str,
}

impl Greedy {
    /// `Greedy-S`: the single-dataset-per-query panels (Fig. 2).
    pub fn special() -> Self {
        Self { name: "Greedy-S" }
    }

    /// `Greedy-G`: the multi-dataset panels (Figs. 3–5).
    pub fn general() -> Self {
        Self { name: "Greedy-G" }
    }
}

impl PlacementAlgorithm for Greedy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn solve(&self, inst: &Instance) -> Solution {
        let _span = obs::span("greedy", "greedy.solve");
        let mut st = AdmissionState::new(inst);
        for q in inst.query_ids() {
            attempt_query(&mut st, q);
        }
        st.into_solution()
    }
}

/// Tries to admit one query; replica budget burnt by failed probes stays
/// burnt (see module docs).
fn attempt_query(st: &mut AdmissionState<'_>, q: QueryId) {
    let inst = st.instance();
    let n_demands = inst.query(q).demands.len();
    let mut plan: Vec<PlannedDemand> = Vec::with_capacity(n_demands);
    let mut extra = vec![0.0; inst.cloud().compute_count()];
    for idx in 0..n_demands {
        let d = inst.query(q).demands[idx].dataset;
        // Nodes by available compute, descending (the published order),
        // ties broken by node id for determinism.
        let mut nodes: Vec<ComputeNodeId> = inst.cloud().compute_ids().collect();
        nodes.sort_by(|&a, &b| st.remaining(b).total_cmp(&st.remaining(a)).then(a.cmp(&b)));
        let mut chosen = None;
        for v in nodes {
            let had_replica = st.has_replica(d, v);
            if !had_replica {
                if !st.replica_budget_left(d) {
                    continue; // cannot probe new locations any more
                }
                // The probe *places* the replica before checking the delay
                // requirement — the published procedure's budget burn.
                st.place_replica(d, v);
            }
            if st.demand_feasible_with(q, idx, v, extra[v.index()]) {
                chosen = Some(v);
                break;
            }
        }
        let Some(v) = chosen else {
            // Demand unservable: the query is rejected; replicas probed so
            // far stay in the system.
            return;
        };
        extra[v.index()] += st.compute_demand(q, idx);
        plan.push(PlannedDemand {
            node: v,
            new_replica: false, // probe already placed it
        });
    }
    if st.plan_feasible(q, &plan) {
        st.commit(q, &plan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgerep_model::prelude::*;

    #[test]
    fn names() {
        assert_eq!(Greedy::special().name(), "Greedy-S");
        assert_eq!(Greedy::general().name(), "Greedy-G");
    }

    #[test]
    fn picks_largest_available_node_first() {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(500.0, 0.001);
        let cl = b.add_cloudlet(10.0, 0.01);
        b.link(dc, cl, 0.01);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d0 = ib.add_dataset(2.0, dc);
        ib.add_query(cl, vec![Demand::new(d0, 0.5)], 1.0, 1.0);
        let inst = ib.build().unwrap();
        let sol = Greedy::special().solve(&inst);
        sol.validate(&inst).unwrap();
        assert_eq!(sol.assignment_of(QueryId(0)).unwrap(), &[dc]);
    }

    #[test]
    fn burns_replica_budget_on_failed_probes() {
        // DC is huge but behind a slow link; cloudlet works. K = 1 means
        // the failed DC probe exhausts the budget and the query dies even
        // though the cloudlet alone would have served it.
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(500.0, 0.001);
        let cl = b.add_cloudlet(10.0, 0.005);
        b.link(dc, cl, 10.0);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 1);
        let d0 = ib.add_dataset(2.0, dc);
        ib.add_query(cl, vec![Demand::new(d0, 1.0)], 1.0, 0.05);
        let inst = ib.build().unwrap();
        let sol = Greedy::special().solve(&inst);
        sol.validate(&inst).unwrap();
        assert_eq!(sol.admitted_count(), 0, "budget burnt on the DC probe");
        assert!(sol.has_replica(DatasetId(0), dc));
        assert_eq!(sol.replica_count(DatasetId(0)), 1);
    }

    #[test]
    fn second_probe_succeeds_with_budget() {
        // Same setup but K = 2: after the DC probe fails, the cloudlet
        // probe admits the query.
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(500.0, 0.001);
        let cl = b.add_cloudlet(10.0, 0.005);
        b.link(dc, cl, 10.0);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d0 = ib.add_dataset(2.0, dc);
        ib.add_query(cl, vec![Demand::new(d0, 1.0)], 1.0, 0.05);
        let inst = ib.build().unwrap();
        let sol = Greedy::special().solve(&inst);
        sol.validate(&inst).unwrap();
        assert_eq!(sol.admitted_count(), 1);
        assert_eq!(sol.assignment_of(QueryId(0)).unwrap(), &[cl]);
        assert_eq!(sol.replica_count(DatasetId(0)), 2);
    }

    #[test]
    fn reuses_existing_replicas_without_budget() {
        // Two queries on the same dataset at the same home: the second
        // reuses the replica placed for the first.
        let mut b = EdgeCloudBuilder::new();
        let cl = b.add_cloudlet(10.0, 0.005);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 1);
        let d0 = ib.add_dataset(2.0, cl);
        ib.add_query(cl, vec![Demand::new(d0, 1.0)], 1.0, 0.05);
        ib.add_query(cl, vec![Demand::new(d0, 1.0)], 1.0, 0.05);
        let inst = ib.build().unwrap();
        let sol = Greedy::special().solve(&inst);
        sol.validate(&inst).unwrap();
        assert_eq!(sol.admitted_count(), 2);
        assert_eq!(sol.replica_count(DatasetId(0)), 1);
    }

    #[test]
    fn multi_demand_all_or_nothing() {
        // Second demand unservable -> whole query rejected, nothing
        // assigned, but probed replicas persist.
        let mut b = EdgeCloudBuilder::new();
        let cl = b.add_cloudlet(10.0, 0.005);
        let far = b.add_cloudlet(10.0, 0.005);
        b.link(cl, far, 50.0);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d0 = ib.add_dataset(2.0, cl);
        let d1 = ib.add_dataset(40.0, far); // too big for any node's deadline
        ib.add_query(
            cl,
            vec![Demand::new(d0, 1.0), Demand::new(d1, 1.0)],
            1.0,
            0.05,
        );
        let inst = ib.build().unwrap();
        let sol = Greedy::general().solve(&inst);
        sol.validate(&inst).unwrap();
        assert_eq!(sol.admitted_count(), 0);
    }

    #[test]
    fn solutions_always_validate_on_random_instances() {
        use edgerep_workload::{generate_instance, WorkloadParams};
        for seed in 0..5 {
            let inst = generate_instance(&WorkloadParams::default(), seed);
            let sol = Greedy::general().solve(&inst);
            sol.validate(&inst).unwrap();
        }
    }
}
