//! The ILP formulation (1)–(7) of §3.2, generalized to multi-dataset
//! queries with all-or-nothing admission.
//!
//! Decision variables:
//!
//! * `x_{n,l} ∈ {0,1}` — a replica of dataset `S_n` sits at node `v_l`;
//! * `π_{m,i,l} ∈ {0,1}` — demand `i` of query `q_m` is served at `v_l`
//!   (only generated for deadline-feasible pairs, which *is* constraint
//!   (4));
//! * `z_m ∈ {0,1}` — query `q_m` is admitted.
//!
//! For the paper's special case (`|S(q_m)| = 1`) `z_m` coincides with
//! `Σ_l π_{m,l}` and this is exactly program (1)–(7). The general coupling
//! `Σ_l π_{m,i,l} = z_m` encodes the all-or-nothing admission the paper's
//! Fig. 4 analysis describes.

use edgerep_lp::problem::{Cmp, LinearProgram, VarId};
use edgerep_model::delay::assignment_delay;
use edgerep_model::{ComputeNodeId, Instance, QueryId, Solution, FEASIBILITY_EPS};

/// Mapping from ILP columns back to model entities.
#[derive(Debug, Clone)]
pub struct IlpModel {
    /// The assembled program (maximize admitted demanded volume).
    pub lp: LinearProgram,
    /// `x[d][v]` replica variables.
    pub x: Vec<Vec<VarId>>,
    /// `pi[m][i]` is the list of `(node, var)` pairs that are
    /// deadline-feasible for demand `i` of query `m`.
    pub pi: Vec<Vec<Vec<(ComputeNodeId, VarId)>>>,
    /// `z[m]` admission variables.
    pub z: Vec<VarId>,
}

/// Builds the ILP for an instance.
pub fn build_ilp(inst: &Instance) -> IlpModel {
    let mut lp = LinearProgram::new();
    let v_count = inst.cloud().compute_count();
    let n_datasets = inst.datasets().len();

    // Replica variables.
    let x: Vec<Vec<VarId>> = (0..n_datasets)
        .map(|n| {
            (0..v_count)
                .map(|l| lp.add_binary_var(&format!("x_{n}_{l}"), 0.0))
                .collect()
        })
        .collect();

    // Admission variables carry the objective: volume demanded by q_m.
    let z: Vec<VarId> = inst
        .query_ids()
        .map(|q| lp.add_binary_var(&format!("z_{}", q.0), inst.demanded_volume(q)))
        .collect();

    // Assignment variables, restricted to deadline-feasible pairs.
    let mut pi: Vec<Vec<Vec<(ComputeNodeId, VarId)>>> = Vec::with_capacity(inst.queries().len());
    for q in inst.query_ids() {
        let query = inst.query(q);
        let mut per_demand = Vec::with_capacity(query.demands.len());
        for i in 0..query.demands.len() {
            let mut feasible = Vec::new();
            for v in inst.cloud().compute_ids() {
                if assignment_delay(inst, q, i, v) <= query.deadline + FEASIBILITY_EPS {
                    let var = lp.add_binary_var(&format!("pi_{}_{i}_{}", q.0, v.0), 0.0);
                    feasible.push((v, var));
                }
            }
            per_demand.push(feasible);
        }
        pi.push(per_demand);
    }

    // Coupling: Σ_l π_{m,i,l} = z_m  (admission is all-or-nothing); a
    // demand with no feasible node forces z_m = 0.
    for (qm, per_demand) in pi.iter().enumerate() {
        for feasible in per_demand {
            if feasible.is_empty() {
                lp.add_constraint(vec![(z[qm], 1.0)], Cmp::Eq, 0.0);
            } else {
                let mut terms: Vec<(VarId, f64)> =
                    feasible.iter().map(|&(_, var)| (var, 1.0)).collect();
                terms.push((z[qm], -1.0));
                lp.add_constraint(terms, Cmp::Eq, 0.0);
            }
        }
    }

    // Constraint (3): π ≤ x.
    for (qm, per_demand) in pi.iter().enumerate() {
        let query = inst.query(QueryId(qm as u32));
        for (i, feasible) in per_demand.iter().enumerate() {
            let d = query.demands[i].dataset;
            for &(v, var) in feasible {
                lp.add_constraint(
                    vec![(var, 1.0), (x[d.index()][v.index()], -1.0)],
                    Cmp::Le,
                    0.0,
                );
            }
        }
    }

    // Constraint (2): node capacity.
    for v in inst.cloud().compute_ids() {
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        for (qm, per_demand) in pi.iter().enumerate() {
            let query = inst.query(QueryId(qm as u32));
            for (i, feasible) in per_demand.iter().enumerate() {
                let coeff = inst.size(query.demands[i].dataset) * query.compute_rate;
                for &(node, var) in feasible {
                    if node == v {
                        terms.push((var, coeff));
                    }
                }
            }
        }
        if !terms.is_empty() {
            lp.add_constraint(terms, Cmp::Le, inst.cloud().available(v));
        }
    }

    // Constraint (5): replica budget.
    for xs in &x {
        let terms: Vec<(VarId, f64)> = xs.iter().map(|&var| (var, 1.0)).collect();
        lp.add_constraint(terms, Cmp::Le, inst.max_replicas() as f64);
    }

    IlpModel { lp, x, pi, z }
}

/// Optimal objective of the LP relaxation — an upper bound on every
/// feasible placement's admitted volume.
pub fn lp_upper_bound(inst: &Instance) -> f64 {
    let model = build_ilp(inst);
    match edgerep_lp::solve(&model.lp) {
        Ok(sol) => sol.objective,
        // The ILP is always feasible (all-zero) and bounded (binary +
        // bounded objective), so any solver error is a bug upstream.
        Err(e) => panic!("LP relaxation of a feasible bounded ILP failed: {e}"),
    }
}

/// Converts an ILP point (from branch-and-bound) back into a [`Solution`].
pub fn extract_solution(inst: &Instance, model: &IlpModel, point: &[f64]) -> Solution {
    let mut sol = Solution::empty(inst);
    for (n, xs) in model.x.iter().enumerate() {
        for (l, &var) in xs.iter().enumerate() {
            if point[var.0] > 0.5 {
                sol.place_replica(edgerep_model::DatasetId(n as u32), ComputeNodeId(l as u32));
            }
        }
    }
    for (qm, per_demand) in model.pi.iter().enumerate() {
        if point[model.z[qm].0] <= 0.5 {
            continue;
        }
        let mut nodes = Vec::with_capacity(per_demand.len());
        for feasible in per_demand {
            let serving = feasible
                .iter()
                .find(|&&(_, var)| point[var.0] > 0.5)
                .map(|&(v, _)| v)
                .expect("admitted query has a serving node per demand");
            nodes.push(serving);
        }
        sol.assign_query(QueryId(qm as u32), nodes);
    }
    sol
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgerep_model::prelude::*;

    fn toy() -> Instance {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(8.0, 0.01);
        b.link(dc, cl, 0.05);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d0 = ib.add_dataset(4.0, dc);
        let d1 = ib.add_dataset(2.0, dc);
        ib.add_query(cl, vec![Demand::new(d0, 0.5)], 1.0, 1.0);
        ib.add_query(
            cl,
            vec![Demand::new(d0, 1.0), Demand::new(d1, 0.5)],
            1.0,
            1.0,
        );
        ib.build().unwrap()
    }

    #[test]
    fn model_dimensions() {
        let inst = toy();
        let model = build_ilp(&inst);
        assert_eq!(model.x.len(), 2);
        assert_eq!(model.x[0].len(), 2);
        assert_eq!(model.z.len(), 2);
        assert_eq!(model.pi.len(), 2);
        assert_eq!(model.pi[1].len(), 2);
        // All pairs are deadline-feasible in this toy.
        assert_eq!(model.pi[0][0].len(), 2);
    }

    #[test]
    fn lp_bound_at_least_total_feasible_volume() {
        let inst = toy();
        // Everything fits here, so the bound reaches the full volume.
        let bound = lp_upper_bound(&inst);
        assert!(bound >= 10.0 - 1e-6, "bound {bound}");
        // …and can never exceed the total demanded volume.
        assert!(bound <= inst.total_demanded_volume() + 1e-6);
    }

    #[test]
    fn infeasible_pairs_pruned() {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(8.0, 0.01);
        b.link(dc, cl, 10.0); // slow: DC side infeasible for tight deadline
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 1);
        let d0 = ib.add_dataset(4.0, dc);
        ib.add_query(cl, vec![Demand::new(d0, 1.0)], 1.0, 0.05);
        let inst = ib.build().unwrap();
        let model = build_ilp(&inst);
        assert_eq!(model.pi[0][0].len(), 1);
        assert_eq!(model.pi[0][0][0].0, cl);
    }

    #[test]
    fn unservable_query_forces_zero_admission() {
        let mut b = EdgeCloudBuilder::new();
        let cl = b.add_cloudlet(8.0, 10.0); // can't process in time
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 1);
        let d0 = ib.add_dataset(4.0, cl);
        ib.add_query(cl, vec![Demand::new(d0, 1.0)], 1.0, 0.05);
        let inst = ib.build().unwrap();
        assert_eq!(lp_upper_bound(&inst), 0.0);
    }
}
