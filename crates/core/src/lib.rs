#![warn(missing_docs)]

//! QoS-aware proactive data replication and placement for big data
//! analytics in two-tier edge clouds.
//!
//! This crate implements the contribution of Xia et al. (ICPP 2019
//! Workshops) together with every benchmark the paper evaluates against:
//!
//! * [`appro`] — the paper's primal-dual approximation algorithms
//!   [`appro::ApproS`] (Algorithm 1; single-dataset queries) and
//!   [`appro::ApproG`] (Algorithm 2; multi-dataset queries), including the
//!   feasible-dual bound used to check the approximation empirically.
//! * [`greedy`] — `Greedy-S`/`Greedy-G`: largest-available-compute-first
//!   placement (§4.1, benchmark 1).
//! * [`graphpart`] — `Graph-S`/`Graph-G`: replica placement plus
//!   Kernighan–Lin partitioning, after Golab et al. SSDBM'14 (§4.1,
//!   benchmark 2).
//! * [`popularity`] — `Popularity-S`/`Popularity-G`: popularity-driven
//!   placement after Hou et al. (§4.3, the testbed benchmark).
//! * [`ilp`] / [`optimal`] — the ILP (1)–(7) of §3.2 built on
//!   `edgerep-lp`, giving an exact optimum on small instances and the LP
//!   relaxation upper bound on medium ones.
//! * [`admission`] — the shared admission state machine enforcing the
//!   capacity, deadline, and replica-budget constraints identically for
//!   every algorithm.
//!
//! Every algorithm implements [`PlacementAlgorithm`] and returns a
//! [`edgerep_model::Solution`] that passes
//! [`edgerep_model::Solution::validate`]; the experiment harness treats
//! them uniformly.
//!
//! # Example
//!
//! ```
//! use edgerep_core::{appro::ApproG, PlacementAlgorithm};
//! use edgerep_workload::{generate_instance, WorkloadParams};
//!
//! let inst = generate_instance(&WorkloadParams::default(), 7);
//! let sol = ApproG::default().solve(&inst);
//! sol.validate(&inst).expect("Appro solutions are always feasible");
//! println!("admitted volume: {:.1} GB", sol.admitted_volume(&inst));
//! ```

pub mod admission;
pub mod appro;
pub mod centroid;
pub mod graphpart;
pub mod greedy;
pub mod ilp;
pub mod online;
pub mod optimal;
pub mod popularity;
pub mod refine;
pub mod repair;

use edgerep_model::{Instance, Solution};

/// A proactive data replication and placement algorithm.
pub trait PlacementAlgorithm {
    /// Short display name used in experiment tables (e.g. `"Appro-G"`).
    fn name(&self) -> &'static str;

    /// Computes a feasible replication + assignment solution.
    ///
    /// Implementations must return a solution that passes
    /// [`Solution::validate`] on `inst`; the test suite holds every
    /// algorithm in this crate to that contract.
    fn solve(&self, inst: &Instance) -> Solution;
}

/// Boxed algorithm handle used by the experiment harness to line up
/// algorithm panels per figure.
pub type BoxedAlgorithm = Box<dyn PlacementAlgorithm + Send + Sync>;

/// A boxed algorithm is itself an algorithm, so wrappers generic over
/// `A: PlacementAlgorithm` (e.g. the sharded regional solver) accept the
/// harness's panel entries without unboxing.
impl PlacementAlgorithm for BoxedAlgorithm {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn solve(&self, inst: &Instance) -> Solution {
        (**self).solve(inst)
    }
}

/// The standard simulation panel of the paper's figures:
/// Appro vs Greedy vs Graph, in the figure's display order.
pub fn simulation_panel() -> Vec<BoxedAlgorithm> {
    vec![
        Box::new(appro::ApproG::default()),
        Box::new(greedy::Greedy::general()),
        Box::new(graphpart::GraphPartition::general()),
    ]
}

/// The special-case panel (single-dataset queries): Appro-S vs Greedy-S vs
/// Graph-S.
pub fn special_panel() -> Vec<BoxedAlgorithm> {
    vec![
        Box::new(appro::ApproS::default()),
        Box::new(greedy::Greedy::special()),
        Box::new(graphpart::GraphPartition::special()),
    ]
}
