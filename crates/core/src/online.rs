//! Online admission control (extension beyond the paper).
//!
//! The paper's setting is offline: all queries are known before replicas
//! are placed. In production, queries arrive one at a time and decisions
//! are irreversible. This module extends the primal-dual engine to that
//! regime, which is exactly where the Buchbinder–Naor machinery shines:
//!
//! * nodes keep the same multiplicative capacity price
//!   `θ(x) = (μ^x − 1)/(μ − 1)`;
//! * an arriving query is planned at its cheapest feasible nodes, like
//!   [`crate::appro`], but is admitted **only if its price per demanded GB
//!   is below a threshold** — a nearly-full node prices itself out, so
//!   capacity is reserved for future arrivals instead of being handed to
//!   whichever query shows up first;
//! * rejections are final and replicas are never moved.
//!
//! With `admission_threshold = ∞` this degenerates to greedy-feasible
//! online admission ([`crate::appro::QueryOrder::Input`]); with a finite
//! threshold it trades a little early volume for robustness against
//! adversarial arrival orders. `tests/` and the `ablations` bench quantify
//! the trade-off; `OnlineAppro` is also the natural controller mode for
//! the testbed's rolling operation.

use edgerep_model::{Instance, QueryId, Solution};
use edgerep_obs as obs;

use crate::admission::AdmissionState;
use crate::appro::{Appro, ApproConfig};
use crate::PlacementAlgorithm;

/// Configuration of the online controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// Price engine settings (the commit order is ignored — arrivals set
    /// the order).
    pub engine: ApproConfig,
    /// Maximum tolerated price per demanded GB; `f64::INFINITY` admits
    /// every feasible arrival.
    pub admission_threshold: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            engine: ApproConfig::default(),
            // One unit of price per GB corresponds to a fully-priced node
            // (θ = 1) at unit compute rate: beyond that the query would
            // displace more future value than it brings.
            admission_threshold: 1.0,
        }
    }
}

/// Statistics of one online run.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineReport {
    /// The final (feasible) solution.
    pub solution: Solution,
    /// Queries rejected because no feasible plan existed.
    pub rejected_infeasible: usize,
    /// Queries rejected by the price threshold despite being feasible.
    pub rejected_by_price: usize,
}

/// The online primal-dual controller.
#[derive(Debug, Clone, Default)]
pub struct OnlineAppro {
    /// Controller configuration.
    pub config: OnlineConfig,
}

impl OnlineAppro {
    /// Creates a controller with explicit configuration.
    pub fn with_config(config: OnlineConfig) -> Self {
        Self { config }
    }

    /// Processes queries in the given arrival order and reports what
    /// happened to each.
    pub fn run_order(&self, inst: &Instance, arrivals: &[QueryId]) -> OnlineReport {
        let _span = obs::span("online", "online.run");
        let engine = Appro::with_config(self.config.engine);
        let mut st = AdmissionState::new(inst);
        let mut rejected_infeasible = 0;
        let mut rejected_by_price = 0;
        for &q in arrivals {
            match engine.plan_query_public(&st, q) {
                None => rejected_infeasible += 1,
                Some((plan, price)) => {
                    let density = price / inst.demanded_volume(q).max(1e-12);
                    if density <= self.config.admission_threshold {
                        st.commit(q, &plan);
                    } else {
                        rejected_by_price += 1;
                    }
                }
            }
        }
        obs::counter("online.rejected_infeasible").add(rejected_infeasible as u64);
        obs::counter("online.rejected_by_price").add(rejected_by_price as u64);
        OnlineReport {
            solution: st.into_solution(),
            rejected_infeasible,
            rejected_by_price,
        }
    }

    /// Processes queries in instance (input) order.
    pub fn run(&self, inst: &Instance) -> OnlineReport {
        let arrivals: Vec<QueryId> = inst.query_ids().collect();
        self.run_order(inst, &arrivals)
    }
}

impl PlacementAlgorithm for OnlineAppro {
    fn name(&self) -> &'static str {
        "Online-Appro"
    }

    fn solve(&self, inst: &Instance) -> Solution {
        self.run(inst).solution
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appro::ApproG;
    use edgerep_model::prelude::*;
    use edgerep_workload::{generate_instance, WorkloadParams};

    #[test]
    fn online_is_feasible_on_random_instances() {
        let params = WorkloadParams::default();
        for seed in 0..5 {
            let inst = generate_instance(&params, seed);
            let report = OnlineAppro::default().run(&inst);
            report.solution.validate(&inst).unwrap();
            let total = report.solution.admitted_count()
                + report.rejected_infeasible
                + report.rejected_by_price;
            assert_eq!(total, inst.queries().len());
        }
    }

    #[test]
    fn infinite_threshold_admits_every_feasible_arrival() {
        let params = WorkloadParams::default();
        let inst = generate_instance(&params, 3);
        let cfg = OnlineConfig {
            admission_threshold: f64::INFINITY,
            ..Default::default()
        };
        let report = OnlineAppro::with_config(cfg).run(&inst);
        assert_eq!(report.rejected_by_price, 0);
    }

    #[test]
    fn zero_threshold_rejects_everything_pricable() {
        // With threshold 0 only zero-price plans commit; on a loaded
        // system nothing is free once replicas cost budget, so admissions
        // collapse.
        let params = WorkloadParams::default();
        let inst = generate_instance(&params, 4);
        let strict = OnlineAppro::with_config(OnlineConfig {
            admission_threshold: 0.0,
            ..Default::default()
        })
        .run(&inst);
        let lax = OnlineAppro::default().run(&inst);
        assert!(strict.solution.admitted_count() <= lax.solution.admitted_count());
    }

    #[test]
    fn online_never_beats_offline_materially() {
        // Offline sees all queries; online commits in arrival order. Over
        // several seeds the offline volume must dominate on average (tiny
        // per-seed inversions are possible since both are heuristics).
        let params = WorkloadParams::default();
        let mut online_total = 0.0;
        let mut offline_total = 0.0;
        for seed in 0..8 {
            let inst = generate_instance(&params, seed);
            online_total += OnlineAppro::default()
                .run(&inst)
                .solution
                .admitted_volume(&inst);
            offline_total += ApproG::default().solve(&inst).admitted_volume(&inst);
        }
        assert!(
            offline_total >= online_total,
            "offline {offline_total} below online {online_total}"
        );
        // And online should still be competitive (>= 60% here).
        assert!(
            online_total >= 0.6 * offline_total,
            "online {online_total} not competitive with offline {offline_total}"
        );
    }

    #[test]
    fn arrival_order_changes_outcomes_but_not_feasibility() {
        let params = WorkloadParams::default();
        let inst = generate_instance(&params, 6);
        let forward: Vec<QueryId> = inst.query_ids().collect();
        let mut backward = forward.clone();
        backward.reverse();
        let a = OnlineAppro::default().run_order(&inst, &forward);
        let b = OnlineAppro::default().run_order(&inst, &backward);
        a.solution.validate(&inst).unwrap();
        b.solution.validate(&inst).unwrap();
    }

    #[test]
    fn price_threshold_reserves_capacity_for_tight_queries() {
        // One cloudlet, 8 GHz. First arrival: a slack query that could go
        // anywhere. Second: a tight query that can only run locally. With
        // an aggressive threshold the slack query is priced away from the
        // nearly-full node, so the tight one still fits.
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(8.0, 0.005);
        b.link(dc, cl, 0.1);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d0 = ib.add_dataset(5.0, dc);
        let d1 = ib.add_dataset(5.0, dc);
        // Slack query (deadline loose enough for the DC).
        ib.add_query(cl, vec![Demand::new(d0, 0.2)], 1.0, 5.0);
        // Tight query (only the cloudlet meets 0.1 s).
        ib.add_query(cl, vec![Demand::new(d1, 0.2)], 1.0, 0.1);
        let inst = ib.build().unwrap();
        let report = OnlineAppro::default().run(&inst);
        report.solution.validate(&inst).unwrap();
        assert_eq!(
            report.solution.admitted_count(),
            2,
            "both queries should fit when the slack one yields the cloudlet"
        );
        // The slack query must have been pushed to the DC.
        assert_eq!(report.solution.assignment_of(QueryId(0)).unwrap(), &[dc]);
        assert_eq!(report.solution.assignment_of(QueryId(1)).unwrap(), &[cl]);
    }
}
