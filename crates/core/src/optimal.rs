//! Exact optimum on small instances via branch-and-bound over the ILP.
//!
//! The paper has no exact baseline (the problem is NP-hard); this one
//! exists to *validate* the approximation algorithms: tests assert
//! `heuristic ≤ Optimal ≤ LP relaxation` and measure empirical
//! approximation ratios against the theorem's `max(|Q|, |V|/K)` bound.

use edgerep_lp::{solve_ilp, IlpOutcome};
use edgerep_model::{Instance, Solution};

use crate::ilp::{build_ilp, extract_solution};
use crate::PlacementAlgorithm;

/// Exact solver (small instances only — the node budget caps work).
#[derive(Debug, Clone)]
pub struct Optimal {
    /// Branch-and-bound node budget.
    pub node_limit: usize,
}

impl Default for Optimal {
    fn default() -> Self {
        Self {
            node_limit: 200_000,
        }
    }
}

/// What the solve proved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimalStatus {
    /// The returned solution is a proven optimum.
    Proven,
    /// The node budget ran out; the returned solution is the incumbent
    /// (still feasible, possibly sub-optimal).
    Incumbent,
    /// The node budget ran out before any integer point was found; the
    /// returned solution is empty.
    Unknown,
}

impl Optimal {
    /// Solves and reports whether the result is proven optimal.
    pub fn solve_with_status(&self, inst: &Instance) -> (Solution, OptimalStatus) {
        let model = build_ilp(inst);
        match solve_ilp(&model.lp, self.node_limit) {
            IlpOutcome::Optimal { x, .. } => {
                (extract_solution(inst, &model, &x), OptimalStatus::Proven)
            }
            IlpOutcome::NodeLimit {
                incumbent: Some((_, x)),
            } => (extract_solution(inst, &model, &x), OptimalStatus::Incumbent),
            IlpOutcome::NodeLimit { incumbent: None } => {
                (Solution::empty(inst), OptimalStatus::Unknown)
            }
            // All-zero is always feasible, so this cannot happen on a
            // well-formed instance.
            IlpOutcome::Infeasible => (Solution::empty(inst), OptimalStatus::Unknown),
        }
    }
}

impl PlacementAlgorithm for Optimal {
    fn name(&self) -> &'static str {
        "Optimal"
    }

    fn solve(&self, inst: &Instance) -> Solution {
        self.solve_with_status(inst).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appro::ApproG;
    use crate::greedy::Greedy;
    use edgerep_model::prelude::*;

    fn toy() -> Instance {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(8.0, 0.01);
        b.link(dc, cl, 0.05);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d0 = ib.add_dataset(4.0, dc);
        let d1 = ib.add_dataset(2.0, dc);
        ib.add_query(cl, vec![Demand::new(d0, 0.5)], 1.0, 1.0);
        ib.add_query(
            cl,
            vec![Demand::new(d0, 1.0), Demand::new(d1, 0.5)],
            1.0,
            1.0,
        );
        ib.build().unwrap()
    }

    #[test]
    fn proves_optimum_on_toy() {
        let inst = toy();
        let (sol, status) = Optimal::default().solve_with_status(&inst);
        assert_eq!(status, OptimalStatus::Proven);
        sol.validate(&inst).unwrap();
        assert_eq!(sol.admitted_volume(&inst), 10.0);
        assert_eq!(sol.admitted_count(), 2);
    }

    #[test]
    fn optimum_dominates_heuristics() {
        let inst = toy();
        let opt = Optimal::default().solve(&inst).admitted_volume(&inst);
        let appro = ApproG::default().solve(&inst).admitted_volume(&inst);
        let greedy = Greedy::general().solve(&inst).admitted_volume(&inst);
        assert!(opt >= appro - 1e-9);
        assert!(opt >= greedy - 1e-9);
    }

    #[test]
    fn optimum_below_lp_bound() {
        let inst = toy();
        let opt = Optimal::default().solve(&inst).admitted_volume(&inst);
        let bound = crate::ilp::lp_upper_bound(&inst);
        assert!(opt <= bound + 1e-6);
    }

    #[test]
    fn capacity_constrained_optimum() {
        // One 8-GHz cloudlet, three 4-GB unit-rate queries: exactly two fit.
        let mut b = EdgeCloudBuilder::new();
        let cl = b.add_cloudlet(8.0, 0.001);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 3);
        let d0 = ib.add_dataset(4.0, cl);
        for _ in 0..3 {
            ib.add_query(cl, vec![Demand::new(d0, 1.0)], 1.0, 1.0);
        }
        let inst = ib.build().unwrap();
        let (sol, status) = Optimal::default().solve_with_status(&inst);
        assert_eq!(status, OptimalStatus::Proven);
        sol.validate(&inst).unwrap();
        assert_eq!(sol.admitted_volume(&inst), 8.0);
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        let inst = toy();
        let opt = Optimal { node_limit: 1 };
        let (sol, status) = opt.solve_with_status(&inst);
        // With one node the root LP is already integral here or not; both
        // outcomes are acceptable, but the solution must validate.
        sol.validate(&inst).unwrap();
        assert!(matches!(
            status,
            OptimalStatus::Proven | OptimalStatus::Incumbent | OptimalStatus::Unknown
        ));
    }
}
