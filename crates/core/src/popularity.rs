//! `Popularity-S` / `Popularity-G`: the testbed benchmark (§4.3), after
//! Hou et al., "Proactive content caching by exploiting transfer learning
//! for mobile edge computing".
//!
//! Published sketch: "first calculates the popularity of a node (cloudlet
//! and data center) according to the ratio of the number of dataset
//! replicas on the node to the total number of dataset replicas of all
//! nodes. It then selects a node with the highest popularity for each
//! dataset, and places a replica of the dataset if the delay requirement
//! of a query can be satisfied; otherwise, it … selects another node with
//! the second highest popularity … until the query is admitted or there
//! are already `K` replicas."
//!
//! Popularity is recomputed as replicas accumulate — a rich-get-richer
//! rule that concentrates replicas on a few hub nodes, which is exactly
//! why it trails `Appro` on capacity-constrained cloudlets (Figs. 7–8).
//! Ties (including the all-zero start) break toward larger available
//! compute, then node id, so runs are deterministic.

use edgerep_model::{ComputeNodeId, Instance, QueryId, Solution};
use edgerep_obs as obs;

use crate::admission::{AdmissionState, PlannedDemand};
use crate::PlacementAlgorithm;

/// The popularity-driven benchmark.
#[derive(Debug, Clone)]
pub struct Popularity {
    name: &'static str,
}

impl Popularity {
    /// `Popularity-S`: single-dataset testbed panels (Fig. 7).
    pub fn special() -> Self {
        Self {
            name: "Popularity-S",
        }
    }

    /// `Popularity-G`: multi-dataset testbed panels (Fig. 8).
    pub fn general() -> Self {
        Self {
            name: "Popularity-G",
        }
    }
}

impl PlacementAlgorithm for Popularity {
    fn name(&self) -> &'static str {
        self.name
    }

    fn solve(&self, inst: &Instance) -> Solution {
        let _span = obs::span("popularity", "popularity.solve");
        let mut st = AdmissionState::new(inst);
        let v_count = inst.cloud().compute_count();
        // Replicas per node, maintained incrementally for the popularity
        // ratio (the denominator is the total, which cancels in ranking).
        let mut replicas_on = vec![0usize; v_count];
        for q in inst.query_ids() {
            attempt_query(&mut st, q, &mut replicas_on);
        }
        st.into_solution()
    }
}

fn attempt_query(st: &mut AdmissionState<'_>, q: QueryId, replicas_on: &mut [usize]) {
    let inst = st.instance();
    let n_demands = inst.query(q).demands.len();
    let mut plan: Vec<PlannedDemand> = Vec::with_capacity(n_demands);
    let mut extra = vec![0.0; inst.cloud().compute_count()];
    let mut placed_this_query: Vec<ComputeNodeId> = Vec::new();
    for idx in 0..n_demands {
        let d = inst.query(q).demands[idx].dataset;
        let mut nodes: Vec<ComputeNodeId> = inst.cloud().compute_ids().collect();
        nodes.sort_by(|&a, &b| {
            replicas_on[b.index()]
                .cmp(&replicas_on[a.index()])
                .then_with(|| st.remaining(b).total_cmp(&st.remaining(a)))
                .then(a.cmp(&b))
        });
        let mut chosen = None;
        for v in nodes {
            let had_replica = st.has_replica(d, v);
            if !had_replica && !st.replica_budget_left(d) {
                continue;
            }
            if st.demand_feasible_with(q, idx, v, extra[v.index()]) {
                if !had_replica {
                    st.place_replica(d, v);
                    replicas_on[v.index()] += 1;
                    placed_this_query.push(v);
                }
                chosen = Some(v);
                break;
            }
        }
        let Some(v) = chosen else {
            // Reject; replicas placed for earlier demands of this query
            // persist (they were placed because a feasible probe chose
            // them, matching the benchmark's proactive framing).
            return;
        };
        extra[v.index()] += st.compute_demand(q, idx);
        plan.push(PlannedDemand {
            node: v,
            new_replica: false,
        });
    }
    if st.plan_feasible(q, &plan) {
        st.commit(q, &plan);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgerep_model::prelude::*;

    #[test]
    fn names() {
        assert_eq!(Popularity::special().name(), "Popularity-S");
        assert_eq!(Popularity::general().name(), "Popularity-G");
    }

    #[test]
    fn rich_get_richer_concentration() {
        // Two equal cloudlets; q0 seeds a replica on the first (tie-break
        // by capacity then id), and later datasets follow the popular node
        // while it still satisfies their deadlines.
        let mut b = EdgeCloudBuilder::new();
        let c0 = b.add_cloudlet(100.0, 0.001);
        let c1 = b.add_cloudlet(100.0, 0.001);
        b.link(c0, c1, 0.001);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d0 = ib.add_dataset(1.0, c0);
        let d1 = ib.add_dataset(1.0, c0);
        let d2 = ib.add_dataset(1.0, c0);
        ib.add_query(c0, vec![Demand::new(d0, 1.0)], 1.0, 1.0);
        ib.add_query(c1, vec![Demand::new(d1, 1.0)], 1.0, 1.0);
        ib.add_query(c0, vec![Demand::new(d2, 1.0)], 1.0, 1.0);
        let inst = ib.build().unwrap();
        let sol = Popularity::special().solve(&inst);
        sol.validate(&inst).unwrap();
        // All three queries admitted; the popular node hosts most replicas.
        assert_eq!(sol.admitted_count(), 3);
        let on_c0 = inst
            .dataset_ids()
            .filter(|&d| sol.has_replica(d, c0))
            .count();
        assert!(on_c0 >= 2, "expected concentration on c0, got {on_c0}");
    }

    #[test]
    fn respects_deadline_over_popularity() {
        // The popular node cannot meet q1's deadline; the algorithm must
        // fall to the second-ranked node.
        let mut b = EdgeCloudBuilder::new();
        let hub = b.add_cloudlet(100.0, 0.001);
        let edge = b.add_cloudlet(100.0, 0.001);
        b.link(hub, edge, 1.0); // slow path between them
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d0 = ib.add_dataset(1.0, hub);
        let d1 = ib.add_dataset(1.0, hub);
        ib.add_query(hub, vec![Demand::new(d0, 1.0)], 1.0, 1.0);
        // Home at `edge`, deadline too tight for the hub->edge transfer.
        ib.add_query(edge, vec![Demand::new(d1, 1.0)], 1.0, 0.01);
        let inst = ib.build().unwrap();
        let sol = Popularity::special().solve(&inst);
        sol.validate(&inst).unwrap();
        assert_eq!(sol.admitted_count(), 2);
        assert_eq!(sol.assignment_of(QueryId(1)).unwrap(), &[edge]);
    }

    #[test]
    fn budget_exhaustion_rejects() {
        // K = 1 and two homes that each need a local replica of the same
        // dataset: only the first gets it.
        let mut b = EdgeCloudBuilder::new();
        let c0 = b.add_cloudlet(100.0, 0.001);
        let c1 = b.add_cloudlet(100.0, 0.001);
        b.link(c0, c1, 10.0);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 1);
        let d0 = ib.add_dataset(1.0, c0);
        ib.add_query(c0, vec![Demand::new(d0, 1.0)], 1.0, 0.05);
        ib.add_query(c1, vec![Demand::new(d0, 1.0)], 1.0, 0.05);
        let inst = ib.build().unwrap();
        let sol = Popularity::special().solve(&inst);
        sol.validate(&inst).unwrap();
        assert_eq!(sol.admitted_count(), 1);
        assert_eq!(sol.replica_count(DatasetId(0)), 1);
    }

    #[test]
    fn random_instances_validate() {
        use edgerep_workload::{generate_instance, WorkloadParams};
        for seed in 0..5 {
            let inst = generate_instance(&WorkloadParams::default(), seed);
            let sol = Popularity::general().solve(&inst);
            sol.validate(&inst).unwrap();
        }
    }
}
