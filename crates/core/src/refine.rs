//! Local-search refinement (extension beyond the paper).
//!
//! Every algorithm in this crate is constructive: once a query is rejected
//! it stays rejected even when later decisions would have made room for
//! it. [`refine`] runs a bounded local search on top of any feasible
//! solution:
//!
//! 1. **Prune pass** — replicas serving no assigned demand are removed
//!    (replica *relocation*: a burnt budget slot is freed so the rescue
//!    pass can place the copy somewhere useful — this is what resurrects
//!    `Greedy`, whose published procedure strands replicas on
//!    deadline-infeasible data centers);
//! 2. **Rescue pass** — for each rejected query (largest demanded volume
//!    first), try to admit it against the current residual state, allowed
//!    to place replicas with leftover budget;
//! 3. **Swap pass** — if a rejected query `q` is blocked only by capacity,
//!    try evicting one admitted query with *smaller* demanded volume whose
//!    removal frees enough compute on the nodes `q` needs; commit the swap
//!    only when it strictly increases total admitted volume.
//!
//! Passes repeat until a fixed point or the iteration cap. The result
//! never loses volume (every accepted move is strictly improving) and is
//! re-validated by the caller-facing API. `Refined<A>` wraps any
//! [`PlacementAlgorithm`] so panels can compare `X` vs `X+refine` — the
//! ablation the paper's "Appro places replicas from an overall
//! perspective" argument invites.

use edgerep_model::{Instance, QueryId, Solution};

use crate::admission::{AdmissionState, PlannedDemand};
use crate::appro::{Appro, ApproConfig};
use crate::PlacementAlgorithm;

/// Upper bound on full rescue+swap rounds (each round is O(|Q|²·|V|) in
/// the worst case; two rounds almost always reach the fixed point).
const MAX_ROUNDS: usize = 4;

/// Rebuilds an [`AdmissionState`] that mirrors `sol` on `inst`.
fn state_of<'a>(inst: &'a Instance, sol: &Solution) -> AdmissionState<'a> {
    let mut st = AdmissionState::new(inst);
    // Replicas first (they may exceed what assignments need, e.g. budget
    // burnt by Greedy probes).
    for d in inst.dataset_ids() {
        for &v in sol.replicas_of(d) {
            st.place_replica(d, v);
        }
    }
    for q in sol.admitted_queries() {
        let nodes = sol.assignment_of(q).expect("admitted");
        let plan: Vec<PlannedDemand> = nodes
            .iter()
            .map(|&node| PlannedDemand {
                node,
                new_replica: false,
            })
            .collect();
        st.commit(q, &plan);
    }
    st
}

/// Attempts to admit `q` against the residual state using the primal-dual
/// planner (cheapest feasible nodes, replica budget respected).
fn try_admit(st: &mut AdmissionState<'_>, engine: &Appro, q: QueryId) -> bool {
    if let Some((plan, _)) = engine.plan_query_public(st, q) {
        st.commit(q, &plan);
        true
    } else {
        false
    }
}

/// Refines `sol`, returning an improved (or identical) feasible solution.
pub fn refine(inst: &Instance, sol: &Solution) -> Solution {
    debug_assert!(
        sol.validate(inst).is_ok(),
        "refine expects a feasible input"
    );
    let engine = Appro::with_config(ApproConfig::default());
    let mut best = sol.clone();
    for _ in 0..MAX_ROUNDS {
        let mut improved = false;

        // --- Prune pass: drop replicas serving nothing -------------------
        // (Relocation: freeing the budget lets the rescue pass place the
        // copy where a rejected query can actually use it. Never changes
        // the objective by itself.)
        for d in inst.dataset_ids() {
            let unused: Vec<_> = best
                .replicas_of(d)
                .iter()
                .copied()
                .filter(|&v| !best.replica_in_use(inst, d, v))
                .collect();
            for v in unused {
                best.remove_replica(d, v);
            }
        }

        // --- Rescue pass -------------------------------------------------
        let mut st = state_of(inst, &best);
        let mut rejected: Vec<QueryId> =
            inst.query_ids().filter(|&q| !best.is_admitted(q)).collect();
        rejected.sort_by(|&a, &b| inst.demanded_volume(b).total_cmp(&inst.demanded_volume(a)));
        for q in &rejected {
            if try_admit(&mut st, &engine, *q) {
                improved = true;
            }
        }
        if improved {
            best = st.into_solution();
            continue; // restart with the richer base
        }

        // --- Swap pass ----------------------------------------------------
        // For each still-rejected query, try evicting one smaller admitted
        // query and re-admitting both orders.
        let rejected: Vec<QueryId> = inst.query_ids().filter(|&q| !best.is_admitted(q)).collect();
        'outer: for &q in &rejected {
            let q_vol = inst.demanded_volume(q);
            let mut victims: Vec<QueryId> = best
                .admitted_queries()
                .filter(|&v| inst.demanded_volume(v) < q_vol)
                .collect();
            // Evict the smallest viable victim first.
            victims.sort_by(|&a, &b| inst.demanded_volume(a).total_cmp(&inst.demanded_volume(b)));
            for victim in victims {
                let mut candidate = best.clone();
                candidate.unassign_query(victim);
                let mut st = state_of(inst, &candidate);
                if try_admit(&mut st, &engine, q) {
                    // Try to keep the victim too; if not, the swap alone
                    // already gains volume (victim < q).
                    try_admit(&mut st, &engine, victim);
                    let next = st.into_solution();
                    if next.admitted_volume(inst) > best.admitted_volume(inst) + 1e-9 {
                        best = next;
                        improved = true;
                        continue 'outer;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    debug_assert!(best.validate(inst).is_ok());
    best
}

/// Wraps any algorithm with the refinement pass.
#[derive(Debug, Clone)]
pub struct Refined<A> {
    inner: A,
    name: &'static str,
}

impl<A: PlacementAlgorithm> Refined<A> {
    /// Wraps `inner`; `name` is the display label (e.g. `"Appro-G+ref"`).
    pub fn new(inner: A, name: &'static str) -> Self {
        Self { inner, name }
    }
}

impl<A: PlacementAlgorithm> PlacementAlgorithm for Refined<A> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn solve(&self, inst: &Instance) -> Solution {
        refine(inst, &self.inner.solve(inst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appro::ApproG;
    use crate::greedy::Greedy;
    use edgerep_model::prelude::*;
    use edgerep_workload::{generate_instance, WorkloadParams};

    #[test]
    fn refine_never_loses_volume() {
        let params = WorkloadParams::default();
        for seed in 0..6 {
            let inst = generate_instance(&params, seed);
            for alg in [
                Box::new(ApproG::default()) as Box<dyn PlacementAlgorithm>,
                Box::new(Greedy::general()),
            ] {
                let base = alg.solve(&inst);
                let refined = refine(&inst, &base);
                refined.validate(&inst).unwrap();
                assert!(
                    refined.admitted_volume(&inst) >= base.admitted_volume(&inst) - 1e-9,
                    "{} lost volume after refinement",
                    alg.name()
                );
            }
        }
    }

    #[test]
    fn refine_rescues_greedy_substantially() {
        // Greedy burns replica budget; refinement re-admits what fits in
        // the leftover state. Aggregate over seeds.
        let params = WorkloadParams::default();
        let mut base_total = 0.0;
        let mut refined_total = 0.0;
        for seed in 0..6 {
            let inst = generate_instance(&params, seed);
            let base = Greedy::general().solve(&inst);
            base_total += base.admitted_volume(&inst);
            refined_total += refine(&inst, &base).admitted_volume(&inst);
        }
        assert!(
            refined_total > base_total * 1.05,
            "refinement should lift Greedy noticeably ({base_total} -> {refined_total})"
        );
    }

    #[test]
    fn swap_pass_evicts_smaller_for_larger() {
        // One node with 6 GHz. A small query (2 GB) is admitted; a big
        // query (5 GB) was rejected. Refinement must swap them.
        let mut b = EdgeCloudBuilder::new();
        let cl = b.add_cloudlet(6.0, 0.001);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 1);
        let small = ib.add_dataset(2.0, cl);
        let big = ib.add_dataset(5.0, cl);
        let q_small = ib.add_query(cl, vec![Demand::new(small, 1.0)], 1.0, 1.0);
        let q_big = ib.add_query(cl, vec![Demand::new(big, 1.0)], 1.0, 1.0);
        let inst = ib.build().unwrap();
        // Hand-build the bad solution: small admitted, big rejected.
        let mut sol = Solution::empty(&inst);
        sol.place_replica(small, cl);
        sol.assign_query(q_small, vec![cl]);
        sol.validate(&inst).unwrap();
        let refined = refine(&inst, &sol);
        refined.validate(&inst).unwrap();
        assert!(refined.is_admitted(q_big), "big query should win the swap");
        assert_eq!(refined.admitted_volume(&inst), 5.0);
    }

    #[test]
    fn rescue_pass_admits_forgotten_feasible_query() {
        let mut b = EdgeCloudBuilder::new();
        let cl = b.add_cloudlet(10.0, 0.001);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 1);
        let d = ib.add_dataset(2.0, cl);
        let q = ib.add_query(cl, vec![Demand::new(d, 1.0)], 1.0, 1.0);
        let inst = ib.build().unwrap();
        let empty = Solution::empty(&inst);
        let refined = refine(&inst, &empty);
        assert!(refined.is_admitted(q));
    }

    #[test]
    fn refined_wrapper_behaves_like_refine() {
        let params = WorkloadParams::default();
        let inst = generate_instance(&params, 3);
        let wrapped = Refined::new(Greedy::general(), "Greedy-G+ref");
        assert_eq!(wrapped.name(), "Greedy-G+ref");
        let a = wrapped.solve(&inst);
        let b = refine(&inst, &Greedy::general().solve(&inst));
        assert_eq!(a.admitted_volume(&inst), b.admitted_volume(&inst));
    }

    #[test]
    fn fixed_point_is_stable() {
        let params = WorkloadParams::default();
        let inst = generate_instance(&params, 9);
        let once = refine(&inst, &ApproG::default().solve(&inst));
        let twice = refine(&inst, &once);
        assert!((twice.admitted_volume(&inst) - once.admitted_volume(&inst)).abs() < 1e-9);
    }
}
