//! Controller-driven replica repair after node loss.
//!
//! When a compute node dies, every replica it hosted is orphaned and the
//! datasets involved drop below their planned replication degree. The
//! controller's repair loop re-places each orphaned replica on a live,
//! feasible node, restoring the count toward `K` — the availability
//! insurance the paper argues for in §2.3 (and what PingAn-style
//! redundancy buys geo-distributed analytics under failures).
//!
//! [`plan_replacements`] is the *planning* half: pure, deterministic, and
//! instantaneous. The testbed simulator owns the *execution* half — it
//! times each [`RepairAction`]'s transfer through the network, contends on
//! NICs, and retries with backoff when the source link is down.
//!
//! Planning reuses [`AdmissionState`] so the replica-budget constraint (5)
//! is enforced by the same machinery the placement algorithms use:
//! repairs never over-replicate.
//!
//! Erasure-coded datasets rebuild *shards*, not copies: when at least `k`
//! shard holders survive, a replacement shard is re-encoded from any `k`
//! of them (charged `k×` shard read volume plus encode compute); below
//! quorum the live origin re-encodes locally and ships one shard. The
//! [`scrub`] entry point wraps [`plan_replacements`] with the lost-shard
//! census and `ec.scrub` trace accounting the testbed's scrubber emits on
//! its periodic sweep.

use edgerep_ec as ec;
use edgerep_model::delay::assignment_delay;
use edgerep_model::{ComputeNodeId, DatasetId, Instance, Solution, FEASIBILITY_EPS};

use crate::admission::AdmissionState;

/// One planned repair transfer: copy `dataset` from `source` to `target`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairAction {
    /// The dataset whose replica is being restored.
    pub dataset: DatasetId,
    /// Live node the bytes are read from (a surviving replica holder, or
    /// the dataset's origin).
    pub source: ComputeNodeId,
    /// Live node that will host the new replica.
    pub target: ComputeNodeId,
    /// Bytes moved, GB.
    pub gb: f64,
}

/// How useful a candidate node is as a new home for a replica of `d`:
/// the number of admitted queries demanding `d` that could be served from
/// the candidate within their deadline. This is the controller's proxy
/// for "restores QoS coverage", not just "holds a copy".
fn coverage(inst: &Instance, sol: &Solution, d: DatasetId, v: ComputeNodeId) -> usize {
    let mut covered = 0;
    for q in sol.admitted_queries() {
        let query = inst.query(q);
        for (idx, dem) in query.demands.iter().enumerate() {
            if dem.dataset != d {
                continue;
            }
            if assignment_delay(inst, q, idx, v) <= query.deadline + FEASIBILITY_EPS {
                covered += 1;
            }
        }
    }
    covered
}

/// Picks the live source to copy `d` from: the surviving replica holder
/// nearest to `target`, falling back to the dataset's origin when it is
/// alive. `None` means the data is unreachable (every holder and the
/// origin are down) — the repair must wait for a recovery.
pub fn pick_source(
    inst: &Instance,
    sol: &Solution,
    alive: &[bool],
    d: DatasetId,
    target: ComputeNodeId,
) -> Option<ComputeNodeId> {
    pick_sources(inst, sol, alive, d, target).first().copied()
}

/// Every live node `d` can be copied from, nearest-first: the surviving
/// replica holders sorted by delay to `target` (ties: lowest id), then the
/// dataset's origin when it is alive and not already listed. The chunked
/// transfer engine fetches from all of them in parallel; the legacy
/// point-to-point model takes the head. Empty means the bytes are
/// unreachable until something recovers.
pub fn pick_sources(
    inst: &Instance,
    sol: &Solution,
    alive: &[bool],
    d: DatasetId,
    target: ComputeNodeId,
) -> Vec<ComputeNodeId> {
    let cloud = inst.cloud();
    let mut holders: Vec<ComputeNodeId> = sol
        .replicas_of(d)
        .iter()
        .copied()
        .filter(|v| alive[v.index()] && *v != target)
        .collect();
    holders.sort_by(|&a, &b| {
        cloud
            .min_delay(a, target)
            .total_cmp(&cloud.min_delay(b, target))
            .then(a.0.cmp(&b.0))
    });
    let origin = inst.dataset(d).origin;
    if alive[origin.index()] && origin != target && !holders.contains(&origin) {
        holders.push(origin);
    }
    holders
}

/// Plans the repair transfers that restore each under-replicated dataset
/// toward its target count, given the current (post-loss) solution and
/// node liveness.
///
/// `needed[d]` is the replication degree the controller wants back —
/// normally the validated plan's original count, never above `K`. For
/// each missing replica the planner picks the live candidate with the
/// best admitted-query coverage (ties: lowest load fraction, then lowest
/// node id, so plans are deterministic), checks replica budget through
/// [`AdmissionState`], and sources the bytes from the nearest live holder
/// or the origin. Datasets whose bytes are unreachable are skipped — the
/// caller retries when nodes recover.
pub fn plan_replacements(
    inst: &Instance,
    current: &Solution,
    alive: &[bool],
    needed: &[usize],
) -> Vec<RepairAction> {
    let cloud = inst.cloud();
    assert_eq!(alive.len(), cloud.compute_count(), "liveness per node");
    let mut state = AdmissionState::from_solution(inst, current);
    let mut actions = Vec::new();

    for d in inst.dataset_ids() {
        let want = needed[d.index()].min(inst.slots(d));
        loop {
            let have = state.replica_count(d);
            if have >= want || !state.replica_budget_left(d) {
                break;
            }
            let candidate = cloud
                .compute_ids()
                .filter(|v| alive[v.index()] && !state.has_replica(d, *v))
                .map(|v| (v, coverage(inst, state.solution(), d, v)))
                .max_by(|(va, ca), (vb, cb)| {
                    ca.cmp(cb)
                        .then_with(|| state.load_fraction(*vb).total_cmp(&state.load_fraction(*va)))
                        .then(vb.0.cmp(&va.0))
                });
            let Some((target, _)) = candidate else { break };
            let Some(source) = pick_source(inst, state.solution(), alive, d, target) else {
                break; // bytes unreachable until something recovers
            };
            // Replication copies the full dataset; an erasure-coded shard
            // is re-encoded from any k live shard holders (k× shard read
            // volume), or from the live origin (which re-encodes locally
            // and ships one shard) when the survivors are below quorum.
            let scheme = inst.scheme(d);
            let (source, gb) = if scheme.needs_decode() {
                let live_holders = state
                    .solution()
                    .replicas_of(d)
                    .iter()
                    .filter(|h| alive[h.index()])
                    .count();
                let origin = inst.dataset(d).origin;
                if live_holders >= scheme.min_read() {
                    (source, ec::rebuild_charge(scheme, inst.size(d), false).read_gb)
                } else if alive[origin.index()] && origin != target {
                    (origin, ec::rebuild_charge(scheme, inst.size(d), true).read_gb)
                } else {
                    break; // below quorum and no live origin: unrecoverable
                }
            } else {
                (source, inst.size(d))
            };
            state.place_replica(d, target);
            actions.push(RepairAction {
                dataset: d,
                source,
                target,
                gb,
            });
        }
    }
    actions
}

/// One scrub pass: detects datasets below their wanted shard/replica count,
/// plans the Background-tier reconstruction transfers via
/// [`plan_replacements`], and emits the `ec.scrub` accounting event. Returns
/// the planned actions plus the [`ec::ScrubOutcome`] snapshot.
pub fn scrub(
    now_s: f64,
    inst: &Instance,
    current: &Solution,
    alive: &[bool],
    needed: &[usize],
) -> (Vec<RepairAction>, ec::ScrubOutcome) {
    let actions = plan_replacements(inst, current, alive, needed);
    let mut shards_lost = 0usize;
    for d in inst.dataset_ids() {
        let live = current
            .replicas_of(d)
            .iter()
            .filter(|v| alive[v.index()])
            .count();
        shards_lost += needed[d.index()].min(inst.slots(d)).saturating_sub(live);
    }
    let mut read_gb = 0.0;
    let mut encode_gb = 0.0;
    for a in &actions {
        read_gb += a.gb;
        if inst.scheme(a.dataset).needs_decode() {
            encode_gb += inst.size(a.dataset);
        }
    }
    let outcome = ec::ScrubOutcome {
        datasets_scanned: inst.datasets().len(),
        shards_lost,
        rebuilds_planned: actions.len(),
        read_gb,
        encode_gb,
    };
    ec::note_scrub(now_s, &outcome);
    (actions, outcome)
}

/// Static what-if: the admitted volume that survives with only `alive`
/// nodes, i.e. the volume of admitted queries every one of whose serving
/// nodes (or any live replica of the demanded dataset within deadline)
/// remains up. Used by `edgerep solve --fault-plan` for a quick survival
/// report without running the simulator.
pub fn surviving_volume(inst: &Instance, sol: &Solution, alive: &[bool]) -> f64 {
    let mut volume = 0.0;
    'queries: for q in sol.admitted_queries() {
        let nodes = sol.assignment_of(q).expect("admitted");
        let query = inst.query(q);
        for (idx, (&v, dem)) in nodes.iter().zip(query.demands.iter()).enumerate() {
            if alive[v.index()] {
                continue;
            }
            let recoverable = sol.replicas_of(dem.dataset).iter().any(|&alt| {
                alive[alt.index()]
                    && assignment_delay(inst, q, idx, alt) <= query.deadline + FEASIBILITY_EPS
            });
            if !recoverable {
                continue 'queries;
            }
        }
        volume += inst.demanded_volume(q);
    }
    volume
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::appro::ApproG;
    use crate::PlacementAlgorithm;
    use edgerep_model::prelude::*;
    use edgerep_workload::{generate_instance, WorkloadParams};

    fn workload() -> Instance {
        generate_instance(&WorkloadParams::default(), 7)
    }

    fn target_counts(inst: &Instance, sol: &Solution) -> Vec<usize> {
        inst.dataset_ids().map(|d| sol.replica_count(d)).collect()
    }

    #[test]
    fn no_loss_plans_nothing() {
        let inst = workload();
        let sol = ApproG::default().solve(&inst);
        let alive = vec![true; inst.cloud().compute_count()];
        let needed = target_counts(&inst, &sol);
        assert!(plan_replacements(&inst, &sol, &alive, &needed).is_empty());
    }

    #[test]
    fn repair_restores_counts_without_exceeding_k() {
        let inst = workload();
        let sol = ApproG::default().solve(&inst);
        let needed = target_counts(&inst, &sol);

        // Kill the busiest replica holder.
        let mut holder_count = vec![0usize; inst.cloud().compute_count()];
        for d in inst.dataset_ids() {
            for v in sol.replicas_of(d) {
                holder_count[v.index()] += 1;
            }
        }
        let victim = ComputeNodeId(
            holder_count
                .iter()
                .enumerate()
                .max_by_key(|(_, c)| **c)
                .map(|(i, _)| i as u32)
                .expect("workload has at least one compute node"),
        );
        assert!(
            holder_count[victim.index()] > 0,
            "victim must hold replicas"
        );

        let mut after = sol.clone();
        let orphaned = after.remove_node_replicas(victim);
        assert!(!orphaned.is_empty());
        let mut alive = vec![true; inst.cloud().compute_count()];
        alive[victim.index()] = false;

        let actions = plan_replacements(&inst, &after, &alive, &needed);
        assert!(!actions.is_empty(), "orphaned replicas must be re-placed");
        for a in &actions {
            assert!(alive[a.target.index()], "targets must be live");
            assert!(alive[a.source.index()], "sources must be live");
            assert_ne!(a.source, a.target);
            assert!(a.gb > 0.0);
            after.place_replica(a.dataset, a.target);
        }
        for d in inst.dataset_ids() {
            assert!(after.replica_count(d) <= inst.max_replicas());
            // Where repair acted, the count is restored to the plan's.
            if orphaned.contains(&d) {
                assert!(after.replica_count(d) <= needed[d.index()].max(1));
            }
        }
    }

    #[test]
    fn planning_is_deterministic() {
        let inst = workload();
        let sol = ApproG::default().solve(&inst);
        let needed = target_counts(&inst, &sol);
        let mut after = sol.clone();
        after.remove_node_replicas(ComputeNodeId(0));
        let mut alive = vec![true; inst.cloud().compute_count()];
        alive[0] = false;
        let a = plan_replacements(&inst, &after, &alive, &needed);
        let b = plan_replacements(&inst, &after, &alive, &needed);
        assert_eq!(a, b);
    }

    #[test]
    fn unreachable_bytes_are_skipped_not_planned() {
        let inst = workload();
        let sol = ApproG::default().solve(&inst);
        let needed = target_counts(&inst, &sol);
        // Everything down: no sources, no targets.
        let alive = vec![false; inst.cloud().compute_count()];
        let mut bare = sol.clone();
        for v in inst.cloud().compute_ids() {
            bare.remove_node_replicas(v);
        }
        assert!(plan_replacements(&inst, &bare, &alive, &needed).is_empty());
    }

    #[test]
    fn pick_sources_is_nearest_first_with_origin_fallback() {
        let inst = workload();
        let sol = ApproG::default().solve(&inst);
        let alive = vec![true; inst.cloud().compute_count()];
        let cloud = inst.cloud();
        for d in inst.dataset_ids() {
            let target = cloud
                .compute_ids()
                .find(|v| !sol.replicas_of(d).contains(v))
                .expect("some node holds no replica of this dataset");
            let sources = pick_sources(&inst, &sol, &alive, d, target);
            // Head agrees with the single-source picker.
            assert_eq!(sources.first().copied(), pick_source(&inst, &sol, &alive, d, target));
            // Holders are sorted nearest-first; no duplicates; never the
            // target itself.
            for w in sources.windows(2) {
                let (a, b) = (w[0], w[1]);
                if sol.replicas_of(d).contains(&a) && sol.replicas_of(d).contains(&b) {
                    assert!(
                        cloud.min_delay(a, target) <= cloud.min_delay(b, target) + 1e-12
                    );
                }
            }
            let mut dedup = sources.clone();
            dedup.sort_by_key(|v| v.0);
            dedup.dedup();
            assert_eq!(dedup.len(), sources.len());
            assert!(!sources.contains(&target));
            // The origin is reachable from somewhere in the list.
            let origin = inst.dataset(d).origin;
            if origin != target {
                assert!(sources.contains(&origin) || !sol.replicas_of(d).is_empty());
            }
        }
        // With every holder dead, only a live origin remains.
        let d = inst
            .dataset_ids()
            .next()
            .expect("workload has at least one dataset");
        let mut down = alive.clone();
        for v in sol.replicas_of(d) {
            down[v.index()] = false;
        }
        let origin = inst.dataset(d).origin;
        let target = cloud
            .compute_ids()
            .find(|v| down[v.index()] && *v != origin)
            .expect("a live non-origin target exists");
        let srcs = pick_sources(&inst, &sol, &down, d, target);
        if down[origin.index()] {
            assert_eq!(srcs, vec![origin]);
        } else {
            assert!(srcs.is_empty());
        }
    }

    #[test]
    fn scrub_conserves_reconstruction_volume() {
        // dc --0.05-- c0 --0.05-- c1 --0.05-- c2; 4 GB dataset striped
        // ec(2,1) with queries at every cloudlet so shards spread out.
        // After killing one shard holder, the scrub must rebuild at most
        // what was lost, and each rebuild reads between one shard and k
        // shards (= |S| GB) of traffic.
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let c0 = b.add_cloudlet(16.0, 0.01);
        let c1 = b.add_cloudlet(16.0, 0.01);
        let c2 = b.add_cloudlet(16.0, 0.01);
        b.link(dc, c0, 0.05);
        b.link(c0, c1, 0.05);
        b.link(c1, c2, 0.05);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 3);
        let d0 = ib.add_dataset(4.0, dc);
        ib.set_default_scheme(RedundancyScheme::erasure(2, 1).unwrap());
        for home in [c0, c1, c2] {
            ib.add_query(home, vec![Demand::new(d0, 1.0)], 1.0, 1.0);
        }
        let inst = ib.build().unwrap();
        let sol = ApproG::default().solve(&inst);
        sol.validate(&inst).unwrap();
        let needed: Vec<usize> = inst.dataset_ids().map(|d| sol.replica_count(d)).collect();

        let victim = sol.replicas_of(d0)[0];
        let mut after = sol.clone();
        after.remove_node_replicas(victim);
        let mut alive = vec![true; inst.cloud().compute_count()];
        alive[victim.index()] = false;

        let (actions, outcome) = scrub(10.0, &inst, &after, &alive, &needed);
        assert_eq!(outcome.rebuilds_planned, actions.len());
        assert!(outcome.shards_lost >= 1);
        assert!(
            outcome.rebuilds_planned <= outcome.shards_lost,
            "shards rebuilt ({}) must not exceed shards lost ({})",
            outcome.rebuilds_planned,
            outcome.shards_lost
        );
        let scheme = inst.scheme(d0);
        for a in &actions {
            assert!(a.gb >= scheme.shard_gb(inst.size(d0)) - 1e-12);
            assert!(a.gb <= inst.size(d0) + 1e-12);
            assert!(alive[a.source.index()] && alive[a.target.index()]);
        }
        let total: f64 = actions.iter().map(|a| a.gb).sum();
        assert!((outcome.read_gb - total).abs() < 1e-12);
        assert!(outcome.encode_gb <= outcome.rebuilds_planned as f64 * inst.size(d0) + 1e-12);
    }

    #[test]
    fn surviving_volume_bounds() {
        let inst = workload();
        let sol = ApproG::default().solve(&inst);
        let all = vec![true; inst.cloud().compute_count()];
        let none = vec![false; inst.cloud().compute_count()];
        let full = surviving_volume(&inst, &sol, &all);
        assert!((full - sol.admitted_volume(&inst)).abs() < 1e-9);
        assert_eq!(surviving_volume(&inst, &sol, &none), 0.0);
        let mut partial = all.clone();
        partial[0] = false;
        let part = surviving_volume(&inst, &sol, &partial);
        assert!(part <= full + 1e-9);
    }
}
