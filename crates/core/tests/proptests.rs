//! Property-based and differential tests for the placement algorithms.

use edgerep_core::appro::{Appro, ApproConfig};
use edgerep_core::centroid::Centroid;
use edgerep_core::graphpart::GraphPartition;
use edgerep_core::greedy::Greedy;
use edgerep_core::ilp::lp_upper_bound;
use edgerep_core::online::{OnlineAppro, OnlineConfig};
use edgerep_core::optimal::{Optimal, OptimalStatus};
use edgerep_core::popularity::Popularity;
use edgerep_core::PlacementAlgorithm;
use edgerep_model::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A hand-rolled tiny random instance (independent of edgerep-workload, so
/// these tests also cover instance shapes the generator never emits —
/// e.g. zero-available nodes and all-DC clouds).
fn tiny_instance(seed: u64, nodes: usize, datasets: usize, queries: usize, k: usize) -> Instance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = EdgeCloudBuilder::new();
    let mut ids = Vec::new();
    for i in 0..nodes {
        let v = if i % 3 == 0 {
            b.add_data_center(rng.gen_range(20.0..100.0), rng.gen_range(0.001..0.01))
        } else {
            b.add_cloudlet(rng.gen_range(2.0..12.0), rng.gen_range(0.005..0.05))
        };
        // Occasionally pre-load a node.
        if rng.gen_bool(0.2) {
            let cap = match i % 3 {
                0 => 20.0,
                _ => 2.0,
            };
            b.set_available(v, rng.gen_range(0.0..cap));
        }
        ids.push(v);
    }
    // Random connected-ish topology: a ring plus chords.
    for w in 0..nodes {
        let u = ids[w];
        let v = ids[(w + 1) % nodes];
        if u != v {
            b.link(u, v, rng.gen_range(0.01..0.5));
        }
    }
    for _ in 0..nodes {
        let u = ids[rng.gen_range(0..nodes)];
        let v = ids[rng.gen_range(0..nodes)];
        if u != v {
            b.link(u, v, rng.gen_range(0.01..0.5));
        }
    }
    let cloud = b.build().expect("valid tiny cloud");
    let mut ib = InstanceBuilder::new(cloud, k);
    for _ in 0..datasets {
        ib.add_dataset(rng.gen_range(0.5..5.0), ids[rng.gen_range(0..nodes)]);
    }
    for _ in 0..queries {
        let n_dem = rng.gen_range(1..=2.min(datasets));
        let mut picked = Vec::new();
        while picked.len() < n_dem {
            let d = DatasetId(rng.gen_range(0..datasets as u32));
            if !picked.iter().any(|dem: &Demand| dem.dataset == d) {
                picked.push(Demand::new(d, rng.gen_range(0.1..1.0)));
            }
        }
        ib.add_query(
            ids[rng.gen_range(0..nodes)],
            picked,
            rng.gen_range(0.75..1.25),
            rng.gen_range(0.05..2.0),
        );
    }
    ib.build().expect("valid tiny instance")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Differential check against the exact solver: no heuristic ever
    /// exceeds a *proven* optimum, and everything sits under the LP bound.
    #[test]
    fn nothing_beats_a_proven_optimum(seed in 0u64..10_000) {
        let inst = tiny_instance(seed, 4, 3, 5, 2);
        let (opt_sol, status) = Optimal { node_limit: 100_000 }.solve_with_status(&inst);
        prop_assume!(status == OptimalStatus::Proven);
        opt_sol.validate(&inst).expect("optimal is feasible");
        let opt = opt_sol.admitted_volume(&inst);
        let lp = lp_upper_bound(&inst);
        prop_assert!(opt <= lp + 1e-6);
        let algorithms: Vec<Box<dyn PlacementAlgorithm>> = vec![
            Box::new(edgerep_core::appro::ApproG::default()),
            Box::new(Greedy::general()),
            Box::new(GraphPartition::general()),
            Box::new(Popularity::general()),
            Box::new(Centroid),
            Box::new(OnlineAppro::default()),
        ];
        for alg in algorithms {
            let sol = alg.solve(&inst);
            sol.validate(&inst)
                .unwrap_or_else(|e| panic!("{} infeasible: {e:?}", alg.name()));
            prop_assert!(
                sol.admitted_volume(&inst) <= opt + 1e-6,
                "{} beat the optimum: {} > {}",
                alg.name(),
                sol.admitted_volume(&inst),
                opt
            );
        }
    }

    /// Appro is never *worse* than simply running Greedy — the paper's
    /// headline claim, property-tested on adversarial tiny instances.
    /// (Strictly: Appro ≥ a constant fraction; here we check a weak 50%.)
    #[test]
    fn appro_not_catastrophically_behind_greedy(seed in 0u64..10_000) {
        let inst = tiny_instance(seed, 6, 4, 8, 2);
        let appro = edgerep_core::appro::ApproG::default()
            .solve(&inst)
            .admitted_volume(&inst);
        let greedy = Greedy::general().solve(&inst).admitted_volume(&inst);
        prop_assert!(
            appro + 1e-9 >= 0.5 * greedy,
            "appro {appro} collapsed vs greedy {greedy}"
        );
    }

    /// Monotonicity in K: raising the replica budget never reduces
    /// Appro's admitted volume on the same instance (more budget = strict
    /// superset of feasible placements; the heuristic should track that).
    #[test]
    fn appro_weakly_monotone_in_k(seed in 0u64..10_000) {
        let with_k = |k: usize| {
            let inst = tiny_instance(seed, 6, 4, 8, k);
            edgerep_core::appro::ApproG::default()
                .solve(&inst)
                .admitted_volume(&inst)
        };
        let v1 = with_k(1);
        let v4 = with_k(4);
        // Heuristics are not perfectly monotone; allow 20% slack but catch
        // systematic inversions.
        prop_assert!(
            v4 >= v1 * 0.8 - 1e-9,
            "K=4 volume {v4} fell far below K=1 volume {v1}"
        );
    }

    /// The dual bound is monotone-safe: it always dominates the primal,
    /// whatever the engine configuration.
    #[test]
    fn dual_bound_always_dominates(seed in 0u64..10_000, mu in 1.5f64..500.0) {
        let inst = tiny_instance(seed, 5, 3, 6, 2);
        let cfg = ApproConfig { price_mu: Some(mu), ..Default::default() };
        let report = Appro::with_config(cfg).run(&inst);
        prop_assert!(
            report.dual_bound >= report.solution.admitted_volume(&inst) - 1e-9
        );
    }

    /// Tightening the online admission threshold never admits *more*
    /// volume: a lower tolerated price-per-GB only turns price-rejects
    /// into more price-rejects, it cannot open capacity a looser
    /// controller wouldn't also have had at the same arrival. (Not a
    /// theorem for arbitrary arrival orders — rejecting one arrival can
    /// in principle free capacity for two later ones — but it must hold
    /// systematically on workload-shaped instances; a violation here
    /// means the price accounting broke.)
    #[test]
    fn online_threshold_tightening_is_monotone(seed in 0u64..10_000) {
        let inst = tiny_instance(seed, 6, 4, 8, 2);
        let ladder = [0.25f64, 0.5, 1.0, 2.0, f64::INFINITY];
        let volumes: Vec<f64> = ladder
            .iter()
            .map(|&threshold| {
                let alg = OnlineAppro::with_config(OnlineConfig {
                    admission_threshold: threshold,
                    ..Default::default()
                });
                let report = alg.run(&inst);
                report.solution.validate(&inst).expect("online is feasible");
                report.solution.admitted_volume(&inst)
            })
            .collect();
        for pair in volumes.windows(2) {
            prop_assert!(
                pair[0] <= pair[1] + 1e-9,
                "tightening the threshold admitted more volume: {volumes:?}"
            );
        }
    }

    /// Solvers never panic on instances with *infinite* inter-node
    /// delays. The graph builder rejects non-finite link weights, so the
    /// reachable poison is `+inf` from disconnected node pairs
    /// ([`edgerep_graph`]'s `delay_or_inf`): every comparator on the
    /// solver paths is `f64::total_cmp` (which orders ±inf and NaN
    /// totally, where `partial_cmp(..).unwrap()` would abort), and the
    /// cached candidate matrix drops non-finite base delays at build
    /// time. Outputs are not pinned here — an unreachable node is simply
    /// unattractive — the property is "no panic, cache stays inert".
    /// (NaN inertness of the cache filter is unit-tested in
    /// `edgerep_model::cache`; no validated instance can carry one.)
    #[test]
    fn solvers_tolerate_disconnected_topologies(
        seed in 0u64..10_000,
        island_count in 1usize..3,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xbad);
        let mut b = EdgeCloudBuilder::new();
        let nodes: Vec<_> = (0..6)
            .map(|i| {
                if i == 0 {
                    b.add_data_center(50.0, 0.002)
                } else {
                    b.add_cloudlet(8.0, rng.gen_range(0.005..0.05))
                }
            })
            .collect();
        // Chain the mainland; leave the last `island_count` nodes fully
        // unlinked, so every (mainland, island) delay is +inf.
        let mainland = nodes.len() - island_count;
        for w in 0..mainland - 1 {
            b.link(nodes[w], nodes[w + 1], rng.gen_range(0.01..0.5));
        }
        let cloud = b.build().expect("disconnected cloud still builds");
        let mut ib = InstanceBuilder::new(cloud, 2);
        for _ in 0..3 {
            ib.add_dataset(rng.gen_range(0.5..4.0), nodes[0]);
        }
        for _ in 0..6 {
            ib.add_query(
                nodes[rng.gen_range(0..nodes.len())],
                vec![Demand::new(DatasetId(rng.gen_range(0..3)), rng.gen_range(0.1..1.0))],
                rng.gen_range(0.75..1.25),
                rng.gen_range(0.05..2.0),
            );
        }
        let inst = ib.build().expect("poisoned instance still builds");
        // The cached matrix must exclude any candidate with a poisoned
        // base delay (NaN fails ≤, +inf exceeds every finite deadline).
        for q in inst.query_ids() {
            for idx in 0..inst.query(q).demands.len() {
                for (_, d) in inst.solver_cache().candidates(q, idx) {
                    prop_assert!(d.is_finite(), "cached candidate with delay {d}");
                }
            }
        }
        let report = Appro::default().run(&inst);
        let _ = report.solution.validate(&inst);
        let naive = Appro::default().run_naive(&inst);
        let _ = naive.solution.validate(&inst);
        for alg in [
            Box::new(edgerep_core::appro::ApproG::default()) as Box<dyn PlacementAlgorithm>,
            Box::new(Greedy::general()),
            Box::new(GraphPartition::general()),
            Box::new(Popularity::general()),
            Box::new(Centroid),
            Box::new(OnlineAppro::default()),
        ] {
            let _ = alg.solve(&inst); // must not panic
        }
    }

    /// Zero-availability nodes never receive assignments.
    #[test]
    fn saturated_nodes_serve_nothing(seed in 0u64..10_000) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xdead);
        let mut b = EdgeCloudBuilder::new();
        let full = b.add_cloudlet(10.0, 0.001);
        b.set_available(full, 0.0);
        let open = b.add_cloudlet(10.0, 0.001);
        b.link(full, open, rng.gen_range(0.01..0.1));
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d = ib.add_dataset(2.0, full);
        for _ in 0..3 {
            ib.add_query(full, vec![Demand::new(d, 1.0)], 1.0, 5.0);
        }
        let inst = ib.build().unwrap();
        for alg in [
            Box::new(edgerep_core::appro::ApproG::default()) as Box<dyn PlacementAlgorithm>,
            Box::new(Greedy::general()),
            Box::new(Popularity::general()),
        ] {
            let sol = alg.solve(&inst);
            sol.validate(&inst).unwrap();
            for q in sol.admitted_queries() {
                prop_assert!(
                    !sol.assignment_of(q).unwrap().contains(&full),
                    "{} assigned to a zero-availability node",
                    alg.name()
                );
            }
        }
    }
}
