//! Striping plans: how a dataset is cut into shards before placement.
//!
//! [`encode_plan`] is called once per EC dataset activation (and per
//! scrub rebuild) and is cheap by construction — it derives counts and
//! volumes, it does not touch bytes. It still carries an `ec.encode_plan`
//! span so the bench suite and profiler see the call path.

use edgerep_obs as obs;

use crate::scheme::RedundancyScheme;

/// The shard layout of one dataset under a scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncodePlan {
    /// The scheme the plan was derived from.
    pub scheme: RedundancyScheme,
    /// GB per shard (`|S|` for replication, `|S|/k` for EC).
    pub shard_gb: f64,
    /// Stripe width: shards that carry plain data (`k`; replication
    /// counts each full copy as one data shard).
    pub data_shards: usize,
    /// Parity shards (`m`; 0 for replication).
    pub parity_shards: usize,
    /// GB run through the encoder to produce the parity: the full
    /// dataset size when the scheme needs a decode, 0 otherwise (plain
    /// copies are not encoded).
    pub encode_gb: f64,
}

impl EncodePlan {
    /// Total shards produced (`slots`).
    pub fn total_shards(&self) -> usize {
        self.data_shards + self.parity_shards
    }

    /// GB written across all holders when every shard is placed.
    pub fn total_gb(&self) -> f64 {
        self.total_shards() as f64 * self.shard_gb
    }

    /// Encode compute time at `s_per_gb` seconds per GB encoded.
    pub fn encode_s(&self, s_per_gb: f64) -> f64 {
        self.encode_gb * s_per_gb
    }
}

/// Derives the shard layout of a `size_gb` dataset under `scheme`.
pub fn encode_plan(scheme: RedundancyScheme, size_gb: f64) -> EncodePlan {
    let _span = obs::span("ec", "ec.encode_plan");
    obs::counter("ec.encode_plans").inc();
    let (data_shards, parity_shards) = match scheme {
        RedundancyScheme::Replication { k } => (k, 0),
        RedundancyScheme::ErasureCoded { k, m } => (k, m),
    };
    EncodePlan {
        scheme,
        shard_gb: scheme.shard_gb(size_gb),
        data_shards,
        parity_shards,
        encode_gb: if scheme.needs_decode() { size_gb } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_plan_is_copy_shaped() {
        let p = encode_plan(RedundancyScheme::Replication { k: 3 }, 6.0);
        assert_eq!(p.data_shards, 3);
        assert_eq!(p.parity_shards, 0);
        assert_eq!(p.shard_gb, 6.0);
        assert_eq!(p.total_shards(), 3);
        assert_eq!(p.total_gb(), 18.0);
        assert_eq!(p.encode_gb, 0.0);
        assert_eq!(p.encode_s(0.05), 0.0);
    }

    #[test]
    fn erasure_plan_stripes_and_charges_encode() {
        let p = encode_plan(RedundancyScheme::ErasureCoded { k: 4, m: 2 }, 6.0);
        assert_eq!(p.data_shards, 4);
        assert_eq!(p.parity_shards, 2);
        assert_eq!(p.shard_gb, 1.5);
        assert_eq!(p.total_shards(), 6);
        assert_eq!(p.total_gb(), 9.0);
        assert_eq!(p.encode_gb, 6.0);
        assert!((p.encode_s(0.05) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn k1_erasure_plan_matches_replication() {
        let ec = encode_plan(RedundancyScheme::ErasureCoded { k: 1, m: 2 }, 4.7);
        let rep = encode_plan(RedundancyScheme::Replication { k: 3 }, 4.7);
        assert_eq!(ec.shard_gb.to_bits(), rep.shard_gb.to_bits());
        assert_eq!(ec.total_shards(), rep.total_shards());
        assert_eq!(ec.encode_gb.to_bits(), rep.encode_gb.to_bits());
    }
}
