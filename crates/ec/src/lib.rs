#![warn(missing_docs)]

//! Erasure-coding redundancy schemes for the edgerep stack.
//!
//! The paper fixes redundancy at ≤ `K` full replicas; production edge
//! stores choose *per dataset* between replication and `(k, m)` erasure
//! coding, trading storage for read latency and repair traffic. This
//! crate defines that choice — [`RedundancyScheme`] — and the pure
//! arithmetic every other layer prices against:
//!
//! * [`scheme`] — shard counts, shard sizes, storage overhead, and the
//!   `min_read` quorum (`k` shards reconstruct the dataset);
//! * [`encode`] — striping plans: which shard indices are data vs parity
//!   and how much volume the encoder touches ([`encode_plan`] is the hot
//!   path behind the `ec.encode_plan` microbench);
//! * [`read`] — degraded-read gather planning: pick the `k − 1` nearest
//!   live co-holders, fan the shard pulls out in parallel, and charge the
//!   decode CPU ([`plan_read`] backs the `ec.degraded_read` microbench);
//! * [`scrub`] — rebuild charging (`k×` read volume + encode compute per
//!   lost shard) and the `ec.scrub` accounting events.
//!
//! Everything is expressed over abstract node indices and GB volumes so
//! the crate stays zero-dependency (plus `edgerep-obs` for metrics and
//! trace events) and fully testable offline. The `(k, m)` degenerate
//! case `k = 1` is *exactly* replication with `1 + m` copies: one "data
//! shard" is the whole dataset, no gather, no decode — the equivalence
//! the model/testbed pin tests rely on.

pub mod encode;
pub mod read;
pub mod scheme;
pub mod scrub;

pub use encode::{encode_plan, EncodePlan};
pub use read::{plan_read, ReadPlan, ShardSource};
pub use scheme::{RedundancyScheme, SchemeError};
pub use scrub::{note_degraded_read, note_scrub, rebuild_charge, RebuildCharge, ScrubOutcome};
