//! Degraded-read gather planning.
//!
//! A read of an EC dataset is served at a node holding one shard; the
//! remaining `k − 1` stripes are pulled from the nearest live co-holders
//! in parallel, then the dataset is decoded at `decode_s_per_gb · |S|`
//! compute cost. When fewer than `k + m` but at least `k` shards survive
//! a fault window the read still succeeds — *degraded*, not unavailable —
//! which is exactly the availability edge the ext-ec figure measures.
//! [`plan_read`] is pure and deterministic (nearest-first, ties by lowest
//! node index); the `ec.degraded_read` trace event lives in
//! [`crate::scrub::note_degraded_read`].

use crate::scheme::RedundancyScheme;

/// A live co-holder of one shard, as seen from the reading node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSource {
    /// Abstract node index of the holder.
    pub node: usize,
    /// Transfer delay to the reader, seconds per GB.
    pub delay_s_per_gb: f64,
}

/// The gather + decode work one read performs beyond local processing.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadPlan {
    /// The `min_read − 1` co-holders pulled from, nearest-first. Empty
    /// when the scheme needs no decode (replication, `k = 1`).
    pub sources: Vec<ShardSource>,
    /// Total GB pulled over the network (`(k − 1) · |S|/k`).
    pub gather_gb: f64,
    /// Wall time of the parallel fan-out: the slowest chosen source's
    /// `delay_s_per_gb · shard_gb`.
    pub gather_s: f64,
    /// GB decoded (the full dataset size when a decode happens, else 0).
    pub decode_gb: f64,
    /// Whether shards were lost (`live < placed`): the read succeeds but
    /// runs on a partially-failed shard set.
    pub degraded: bool,
}

impl ReadPlan {
    /// Total extra read latency at `decode_s_per_gb` seconds of decode
    /// compute per reconstructed GB.
    pub fn overhead_s(&self, decode_s_per_gb: f64) -> f64 {
        self.gather_s + self.decode_gb * decode_s_per_gb
    }
}

/// Plans a read of a `size_gb` dataset served at a node that holds one
/// live shard. `live_others` are the *other* live holders (the reader
/// excluded); `placed` is the holder count before any losses, used only
/// to classify the read as degraded.
///
/// Returns `None` when fewer than `min_read` shards are live — the
/// dataset is unreadable until repair. Schemes with no decode step
/// return an empty plan with zero overhead, bit-for-bit.
pub fn plan_read(
    scheme: RedundancyScheme,
    size_gb: f64,
    live_others: &[ShardSource],
    placed: usize,
) -> Option<ReadPlan> {
    let live = 1 + live_others.len();
    let degraded = live < placed;
    if !scheme.needs_decode() {
        return Some(ReadPlan {
            sources: Vec::new(),
            gather_gb: 0.0,
            gather_s: 0.0,
            decode_gb: 0.0,
            degraded,
        });
    }
    let need = scheme.min_read() - 1; // reader's own shard counts
    if live_others.len() < need {
        return None;
    }
    let mut ranked: Vec<ShardSource> = live_others.to_vec();
    ranked.sort_by(|a, b| {
        a.delay_s_per_gb
            .total_cmp(&b.delay_s_per_gb)
            .then(a.node.cmp(&b.node))
    });
    ranked.truncate(need);
    let shard_gb = scheme.shard_gb(size_gb);
    let gather_s = ranked
        .iter()
        .map(|s| s.delay_s_per_gb * shard_gb)
        .fold(0.0, f64::max);
    Some(ReadPlan {
        gather_gb: need as f64 * shard_gb,
        gather_s,
        decode_gb: size_gb,
        sources: ranked,
        degraded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(node: usize, delay: f64) -> ShardSource {
        ShardSource {
            node,
            delay_s_per_gb: delay,
        }
    }

    #[test]
    fn replication_read_has_zero_overhead() {
        let rep = RedundancyScheme::Replication { k: 3 };
        let plan = plan_read(rep, 6.0, &[src(1, 0.5)], 3).expect("one live copy suffices");
        assert!(plan.sources.is_empty());
        assert_eq!(plan.gather_gb.to_bits(), 0.0f64.to_bits());
        assert_eq!(plan.gather_s.to_bits(), 0.0f64.to_bits());
        assert_eq!(plan.overhead_s(0.1).to_bits(), 0.0f64.to_bits());
        assert!(plan.degraded, "3 placed, 2 live");
        // Even with no co-holders at all the single live copy serves.
        assert!(plan_read(rep, 6.0, &[], 1).is_some());
    }

    #[test]
    fn k1_erasure_read_matches_replication_bitwise() {
        let ec = RedundancyScheme::ErasureCoded { k: 1, m: 2 };
        let rep = RedundancyScheme::Replication { k: 3 };
        let a = plan_read(ec, 4.7, &[src(2, 0.3)], 3).unwrap();
        let b = plan_read(rep, 4.7, &[src(2, 0.3)], 3).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.overhead_s(0.07).to_bits(), b.overhead_s(0.07).to_bits());
    }

    #[test]
    fn gather_picks_nearest_k_minus_one() {
        let ec = RedundancyScheme::ErasureCoded { k: 3, m: 2 };
        let others = [src(4, 0.9), src(1, 0.2), src(3, 0.5), src(2, 0.2)];
        let plan = plan_read(ec, 6.0, &others, 5).unwrap();
        // Ties on delay break toward the lower node index.
        assert_eq!(
            plan.sources,
            vec![src(1, 0.2), src(2, 0.2)],
            "two nearest of four"
        );
        // shard = 2 GB; slowest chosen source at 0.2 s/GB.
        assert!((plan.gather_s - 0.4).abs() < 1e-12);
        assert!((plan.gather_gb - 4.0).abs() < 1e-12);
        assert_eq!(plan.decode_gb, 6.0);
        assert!(!plan.degraded, "reader + 4 others = 5 live of 5 placed");
    }

    #[test]
    fn degraded_flag_tracks_losses() {
        let ec = RedundancyScheme::ErasureCoded { k: 2, m: 1 };
        let full = plan_read(ec, 4.0, &[src(1, 0.1), src(2, 0.2)], 3).unwrap();
        assert!(!full.degraded);
        let degraded = plan_read(ec, 4.0, &[src(1, 0.1)], 3).unwrap();
        assert!(degraded.degraded);
        assert_eq!(degraded.sources.len(), 1);
    }

    #[test]
    fn unreadable_below_quorum() {
        let ec = RedundancyScheme::ErasureCoded { k: 4, m: 2 };
        // Reader + 2 others = 3 live < k = 4.
        assert!(plan_read(ec, 6.0, &[src(1, 0.1), src(2, 0.2)], 6).is_none());
        // Reader + 3 others = 4: readable again (fully degraded).
        let plan = plan_read(ec, 6.0, &[src(1, 0.1), src(2, 0.2), src(3, 0.3)], 6).unwrap();
        assert!(plan.degraded);
        assert_eq!(plan.sources.len(), 3);
    }

    #[test]
    fn overhead_adds_decode_compute() {
        let ec = RedundancyScheme::ErasureCoded { k: 2, m: 1 };
        let plan = plan_read(ec, 4.0, &[src(1, 0.5)], 3).unwrap();
        // gather: 0.5 s/GB × 2 GB = 1 s; decode: 4 GB × 0.25 s/GB = 1 s.
        assert!((plan.overhead_s(0.25) - 2.0).abs() < 1e-12);
    }
}
