//! The per-dataset redundancy choice and its storage/read arithmetic.
//!
//! A [`RedundancyScheme`] answers four questions every layer above asks:
//! how many distinct nodes may hold a piece (`slots`), how many must be
//! live for a read (`min_read`), how big each stored piece is
//! (`shard_gb`), and whether serving a read requires a decode
//! (`needs_decode`). Replication stores `k` full copies; erasure coding
//! stripes the dataset into `k` data shards plus `m` parity shards, each
//! `|S|/k` GB, reconstructable from *any* `k` of the `k + m`.

/// Why a scheme failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeError {
    /// `Replication { k: 0 }` — at least one copy is required.
    ZeroCopies,
    /// `ErasureCoded { k: 0, .. }` — at least one data shard is required.
    ZeroDataShards,
}

impl std::fmt::Display for SchemeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeError::ZeroCopies => write!(f, "replication needs k >= 1 copies"),
            SchemeError::ZeroDataShards => write!(f, "erasure coding needs k >= 1 data shards"),
        }
    }
}

impl std::error::Error for SchemeError {}

/// How a dataset's bytes are made redundant across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RedundancyScheme {
    /// Up to `k` full copies; any single live copy serves a read.
    Replication {
        /// Maximum number of full replicas (the paper's `K`).
        k: usize,
    },
    /// `k` data + `m` parity shards of `|S|/k` GB each; any `k` live
    /// shards reconstruct the dataset (decode cost applies when `k ≥ 2`).
    ErasureCoded {
        /// Data shards (stripe width).
        k: usize,
        /// Parity shards (loss tolerance).
        m: usize,
    },
}

impl RedundancyScheme {
    /// Validated replication with `k` copies.
    pub fn replication(k: usize) -> Result<Self, SchemeError> {
        let s = RedundancyScheme::Replication { k };
        s.validate().map(|()| s)
    }

    /// Validated `(k, m)` erasure coding.
    pub fn erasure(k: usize, m: usize) -> Result<Self, SchemeError> {
        let s = RedundancyScheme::ErasureCoded { k, m };
        s.validate().map(|()| s)
    }

    /// Checks the shard counts are usable.
    pub fn validate(&self) -> Result<(), SchemeError> {
        match *self {
            RedundancyScheme::Replication { k: 0 } => Err(SchemeError::ZeroCopies),
            RedundancyScheme::ErasureCoded { k: 0, .. } => Err(SchemeError::ZeroDataShards),
            _ => Ok(()),
        }
    }

    /// Maximum number of distinct holder nodes: `k` copies, or `k + m`
    /// shards. This replaces the paper's uniform replica budget `K` in
    /// every per-dataset budget check.
    pub fn slots(&self) -> usize {
        match *self {
            RedundancyScheme::Replication { k } => k,
            RedundancyScheme::ErasureCoded { k, m } => k + m,
        }
    }

    /// How many distinct live holders a read needs: 1 copy, or `k`
    /// shards.
    pub fn min_read(&self) -> usize {
        match *self {
            RedundancyScheme::Replication { .. } => 1,
            RedundancyScheme::ErasureCoded { k, .. } => k,
        }
    }

    /// Whether serving a read pays a gather + decode step. `k = 1`
    /// erasure coding stores whole-dataset "shards", so it reads exactly
    /// like replication — the degenerate case the equivalence pins test.
    pub fn needs_decode(&self) -> bool {
        matches!(*self, RedundancyScheme::ErasureCoded { k, .. } if k >= 2)
    }

    /// Fraction of the dataset each holder stores: 1 per copy, `1/k` per
    /// shard.
    pub fn stored_fraction(&self) -> f64 {
        match *self {
            RedundancyScheme::Replication { .. } => 1.0,
            RedundancyScheme::ErasureCoded { k, .. } => 1.0 / k as f64,
        }
    }

    /// GB stored by one holder of a `size_gb` dataset.
    pub fn shard_gb(&self, size_gb: f64) -> f64 {
        size_gb * self.stored_fraction()
    }

    /// GB stored across all `slots` holders when fully placed — the
    /// storage the ext-ec figure trades against admitted volume:
    /// `3 × |S|` for `Replication{3}` vs `1.5 × |S|` for `EC(4, 2)`.
    pub fn full_storage_gb(&self, size_gb: f64) -> f64 {
        self.slots() as f64 * self.shard_gb(size_gb)
    }

    /// Storage overhead factor relative to one copy
    /// (`full_storage_gb / size_gb`): `k` for replication, `(k + m)/k`
    /// for erasure coding.
    pub fn storage_overhead(&self) -> f64 {
        self.slots() as f64 * self.stored_fraction()
    }

    /// How many holder losses a fully placed dataset tolerates while
    /// staying readable: `k − 1` copies, or `m` shards.
    pub fn loss_tolerance(&self) -> usize {
        self.slots() - self.min_read()
    }

    /// Stable human label used in figure arm names and trace fields:
    /// `rep(3)`, `ec(4,2)`.
    pub fn label(&self) -> String {
        match *self {
            RedundancyScheme::Replication { k } => format!("rep({k})"),
            RedundancyScheme::ErasureCoded { k, m } => format!("ec({k},{m})"),
        }
    }

    /// Parses the [`label`](Self::label) forms plus the CLI shorthands
    /// `rep3` and `ec4+2`.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if let Some(rest) = s.strip_prefix("rep") {
            let digits = rest
                .trim_start_matches('(')
                .trim_end_matches(')')
                .trim();
            let k: usize = digits.parse().ok()?;
            return RedundancyScheme::replication(k).ok();
        }
        if let Some(rest) = s.strip_prefix("ec") {
            let body = rest.trim_start_matches('(').trim_end_matches(')').trim();
            let (ks, ms) = body.split_once(['+', ','])?;
            let k: usize = ks.trim().parse().ok()?;
            let m: usize = ms.trim().parse().ok()?;
            return RedundancyScheme::erasure(k, m).ok();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_validate() {
        assert_eq!(
            RedundancyScheme::replication(0).unwrap_err(),
            SchemeError::ZeroCopies
        );
        assert_eq!(
            RedundancyScheme::erasure(0, 2).unwrap_err(),
            SchemeError::ZeroDataShards
        );
        assert!(RedundancyScheme::replication(1).is_ok());
        assert!(RedundancyScheme::erasure(1, 0).is_ok());
        assert!(RedundancyScheme::erasure(8, 3).is_ok());
    }

    #[test]
    fn replication_arithmetic() {
        let r3 = RedundancyScheme::replication(3).unwrap();
        assert_eq!(r3.slots(), 3);
        assert_eq!(r3.min_read(), 1);
        assert!(!r3.needs_decode());
        assert_eq!(r3.stored_fraction(), 1.0);
        assert_eq!(r3.shard_gb(6.0), 6.0);
        assert_eq!(r3.full_storage_gb(6.0), 18.0);
        assert_eq!(r3.storage_overhead(), 3.0);
        assert_eq!(r3.loss_tolerance(), 2);
        assert_eq!(r3.label(), "rep(3)");
    }

    #[test]
    fn erasure_arithmetic() {
        let ec = RedundancyScheme::erasure(4, 2).unwrap();
        assert_eq!(ec.slots(), 6);
        assert_eq!(ec.min_read(), 4);
        assert!(ec.needs_decode());
        assert_eq!(ec.stored_fraction(), 0.25);
        assert_eq!(ec.shard_gb(6.0), 1.5);
        assert_eq!(ec.full_storage_gb(6.0), 9.0);
        assert_eq!(ec.storage_overhead(), 1.5);
        assert_eq!(ec.loss_tolerance(), 2);
        assert_eq!(ec.label(), "ec(4,2)");
    }

    #[test]
    fn ec_saves_storage_at_equal_loss_tolerance() {
        // The snippet numbers: 3× replication vs 1.5× EC(4+2), both
        // tolerating two losses.
        let rep = RedundancyScheme::replication(3).unwrap();
        let ec = RedundancyScheme::erasure(4, 2).unwrap();
        assert_eq!(rep.loss_tolerance(), ec.loss_tolerance());
        assert!(ec.storage_overhead() < rep.storage_overhead());
    }

    #[test]
    fn k1_erasure_degenerates_to_replication() {
        // EC{1, m} must be indistinguishable from Replication{1 + m} in
        // every quantity the placement and delay layers read — the basis
        // of the byte-identity equivalence pins.
        for m in 0..4 {
            let ec = RedundancyScheme::erasure(1, m).unwrap();
            let rep = RedundancyScheme::replication(1 + m).unwrap();
            assert_eq!(ec.slots(), rep.slots());
            assert_eq!(ec.min_read(), rep.min_read());
            assert_eq!(ec.needs_decode(), rep.needs_decode());
            assert_eq!(ec.stored_fraction().to_bits(), rep.stored_fraction().to_bits());
            assert_eq!(ec.shard_gb(4.7).to_bits(), rep.shard_gb(4.7).to_bits());
            assert_eq!(ec.loss_tolerance(), rep.loss_tolerance());
        }
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for s in [
            RedundancyScheme::Replication { k: 3 },
            RedundancyScheme::ErasureCoded { k: 4, m: 2 },
            RedundancyScheme::ErasureCoded { k: 8, m: 3 },
        ] {
            assert_eq!(RedundancyScheme::parse(&s.label()), Some(s));
        }
        assert_eq!(
            RedundancyScheme::parse("rep3"),
            Some(RedundancyScheme::Replication { k: 3 })
        );
        assert_eq!(
            RedundancyScheme::parse("ec4+2"),
            Some(RedundancyScheme::ErasureCoded { k: 4, m: 2 })
        );
        assert_eq!(RedundancyScheme::parse("ec0+2"), None);
        assert_eq!(RedundancyScheme::parse("rep0"), None);
        assert_eq!(RedundancyScheme::parse("raid5"), None);
        assert_eq!(RedundancyScheme::parse("ec"), None);
    }
}
