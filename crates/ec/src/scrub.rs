//! Scrub and rebuild accounting.
//!
//! The scrubber itself lives where `Instance`/`Solution` live (the
//! controller plans rebuilds with `core::repair`, the testbed executes
//! them as Background-tier transfers); this module owns the *charging
//! rule* — what one lost shard costs to reconstruct — and the obs events
//! CI greps for (`ec.scrub`, `ec.degraded_read`).

use edgerep_obs as obs;

use crate::scheme::RedundancyScheme;

/// What rebuilding one lost holder of a dataset costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebuildCharge {
    /// GB read over the network: `k` surviving shards (`k · |S|/k = |S|`)
    /// for a decode-bearing scheme, one full copy for replication.
    pub read_gb: f64,
    /// GB run through the re-encoder (the full dataset for EC, 0 for a
    /// plain copy).
    pub encode_gb: f64,
    /// GB written to the new holder (one shard).
    pub write_gb: f64,
}

impl RebuildCharge {
    /// Encode compute time at `s_per_gb` seconds per GB.
    pub fn encode_s(&self, s_per_gb: f64) -> f64 {
        self.encode_gb * s_per_gb
    }
}

/// The conserved charging rule for one lost holder of a `size_gb`
/// dataset: EC rebuilds read `min_read ×` the shard volume from the
/// survivors and pay encode compute; replication copies one replica. When
/// `from_origin` is true the source still holds the full dataset and can
/// encode locally, so only the one shard crosses the network.
pub fn rebuild_charge(scheme: RedundancyScheme, size_gb: f64, from_origin: bool) -> RebuildCharge {
    let shard = scheme.shard_gb(size_gb);
    if !scheme.needs_decode() {
        return RebuildCharge {
            read_gb: shard,
            encode_gb: 0.0,
            write_gb: shard,
        };
    }
    if from_origin {
        // The origin has the whole dataset: re-encode there, ship one
        // shard.
        RebuildCharge {
            read_gb: shard,
            encode_gb: size_gb,
            write_gb: shard,
        }
    } else {
        RebuildCharge {
            read_gb: scheme.min_read() as f64 * shard,
            encode_gb: size_gb,
            write_gb: shard,
        }
    }
}

/// One scrub pass's findings, aggregated across datasets.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScrubOutcome {
    /// Datasets whose holder sets were checked.
    pub datasets_scanned: usize,
    /// Holders found missing versus the plan.
    pub shards_lost: usize,
    /// Rebuild transfers scheduled this pass (≤ `shards_lost`; sources
    /// may be unreachable).
    pub rebuilds_planned: usize,
    /// Total GB the scheduled rebuilds will read from survivors.
    pub read_gb: f64,
    /// Total GB of re-encode compute the rebuilds will pay.
    pub encode_gb: f64,
}

/// Records one scrub pass: bumps the `ec.scrub.*` counters and emits the
/// `ec.scrub` trace event the CI smoke greps for.
pub fn note_scrub(now_s: f64, outcome: &ScrubOutcome) {
    obs::counter("ec.scrub.runs").inc();
    obs::counter("ec.scrub.shards_lost").add(outcome.shards_lost as u64);
    obs::counter("ec.scrub.rebuilds").add(outcome.rebuilds_planned as u64);
    obs::emit(
        "ec",
        "ec.scrub",
        "ec.scrub",
        &[
            ("t_s", now_s.into()),
            ("datasets_scanned", outcome.datasets_scanned.into()),
            ("shards_lost", outcome.shards_lost.into()),
            ("rebuilds_planned", outcome.rebuilds_planned.into()),
            ("read_gb", outcome.read_gb.into()),
            ("encode_gb", outcome.encode_gb.into()),
        ],
    );
}

/// Records one degraded read: bumps `ec.degraded_reads` and emits the
/// `ec.degraded_read` trace event the CI smoke greps for.
pub fn note_degraded_read(now_s: f64, dataset: usize, live: usize, placed: usize, min_read: usize) {
    obs::counter("ec.degraded_reads").inc();
    obs::emit(
        "ec",
        "ec.read",
        "ec.degraded_read",
        &[
            ("t_s", now_s.into()),
            ("dataset", dataset.into()),
            ("live", live.into()),
            ("placed", placed.into()),
            ("min_read", min_read.into()),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_rebuild_copies_one_replica() {
        let c = rebuild_charge(RedundancyScheme::Replication { k: 3 }, 6.0, false);
        assert_eq!(c.read_gb, 6.0);
        assert_eq!(c.encode_gb, 0.0);
        assert_eq!(c.write_gb, 6.0);
        assert_eq!(c.encode_s(0.05), 0.0);
    }

    #[test]
    fn ec_rebuild_charges_k_times_read_volume() {
        let c = rebuild_charge(RedundancyScheme::ErasureCoded { k: 4, m: 2 }, 6.0, false);
        // k = 4 survivors, 1.5 GB each: 6 GB read to rebuild a 1.5 GB shard.
        assert!((c.read_gb - 6.0).abs() < 1e-12);
        assert_eq!(c.encode_gb, 6.0);
        assert!((c.write_gb - 1.5).abs() < 1e-12);
        assert!((c.encode_s(0.05) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn origin_rebuild_ships_one_shard() {
        let c = rebuild_charge(RedundancyScheme::ErasureCoded { k: 4, m: 2 }, 6.0, true);
        assert!((c.read_gb - 1.5).abs() < 1e-12);
        assert_eq!(c.encode_gb, 6.0);
    }

    #[test]
    fn k1_erasure_rebuild_matches_replication_bitwise() {
        let ec = rebuild_charge(RedundancyScheme::ErasureCoded { k: 1, m: 2 }, 4.7, false);
        let rep = rebuild_charge(RedundancyScheme::Replication { k: 3 }, 4.7, false);
        assert_eq!(ec.read_gb.to_bits(), rep.read_gb.to_bits());
        assert_eq!(ec.encode_gb.to_bits(), rep.encode_gb.to_bits());
        assert_eq!(ec.write_gb.to_bits(), rep.write_gb.to_bits());
    }

    #[test]
    fn rebuild_read_is_conserved_per_lost_shard() {
        // The scrub-conservation property the integration tests pin: each
        // rebuilt shard is charged exactly min_read × its shard volume
        // when rebuilt from survivors, never more.
        for (k, m) in [(2usize, 1usize), (4, 2), (8, 3)] {
            let scheme = RedundancyScheme::ErasureCoded { k, m };
            let size = 7.3;
            let c = rebuild_charge(scheme, size, false);
            assert!(
                (c.read_gb - k as f64 * scheme.shard_gb(size)).abs() < 1e-12,
                "k={k} m={m}"
            );
            assert!(c.write_gb <= c.read_gb + 1e-12);
        }
    }

    #[test]
    fn scrub_and_degraded_notes_do_not_panic() {
        // Registry + trace plumbing smoke: counters register and the
        // event paths run with tracing disabled.
        note_scrub(
            12.5,
            &ScrubOutcome {
                datasets_scanned: 10,
                shards_lost: 3,
                rebuilds_planned: 2,
                read_gb: 9.0,
                encode_gb: 6.0,
            },
        );
        note_degraded_read(13.0, 4, 5, 6, 4);
        note_scrub(14.0, &ScrubOutcome::default());
    }
}
