//! `edgerep` — generate, inspect and solve placement instances from the
//! command line.
//!
//! ```text
//! edgerep gen --seed 7 --network-size 60 --k 3 -o instance.json
//! edgerep inspect -i instance.json
//! edgerep solve -i instance.json --alg appro-g
//! edgerep solve -i instance.json --alg all
//! edgerep solve -i instance.json --alg appro-g --trace out.ndjson --stats
//! ```
//!
//! Instance files are the JSON encoding of
//! [`edgerep_model::spec::InstanceSpec`], so hand-written and generated
//! instances go through the same validation.
//!
//! `--trace FILE` enables every observability target and streams NDJSON
//! trace events (span timings, admission summaries, registry dumps) to
//! `FILE`; `--stats` prints the metric-registry summary table per
//! algorithm after its run (span timings get their own section with
//! p50/p95 columns); `--profile FILE` writes the solve's folded span
//! stacks to `FILE` and prints the self-time call-tree table.

use edgerep_core::{
    appro::{ApproG, ApproS},
    centroid::Centroid,
    graphpart::GraphPartition,
    greedy::Greedy,
    online::OnlineAppro,
    optimal::Optimal,
    popularity::Popularity,
    repair, BoxedAlgorithm,
};
use edgerep_model::spec::InstanceSpec;
use edgerep_model::{Instance, Metrics};
use edgerep_obs as obs;
use edgerep_shard::{ShardConfig, ShardedSolver};
use edgerep_testbed::analytics::AnalyticsKind;
use edgerep_testbed::geo::Region;
use edgerep_testbed::{
    run_testbed, ChunkedConfig, FaultPlan, SimConfig, TestbedWorld, TransferModel,
};
use edgerep_workload::{generate_instance, WorkloadParams};

const USAGE: &str = "usage:
  edgerep gen [--seed N] [--network-size N] [--f F] [--k K] [--queries LO HI]
              [--scale N] -o FILE
  edgerep inspect -i FILE
  edgerep solve -i FILE --alg NAME [--shards R] [--metrics-json] [--trace FILE]
                [--stats] [--profile FILE] [--fault-plan FILE]
                [--transfer p2p|chunked] [--chunk-gb G]
    NAME: appro-g | appro-s | greedy-g | graph-g | popularity-g | centroid |
          online | optimal | all
    --scale N     multiply the generated workload volume (query and dataset
                  count bounds) by N; the topology size is unchanged
    --shards R    partition the topology into R regions, solve shards in
                  parallel and reconcile the boundary (R <= 1 = global solve)
    --trace FILE  enable all observability targets and write NDJSON trace
                  events (span timings, admission summaries) to FILE
    --stats       print the metrics-registry summary table per algorithm
    --profile FILE  profile the span tree: folded stacks to FILE, sorted
                  self-time table to stdout
    --fault-plan FILE  load a JSON fault plan and report the admitted
                  volume that statically survives the planned outages
    --transfer MODEL  additionally run the discrete-event testbed on the
                  solved instance under the chosen transfer engine (p2p =
                  legacy point-to-point, chunked = resumable multi-source)
                  and report the measured QoS
    --chunk-gb G  chunk size for --transfer chunked (default 0.25)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("solve") => cmd_solve(&args[1..]),
        Some("--help") | Some("-h") => println!("{USAGE}"),
        _ => die(USAGE),
    }
}

fn opt_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_or_die<T: std::str::FromStr>(s: &str, what: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("cannot parse {what}: '{s}'")))
}

fn cmd_gen(args: &[String]) {
    let seed: u64 = opt_value(args, "--seed").map_or(0, |s| parse_or_die(s, "--seed"));
    let mut params = WorkloadParams::default();
    if let Some(n) = opt_value(args, "--network-size") {
        params = params.with_network_size(parse_or_die(n, "--network-size"));
    }
    if let Some(f) = opt_value(args, "--f") {
        params = params.with_max_datasets_per_query(parse_or_die(f, "--f"));
    }
    if let Some(k) = opt_value(args, "--k") {
        params = params.with_max_replicas(parse_or_die(k, "--k"));
    }
    if let Some(s) = opt_value(args, "--scale") {
        let scale: usize = parse_or_die(s, "--scale");
        if scale == 0 {
            die("--scale needs a positive integer");
        }
        params = params.with_scale(scale);
    }
    if let Some(i) = args.iter().position(|a| a == "--queries") {
        let lo = args.get(i + 1).map(|s| parse_or_die(s, "--queries lo"));
        let hi = args.get(i + 2).map(|s| parse_or_die(s, "--queries hi"));
        match (lo, hi) {
            (Some(lo), Some(hi)) => params.query_count = (lo, hi),
            _ => die("--queries needs LO and HI"),
        }
    }
    let out = opt_value(args, "-o").unwrap_or_else(|| die("gen needs -o FILE"));
    let inst = generate_instance(&params, seed);
    let spec = InstanceSpec::from_instance(&inst);
    let json = serde_json::to_string_pretty(&spec).expect("spec serializes");
    std::fs::write(out, json).unwrap_or_else(|e| die(&format!("write {out}: {e}")));
    println!(
        "wrote {out}: {} nodes, {} datasets, {} queries, K = {}",
        inst.cloud().graph().node_count(),
        inst.datasets().len(),
        inst.queries().len(),
        inst.max_replicas()
    );
}

fn load_instance(args: &[String]) -> Instance {
    let path = opt_value(args, "-i").unwrap_or_else(|| die("need -i FILE"));
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
    let spec: InstanceSpec =
        serde_json::from_str(&json).unwrap_or_else(|e| die(&format!("parse {path}: {e}")));
    spec.to_instance()
        .unwrap_or_else(|e| die(&format!("invalid instance in {path}: {e}")))
}

fn cmd_inspect(args: &[String]) {
    let inst = load_instance(args);
    let cloud = inst.cloud();
    println!(
        "edge cloud: {} data centers, {} cloudlets, {} graph nodes, {} links",
        cloud.data_center_count(),
        cloud.cloudlet_count(),
        cloud.graph().node_count(),
        cloud.graph().edge_count()
    );
    println!(
        "compute: {:.1} GHz available total",
        cloud.total_available()
    );
    println!(
        "workload: {} datasets ({:.1} GB total), {} queries demanding {:.1} GB, K = {}",
        inst.datasets().len(),
        inst.datasets().iter().map(|d| d.size_gb).sum::<f64>(),
        inst.queries().len(),
        inst.total_demanded_volume(),
        inst.max_replicas()
    );
    if inst.queries().is_empty() {
        println!("deadlines: n/a (no queries)");
    } else {
        let tightest = inst
            .queries()
            .iter()
            .map(|q| q.deadline)
            .fold(f64::INFINITY, f64::min);
        let loosest = inst
            .queries()
            .iter()
            .map(|q| q.deadline)
            .fold(0.0, f64::max);
        println!("deadlines: {tightest:.3}s .. {loosest:.3}s");
    }
}

fn panel_for(name: &str, single_dataset: bool) -> Vec<BoxedAlgorithm> {
    match name {
        "appro-g" => vec![Box::new(ApproG::default())],
        "appro-s" => {
            if !single_dataset {
                die("appro-s requires a single-dataset instance; use appro-g");
            }
            vec![Box::new(ApproS::default())]
        }
        "greedy-g" => vec![Box::new(Greedy::general())],
        "graph-g" => vec![Box::new(GraphPartition::general())],
        "popularity-g" => vec![Box::new(Popularity::general())],
        "centroid" => vec![Box::new(Centroid)],
        "online" => vec![Box::new(OnlineAppro::default())],
        "optimal" => vec![Box::new(Optimal::default())],
        "all" => vec![
            Box::new(ApproG::default()),
            Box::new(Greedy::general()),
            Box::new(GraphPartition::general()),
            Box::new(Popularity::general()),
            Box::new(Centroid),
            Box::new(OnlineAppro::default()),
        ],
        other => die(&format!("unknown algorithm '{other}'\n{USAGE}")),
    }
}

/// Parses `--transfer p2p|chunked` (with an optional `--chunk-gb G` for
/// the chunked engine) into a [`TransferModel`].
fn parse_transfer(args: &[String]) -> Option<TransferModel> {
    let name = opt_value(args, "--transfer");
    if name.is_none() && opt_value(args, "--chunk-gb").is_some() {
        die("--chunk-gb needs --transfer chunked");
    }
    Some(match name? {
        "p2p" => {
            if opt_value(args, "--chunk-gb").is_some() {
                die("--chunk-gb only applies to --transfer chunked");
            }
            TransferModel::PointToPoint
        }
        "chunked" => {
            let mut cfg = ChunkedConfig::default();
            if let Some(g) = opt_value(args, "--chunk-gb") {
                let gb: f64 = parse_or_die(g, "--chunk-gb");
                if !gb.is_finite() || gb <= 0.0 {
                    die("--chunk-gb needs a positive number");
                }
                cfg.chunk_gb = gb;
            }
            TransferModel::Chunked(cfg)
        }
        other => die(&format!("unknown transfer model '{other}' (p2p|chunked)")),
    })
}

/// Wraps a plain instance as a [`TestbedWorld`] so `solve --transfer`
/// can drive the discrete-event simulator: query payloads and timing
/// come from the instance itself, so empty trace records and a default
/// analytics class per query are sufficient.
fn testbed_world_for(inst: &Instance) -> TestbedWorld {
    TestbedWorld {
        instance: inst.clone(),
        regions: vec![Region::Metro; inst.cloud().compute_count()],
        records: vec![Vec::new(); inst.datasets().len()],
        query_kinds: vec![AnalyticsKind::TopApps { k: 3 }; inst.queries().len()],
    }
}

fn cmd_solve(args: &[String]) {
    let inst = load_instance(args);
    let alg = opt_value(args, "--alg").unwrap_or("appro-g");
    let shards: usize = opt_value(args, "--shards").map_or(1, |s| parse_or_die(s, "--shards"));
    if shards == 0 {
        die("--shards needs a positive integer");
    }
    let transfer = parse_transfer(args);
    let fault_plan = if args.iter().any(|a| a == "--fault-plan") {
        let path =
            opt_value(args, "--fault-plan").unwrap_or_else(|| die("--fault-plan needs FILE"));
        let json =
            std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("read {path}: {e}")));
        let plan: FaultPlan =
            serde_json::from_str(&json).unwrap_or_else(|e| die(&format!("parse {path}: {e}")));
        plan.validate(inst.cloud().compute_count())
            .unwrap_or_else(|e| die(&format!("invalid fault plan in {path}: {e}")));
        Some(plan)
    } else {
        None
    };
    let as_json = args.iter().any(|a| a == "--metrics-json");
    let stats = args.iter().any(|a| a == "--stats");
    let trace = if args.iter().any(|a| a == "--trace") {
        Some(opt_value(args, "--trace").unwrap_or_else(|| die("--trace needs FILE")))
    } else {
        None
    };
    let profile = if args.iter().any(|a| a == "--profile") {
        Some(opt_value(args, "--profile").unwrap_or_else(|| die("--profile needs FILE")))
    } else {
        None
    };
    if stats || trace.is_some() {
        obs::enable_all();
    }
    if let Some(path) = trace {
        let file =
            std::fs::File::create(path).unwrap_or_else(|e| die(&format!("create {path}: {e}")));
        obs::set_trace_writer(Box::new(std::io::BufWriter::new(file)));
    }
    if profile.is_some() {
        obs::reset_profile();
        obs::enable_profiling();
    }
    let single = inst.queries().iter().all(|q| q.demands.len() == 1);
    let world = transfer.map(|_| testbed_world_for(&inst));
    let mut panel = panel_for(alg, single);
    if shards > 1 {
        // Wrap every panel entry in the sharded regional solver: the
        // boxed algorithm is itself a PlacementAlgorithm, so the wrapper
        // composes without unboxing.
        panel = panel
            .into_iter()
            .map(|inner| -> BoxedAlgorithm {
                Box::new(ShardedSolver::new(
                    inner,
                    ShardConfig {
                        regions: shards,
                        reconcile: true,
                    },
                ))
            })
            .collect();
    }
    for algorithm in panel {
        // Each algorithm starts from a clean registry so its --stats table
        // and registry dump reflect this run alone.
        obs::reset_registry();
        let sol = algorithm.solve(&inst);
        sol.validate(&inst).unwrap_or_else(|e| {
            die(&format!(
                "{} produced an infeasible solution: {e:?}",
                algorithm.name()
            ))
        });
        let metrics = Metrics::of(&inst, &sol);
        if as_json {
            let line = serde_json::json!({
                "algorithm": algorithm.name(),
                "metrics": metrics,
            });
            println!("{line}");
        } else {
            println!("{:>14}: {}", algorithm.name(), metrics);
        }
        if let Some(plan) = &fault_plan {
            // Worst-case static survival: every node with an outage window
            // anywhere in the plan is treated as lost, and a query survives
            // only if each of its serving nodes is up or a live replica can
            // still meet its deadline. The testbed (`repro ext-availability
            // --fault-plan`) gives the dynamic picture with repair.
            let mut alive = vec![true; inst.cloud().compute_count()];
            for o in &plan.node_outages {
                alive[o.node.index()] = false;
            }
            let surviving = repair::surviving_volume(&inst, &sol, &alive);
            let admitted = sol.admitted_volume(&inst);
            let share = if admitted > 0.0 {
                surviving / admitted
            } else {
                1.0
            };
            println!(
                "{:>14}  fault survival: {:.1} / {:.1} GB admitted volume ({:.0}%), {} node(s) faulted",
                "", surviving, admitted, share * 100.0,
                plan.node_outages.len()
            );
        }
        if let (Some(model), Some(world)) = (transfer, &world) {
            // A/B the transfer engines on the solved instance: one
            // measured discrete-event run under the chosen model.
            let label = match model {
                TransferModel::PointToPoint => "p2p".to_owned(),
                TransferModel::Chunked(c) => format!("chunked/{} GB", c.chunk_gb),
            };
            let sim = SimConfig {
                transfer: model,
                ..Default::default()
            };
            let report = run_testbed(algorithm.as_ref(), world, &sim);
            println!(
                "{:>14}  testbed[{label}]: measured {:.1} of {:.1} GB planned, \
                 mean {:.3} s, p95 {:.3} s, replication {:.1} GB in {:.1} s",
                "",
                report.measured_volume,
                report.planned_volume,
                report.mean_response_s,
                report.p95_response_s,
                report.replication_gb,
                report.replication_time_s
            );
        }
        if trace.is_some() {
            // Per-run counter values (e.g. `admission.reject.*`) and
            // span-timing histograms appear in the file even when no
            // individual event carried them.
            obs::dump_registry("algorithm", algorithm.name());
        }
        if stats {
            println!("--- metrics: {} ---", algorithm.name());
            print!("{}", obs::render_summary());
        }
    }
    if let Some(path) = profile {
        obs::disable_profiling();
        let prof = obs::take_profile();
        std::fs::write(path, obs::render_folded(&prof))
            .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        print!("{}", obs::render_self_table(&prof));
        println!("[folded stacks written to {path}]");
        let top = prof.top_self().map(|n| n.name.clone()).unwrap_or_default();
        obs::emit(
            "profile",
            "profile",
            "profile.dump",
            &[("nodes", prof.nodes.len().into()), ("top_self", top.into())],
        );
    }
    if trace.is_some() {
        obs::take_trace_writer(); // flush and close the NDJSON sink
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}
