//! `repro` — regenerate the paper's figures.
//!
//! ```text
//! repro all                # every figure at the paper's 15 seeds
//! repro fig2 fig5          # a subset
//! repro fig4 --seeds 30    # more repetitions
//! repro all --quick        # 3 seeds (CI smoke run)
//! repro all --csv out/     # additionally write CSV files
//! repro fig8 --trace t.ndjson  # NDJSON trace of the whole regeneration
//! ```
//!
//! `--trace FILE` streams the same NDJSON events `edgerep solve --trace`
//! produces (span timings, scheduler progress, admission summaries) to
//! `FILE`, closing each figure with a registry dump so the file ends in a
//! `dump.done` line for the last figure regenerated.
//!
//! `--profile FILE` turns on the span-tree profiler for the whole run:
//! folded stacks (`path self_us`, flamegraph-ready) go to `FILE` and the
//! sorted self-time table is printed after the figures.

use std::io::Write as _;

use edgerep_exp::figures;
use edgerep_exp::plot::{figure_to_svg, Panel, PlotStyle};
use edgerep_exp::report::{render_csv, render_markdown, render_metrics_csv, render_text};
use edgerep_exp::{extensions, FigureData};
use edgerep_obs as obs;
use edgerep_testbed::FaultPlan;

/// Usage text derived from the id registries, so adding a figure to
/// `FIGURE_IDS`/`EXT_IDS` can never desync the help text (guarded by the
/// `usage_lists_every_figure_id` test below).
fn usage() -> String {
    let ids: Vec<&str> = figures::FIGURE_IDS
        .iter()
        .chain(["all"].iter())
        .chain(extensions::EXT_IDS.iter())
        .chain(["ext"].iter())
        .copied()
        .collect();
    format!(
        "usage: repro [{}]... \
[--seeds N] [--quick] [--csv DIR] [--svg DIR] [--md DIR] [--fault-plan FILE] [--storm] \
[--trace FILE] [--profile FILE]
    --storm         run ext-availability / ext-ec under correlated region
                    failure storms instead of independent MTBF/MTTR faults
    --trace FILE    enable all observability targets and write NDJSON trace
                    events to FILE, ending each figure with a registry dump
    --profile FILE  profile the run's span tree: folded stacks to FILE,
                    self-time table to stdout",
        ids.join("|")
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figures_wanted: Vec<String> = Vec::new();
    let mut seeds = edgerep_workload::presets::TOPOLOGIES_PER_POINT;
    let mut csv_dir: Option<String> = None;
    let mut svg_dir: Option<String> = None;
    let mut md_dir: Option<String> = None;
    let mut fault_plan: Option<FaultPlan> = None;
    let mut storm = false;
    let mut trace_path: Option<String> = None;
    let mut profile_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                i += 1;
                seeds = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seeds needs a positive integer"));
                if seeds == 0 {
                    die("--seeds needs a positive integer")
                }
            }
            "--quick" => seeds = 3,
            "--csv" => {
                i += 1;
                csv_dir = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--csv needs a directory")),
                );
            }
            "--svg" => {
                i += 1;
                svg_dir = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--svg needs a directory")),
                );
            }
            "--md" => {
                i += 1;
                md_dir = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--md needs a directory")),
                );
            }
            "--fault-plan" => {
                i += 1;
                let path = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| die("--fault-plan needs a JSON file"));
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| die(&format!("read {path}: {e}")));
                let plan: FaultPlan = serde_json::from_str(&text)
                    .unwrap_or_else(|e| die(&format!("parse {path}: {e}")));
                fault_plan = Some(plan);
            }
            "--storm" => storm = true,
            "--trace" => {
                i += 1;
                trace_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--trace needs a FILE")),
                );
            }
            "--profile" => {
                i += 1;
                profile_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--profile needs a FILE")),
                );
            }
            "all" => figures_wanted.extend(figures::FIGURE_IDS.iter().map(|s| s.to_string())),
            "ext" => figures_wanted.extend(extensions::EXT_IDS.iter().map(|s| s.to_string())),
            // Figure ids resolve against the same registries the usage
            // text is built from — a new id is dispatchable the moment
            // it joins FIGURE_IDS / EXT_IDS.
            f if figures::FIGURE_IDS.contains(&f) || extensions::EXT_IDS.contains(&f) => {
                figures_wanted.push(f.to_owned())
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return;
            }
            other => die(&format!("unknown argument '{other}'\n{}", usage())),
        }
        i += 1;
    }
    if figures_wanted.is_empty() {
        die(&usage());
    }
    figures_wanted.dedup();

    // With --csv, runner/parallel span timings and admission-reject
    // counters are captured per figure and written as a metrics sidecar
    // next to the figure data. No trace writer is installed, so enabling
    // the targets only turns on the registry instrumentation. --trace
    // supersedes the filter: every target streams NDJSON to FILE — the
    // same sink `edgerep solve --trace` uses.
    if let Some(path) = &trace_path {
        obs::enable_all();
        let file =
            std::fs::File::create(path).unwrap_or_else(|e| die(&format!("create {path}: {e}")));
        obs::set_trace_writer(Box::new(std::io::BufWriter::new(file)));
    } else if csv_dir.is_some() {
        obs::set_filter("runner,parallel,sim");
    }
    // Profiling is orthogonal to tracing: spans feed the aggregator even
    // when their targets are disabled, so `--profile` alone is cheap.
    if profile_path.is_some() {
        obs::reset_profile();
        obs::enable_profiling();
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for fig in &figures_wanted {
        obs::reset_registry();
        let data = match fig.as_str() {
            "fig1" => {
                let _ = writeln!(out, "{}", figures::fig1_text());
                if trace_path.is_some() {
                    // Topology figures run no algorithms; the (empty)
                    // dump still marks the figure boundary in the trace.
                    obs::dump_registry("figure", "fig1");
                }
                continue;
            }
            "fig6" => {
                let _ = writeln!(out, "{}", figures::fig6_text());
                if trace_path.is_some() {
                    obs::dump_registry("figure", "fig6");
                }
                continue;
            }
            "fig2" => figures::fig2(seeds),
            "ext-online" => extensions::ext_online(seeds),
            "ext-netbenefit" => extensions::ext_net_benefit(seeds),
            "ext-refine" => extensions::ext_refine(seeds),
            "ext-topology" => extensions::ext_topology(seeds),
            "ext-faults" => extensions::ext_faults(seeds),
            "ext-rolling" => extensions::ext_rolling(seeds),
            "ext-forecast" => extensions::ext_forecast(seeds),
            "ext-ec" => {
                if storm {
                    extensions::ext_ec_storm(seeds)
                } else {
                    extensions::ext_ec(seeds)
                }
            }
            "ext-shard" => extensions::ext_shard(seeds),
            "ext-availability" => match (&fault_plan, storm) {
                (Some(_), true) => die("--storm and --fault-plan are mutually exclusive"),
                (Some(plan), false) => extensions::ext_availability_with_plan(seeds, plan),
                (None, true) => extensions::ext_availability_storm(seeds),
                (None, false) => extensions::ext_availability(seeds),
            },
            "fig3" => figures::fig3(seeds),
            "fig4" => figures::fig4(seeds),
            "fig5" => figures::fig5(seeds),
            "fig7" => figures::fig7(seeds),
            "fig8" => figures::fig8(seeds),
            _ => unreachable!("validated above"),
        };
        if trace_path.is_some() {
            // Counter totals and span-timing histograms (including
            // `parallel.utilization`) for this figure's whole grid; the
            // closing `dump.done` line marks the figure as complete.
            obs::dump_registry("figure", &data.id);
        }
        let _ = writeln!(out, "{}", render_text(&data));
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("mkdir {dir}: {e}")));
            let path = format!("{dir}/{}.csv", data.id);
            std::fs::write(&path, render_csv(&data))
                .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
            let _ = writeln!(out, "[csv written to {path}]");
            let mpath = format!("{dir}/{}_metrics.csv", data.id);
            std::fs::write(&mpath, render_metrics_csv(&obs::snapshot()))
                .unwrap_or_else(|e| die(&format!("write {mpath}: {e}")));
            let _ = writeln!(out, "[metrics csv written to {mpath}]\n");
            if let Some(ts) = &data.timeseries {
                let tpath = format!("{dir}/{}_timeseries.csv", data.id);
                std::fs::write(&tpath, ts).unwrap_or_else(|e| die(&format!("write {tpath}: {e}")));
                let _ = writeln!(out, "[timeseries csv written to {tpath}]\n");
            }
        }
        if let Some(dir) = &svg_dir {
            write_svgs(&data, dir, &mut out);
        }
        if let Some(dir) = &md_dir {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("mkdir {dir}: {e}")));
            let path = format!("{dir}/{}.md", data.id);
            std::fs::write(&path, render_markdown(&data))
                .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
            let _ = writeln!(out, "[markdown written to {path}]\n");
        }
    }
    if let Some(path) = &profile_path {
        obs::disable_profiling();
        let profile = obs::take_profile();
        std::fs::write(path, obs::render_folded(&profile))
            .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        let _ = writeln!(out, "{}", obs::render_self_table(&profile));
        let _ = writeln!(out, "[folded stacks written to {path}]");
        // Under --trace the dump also lands in the NDJSON stream, so
        // automation can grep `profile.dump` instead of parsing stdout.
        let top = profile
            .top_self()
            .map(|n| n.name.clone())
            .unwrap_or_default();
        obs::emit(
            "profile",
            "profile",
            "profile.dump",
            &[
                ("nodes", profile.nodes.len().into()),
                ("top_self", top.into()),
            ],
        );
    }
    if trace_path.is_some() {
        obs::take_trace_writer(); // flush and close the NDJSON sink
    }
}

fn write_svgs(data: &FigureData, dir: &str, out: &mut impl std::io::Write) {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("mkdir {dir}: {e}")));
    let style = PlotStyle::default();
    for panel in [Panel::Volume, Panel::Throughput] {
        let path = format!("{dir}/{}_{}.svg", data.id, panel.suffix());
        std::fs::write(&path, figure_to_svg(data, panel, &style))
            .unwrap_or_else(|e| die(&format!("write {path}: {e}")));
        let _ = writeln!(out, "[svg written to {path}]");
    }
    let _ = writeln!(out);
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drift guard: every dispatchable figure id (and the two set
    /// aliases) appears verbatim in the usage text.
    #[test]
    fn usage_lists_every_figure_id() {
        let text = usage();
        for id in figures::FIGURE_IDS
            .iter()
            .chain(extensions::EXT_IDS.iter())
            .chain(["all", "ext"].iter())
        {
            assert!(text.contains(id), "usage text is missing '{id}'");
        }
    }

    /// The id registries and the usage text agree on counts: no id is
    /// listed twice, none is smuggled in outside the registries.
    #[test]
    fn usage_has_no_duplicate_ids() {
        let text = usage();
        let inside = text
            .split('[')
            .nth(1)
            .and_then(|s| s.split(']').next())
            .expect("usage has an [id|...] block");
        let ids: Vec<&str> = inside.split('|').collect();
        assert_eq!(
            ids.len(),
            figures::FIGURE_IDS.len() + extensions::EXT_IDS.len() + 2,
            "usage id list drifted from FIGURE_IDS/EXT_IDS: {ids:?}"
        );
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "duplicate id in usage: {ids:?}");
    }
}
