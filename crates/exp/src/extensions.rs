//! Extension experiments beyond the paper's figures.
//!
//! * [`ext_net_benefit`] — the paper motivates the replica budget `K` with
//!   the cost of keeping replicas consistent but never quantifies the
//!   trade-off. This driver sweeps `K` on the testbed with dynamic data
//!   (§2.4 updates firing) and reports the *net benefit*
//!   `admitted volume − γ · consistency traffic`, exposing the optimal
//!   budget per consistency-cost weight `γ`.
//! * [`ext_online`] — compares the offline `Appro-G` (all queries known)
//!   with the online controller (`Online-Appro`, arrivals committed one at
//!   a time) across admission thresholds: the price the system pays for
//!   not knowing the future.

use edgerep_core::appro::ApproG;
use edgerep_core::graphpart::GraphPartition;
use edgerep_core::greedy::Greedy;
use edgerep_core::online::{OnlineAppro, OnlineConfig};
use edgerep_core::refine::Refined;
use edgerep_core::{BoxedAlgorithm, PlacementAlgorithm};
use edgerep_forecast::ForecasterKind;
use edgerep_testbed::rolling::{run_rolling, ReplanPolicy, RollingConfig};
use edgerep_testbed::{
    render_slo_csv, run_testbed, run_testbed_with_faults, try_run_testbed_with_plan,
    ChunkedConfig, ConsistencyConfig, FaultConfig, FaultPlan, NodeFailure, SimConfig, SloSample,
    TestbedConfig, TransferModel,
};
use edgerep_model::RedundancyScheme;
use edgerep_shard::{ShardConfig, ShardedSolver};
use edgerep_workload::params::TopologyModel;
use edgerep_workload::{generate_instance, WorkloadParams};

use std::sync::OnceLock;
use std::time::Instant;

use crate::figures::{FigureData, FigureRow};
use crate::parallel::par_map;
use crate::runner::{run_grid, AlgResult};
use crate::stats::Summary;

/// Every extension figure id — the `repro ext` set.
pub const EXT_IDS: [&str; 10] = [
    "ext-online",
    "ext-netbenefit",
    "ext-refine",
    "ext-topology",
    "ext-faults",
    "ext-rolling",
    "ext-availability",
    "ext-forecast",
    "ext-ec",
    "ext-shard",
];

/// Consistency-cost weights γ reported by [`ext_net_benefit`].
pub const GAMMA_VALUES: [f64; 3] = [0.0, 0.5, 2.0];

/// Net-benefit sweep over `K` on the dynamic testbed.
///
/// Returns one figure whose "algorithms" are the γ values: series
/// `net(γ) = measured volume − γ · consistency GB` per `K`.
pub fn ext_net_benefit(seeds: usize) -> FigureData {
    assert!(seeds >= 1);
    let ks = [1usize, 2, 3, 4, 5, 6, 7];
    // One flat K × seed task list (105 cells at the paper's 15 seeds)
    // instead of 7 sequential 15-wide batches. Volume and consistency
    // traffic per cell; rows come back in K-major order.
    let per_k: Vec<Vec<(f64, f64)>> = run_grid(ks.len(), seeds, |ki, seed| {
        let seed = seed as u64;
        let cfg = TestbedConfig::default().with_max_replicas(ks[ki]);
        let world = edgerep_testbed::build_testbed_instance(&cfg, seed);
        let sim = SimConfig {
            seed,
            arrival_rate_per_s: 0.2,
            consistency: Some(ConsistencyConfig {
                growth_gb_per_hour: 30.0,
                threshold: 0.05,
                check_interval_s: 20.0,
            }),
            ..Default::default()
        };
        let report = run_testbed(&ApproG::default(), &world, &sim);
        (report.measured_volume, report.consistency_gb)
    });
    let rows = ks
        .iter()
        .zip(&per_k)
        .map(|(&k, samples)| {
            let results = GAMMA_VALUES
                .iter()
                .map(|&gamma| {
                    let nets: Vec<f64> = samples
                        .iter()
                        .map(|&(vol, cons)| vol - gamma * cons)
                        .collect();
                    let fraction_cost: Vec<f64> = samples
                        .iter()
                        .map(|&(vol, cons)| if vol > 0.0 { cons / vol } else { 0.0 })
                        .collect();
                    AlgResult {
                        name: format!("net benefit (γ={gamma})"),
                        volume: Summary::of(&nets),
                        throughput: Summary::of(&fraction_cost),
                    }
                })
                .collect();
            FigureRow {
                x: k as f64,
                results,
            }
        })
        .collect();
    FigureData {
        id: "ext-netbenefit".to_owned(),
        title: "Extension: net benefit of the replica budget under §2.4 consistency updates \
                (volume − γ·consistency GB; panel (b) shows consistency GB per admitted GB)"
            .to_owned(),
        x_label: "K".to_owned(),
        rows,
        timeseries: None,
    }
}

/// Online-vs-offline sweep over the admission threshold.
pub fn ext_online(seeds: usize) -> FigureData {
    assert!(seeds >= 1);
    let thresholds = [0.25f64, 0.5, 1.0, 2.0, f64::INFINITY];
    let params = WorkloadParams::default();
    // The instance at a given seed is threshold-independent, so the flat
    // threshold × seed grid memoizes generation per seed — every
    // threshold competes on the identical instance, built once.
    let instances: Vec<OnceLock<edgerep_model::Instance>> =
        (0..seeds).map(|_| OnceLock::new()).collect();
    let per_thr: Vec<Vec<(f64, f64, f64, f64)>> = run_grid(thresholds.len(), seeds, |ti, seed| {
        let inst = instances[seed].get_or_init(|| generate_instance(&params, seed as u64));
        let online = OnlineAppro::with_config(OnlineConfig {
            admission_threshold: thresholds[ti],
            ..Default::default()
        })
        .run(inst);
        let offline = ApproG::default().solve(inst);
        (
            online.solution.admitted_volume(inst),
            online.solution.throughput(inst),
            offline.admitted_volume(inst),
            offline.throughput(inst),
        )
    });
    let rows = thresholds
        .iter()
        .zip(&per_thr)
        .map(|(&thr, samples)| {
            let pick = |f: fn(&(f64, f64, f64, f64)) -> f64| -> Vec<f64> {
                samples.iter().map(f).collect()
            };
            FigureRow {
                x: if thr.is_finite() { thr } else { 99.0 },
                results: vec![
                    AlgResult {
                        name: "Online-Appro".to_owned(),
                        volume: Summary::of(&pick(|s| s.0)),
                        throughput: Summary::of(&pick(|s| s.1)),
                    },
                    AlgResult {
                        name: "Appro-G (offline)".to_owned(),
                        volume: Summary::of(&pick(|s| s.2)),
                        throughput: Summary::of(&pick(|s| s.3)),
                    },
                ],
            }
        })
        .collect();
    FigureData {
        id: "ext-online".to_owned(),
        title: "Extension: online admission control vs the offline algorithm \
                (x = admission threshold; 99 = unbounded)"
            .to_owned(),
        x_label: "threshold".to_owned(),
        rows,
        timeseries: None,
    }
}

/// Refinement ablation: each simulation algorithm with and without the
/// local-search post-pass, at the paper-default configuration. The x axis
/// indexes the base algorithm (0 = Appro-G, 1 = Greedy-G, 2 = Graph-G);
/// panel columns are base vs refined.
pub fn ext_refine(seeds: usize) -> FigureData {
    assert!(seeds >= 1);
    let panel: Vec<BoxedAlgorithm> = vec![
        Box::new(ApproG::default()),
        Box::new(Refined::new(ApproG::default(), "Appro-G+refine")),
        Box::new(Greedy::general()),
        Box::new(Refined::new(Greedy::general(), "Greedy-G+refine")),
        Box::new(GraphPartition::general()),
        Box::new(Refined::new(GraphPartition::general(), "Graph-G+refine")),
    ];
    let params = WorkloadParams::default();
    let rows = vec![FigureRow {
        x: 0.0,
        results: crate::runner::run_simulation_point(&params, &panel, seeds),
    }];
    FigureData {
        id: "ext-refine".to_owned(),
        title: "Extension: local-search refinement on top of each algorithm                 (paper-default workload; one row, base vs +refine columns)"
            .to_owned(),
        x_label: "-".to_owned(),
        rows,
        timeseries: None,
    }
}

/// Topology-robustness check: the Fig. 3 panel on the paper's flat
/// GT-ITM model vs the transit-stub hierarchy (x = 0 flat, x = 1
/// transit-stub). The paper's ordering should hold on both.
pub fn ext_topology(seeds: usize) -> FigureData {
    assert!(seeds >= 1);
    let rows = [TopologyModel::FlatRandom, TopologyModel::TransitStub]
        .iter()
        .enumerate()
        .map(|(i, &topology)| {
            let params = WorkloadParams {
                topology,
                ..Default::default()
            };
            FigureRow {
                x: i as f64,
                results: crate::runner::run_simulation_point(
                    &params,
                    &edgerep_core::simulation_panel(),
                    seeds,
                ),
            }
        })
        .collect();
    FigureData {
        id: "ext-topology".to_owned(),
        title: "Extension: Fig. 3 panel across topology families                 (x = 0 flat GT-ITM, x = 1 transit-stub)"
            .to_owned(),
        x_label: "topology".to_owned(),
        rows,
        timeseries: None,
    }
}

/// Fault-tolerance sweep: the busiest cloudlet VM fails at t = 0; measured
/// volume and throughput vs `K` quantify how replication buys
/// availability. Panel columns: fault-free vs faulty run of `Appro-G`.
pub fn ext_faults(seeds: usize) -> FigureData {
    assert!(seeds >= 1);
    let ks = [1usize, 2, 3, 4, 5];
    // One flat K × seed grid; each cell runs the clean and the faulty
    // arm back to back so both see the same world.
    let per_k: Vec<Vec<((f64, f64), (f64, f64))>> = run_grid(ks.len(), seeds, |ki, seed| {
        let seed = seed as u64;
        let cfg = TestbedConfig::default().with_max_replicas(ks[ki]);
        let world = edgerep_testbed::build_testbed_instance(&cfg, seed);
        let sim = SimConfig {
            seed,
            ..Default::default()
        };
        let clean = run_testbed(&ApproG::default(), &world, &sim);
        // Kill the cloudlet the clean plan leans on hardest.
        let loads = clean.plan.node_loads(&world.instance);
        let busiest = loads
            .iter()
            .enumerate()
            .skip(4) // the four DC VMs
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
            .map(|(i, _)| edgerep_model::ComputeNodeId(i as u32))
            .expect("testbed has cloudlets");
        let faulty = run_testbed_with_faults(
            &ApproG::default(),
            &world,
            &sim,
            &[NodeFailure {
                node: busiest,
                at_s: 0.0,
            }],
        );
        (
            (clean.measured_volume, clean.measured_throughput),
            (faulty.measured_volume, faulty.measured_throughput),
        )
    });
    let rows = ks
        .iter()
        .zip(&per_k)
        .map(|(&k, samples)| {
            let results = vec![
                AlgResult {
                    name: "Appro-G (fault-free)".to_owned(),
                    volume: Summary::of(&samples.iter().map(|s| s.0 .0).collect::<Vec<_>>()),
                    throughput: Summary::of(&samples.iter().map(|s| s.0 .1).collect::<Vec<_>>()),
                },
                AlgResult {
                    name: "Appro-G (busiest VM down)".to_owned(),
                    volume: Summary::of(&samples.iter().map(|s| s.1 .0).collect::<Vec<_>>()),
                    throughput: Summary::of(&samples.iter().map(|s| s.1 .1).collect::<Vec<_>>()),
                },
            ];
            FigureRow {
                x: k as f64,
                results,
            }
        })
        .collect();
    FigureData {
        id: "ext-faults".to_owned(),
        title: "Extension: availability under a busiest-VM failure                 (measured, failover enabled; more replicas = smaller gap)"
            .to_owned(),
        x_label: "K".to_owned(),
        rows,
        timeseries: None,
    }
}

/// The MTBF/MTTR profile [`ext_availability`] sweeps: heavy transient
/// trouble (each fault-prone node spends roughly 40% of the run down)
/// so repair has something to repair within the testbed's ~150 s query
/// horizon.
fn availability_fault_profile(fraction: f64, seed: u64) -> FaultConfig {
    FaultConfig {
        node_mtbf_s: 40.0,
        node_mttr_s: 30.0,
        ..Default::default()
    }
    .with_node_fraction(fraction)
    .with_seed(seed)
}

/// The three transfer/repair arms every availability figure compares:
/// no repair, point-to-point repair (the legacy engine), and chunked
/// resumable multi-source repair. `(label, repair on, chunked engine)`.
const AVAIL_ARMS: [(&str, bool, bool); 3] = [
    ("no-repair", false, false),
    ("repair", true, false),
    ("repair+chunked", true, true),
];

fn arm_transfer(chunked: bool) -> TransferModel {
    if chunked {
        TransferModel::Chunked(ChunkedConfig::default())
    } else {
        TransferModel::PointToPoint
    }
}

/// Measured volume and availability for one (world, plan, arm) cell.
/// The plain availability figure keeps NIC contention off so the
/// point-to-point and chunked engines run the same uncontended physics
/// and differ only in how they survive faults (with no faults they are
/// byte-identical — pinned in tests); the storm figure turns it on so
/// flows last long enough for correlated bursts to catch them mid-air.
fn availability_cell(
    world: &edgerep_testbed::TestbedWorld,
    plan: &FaultPlan,
    seed: u64,
    repair: bool,
    transfer: TransferModel,
    nic_contention: bool,
) -> (f64, f64) {
    let sim = SimConfig {
        seed,
        repair,
        transfer,
        nic_contention,
        ..Default::default()
    };
    let report = try_run_testbed_with_plan(&ApproG::default(), world, &sim, plan)
        .expect("generated fault plans validate");
    (report.measured_volume, report.availability)
}

/// All three [`AVAIL_ARMS`] for one (world, plan) cell.
fn availability_cells(
    world: &edgerep_testbed::TestbedWorld,
    plan: &FaultPlan,
    seed: u64,
    nic_contention: bool,
) -> [(f64, f64); 3] {
    AVAIL_ARMS.map(|(_, repair, chunked)| {
        availability_cell(world, plan, seed, repair, arm_transfer(chunked), nic_contention)
    })
}

/// Blast-radius grouping of the Fig. 6 testbed for correlated storms:
/// each DC VM (nodes 0–3) is its own region; the 16 cloudlets form
/// four metro "racks" of four (nodes 4–7, 8–11, 12–15, 16–19).
fn testbed_storm_regions(nodes: usize) -> Vec<u32> {
    (0..nodes)
        .map(|i| {
            if i < 4 {
                i as u32
            } else {
                4 + ((i - 4) / 4) as u32
            }
        })
        .collect()
}

/// Availability sweep: measured volume (panel a) and availability — the
/// fraction of planned-admitted queries not lost to faults — (panel b)
/// vs the fraction of fault-prone nodes, for K ∈ {1..4} with controller
/// repair off and on. Faults are MTBF/MTTR transient outages from
/// [`FaultConfig`]; the same seeded plan is used for both repair arms,
/// so the on/off gap is pure repair benefit.
pub fn ext_availability(seeds: usize) -> FigureData {
    assert!(seeds >= 1);
    let fractions = [0.0f64, 0.1, 0.2, 0.4];
    let ks = [1usize, 2, 3, 4];
    // The full fraction × K × seed cube as ONE flat task list (240 cells
    // at the paper's 15 seeds). A world depends only on (K, seed), so it
    // is memoized across the fraction axis: whichever cell reaches a
    // (K, seed) slot first builds it, every fraction reuses it.
    let worlds: Vec<OnceLock<edgerep_testbed::TestbedWorld>> =
        (0..ks.len() * seeds).map(|_| OnceLock::new()).collect();
    let tasks: Vec<(usize, usize, usize)> = (0..fractions.len())
        .flat_map(|fi| (0..ks.len()).flat_map(move |ki| (0..seeds).map(move |s| (fi, ki, s))))
        .collect();
    let flat: Vec<[(f64, f64); 3]> = par_map(&tasks, |&(fi, ki, s)| {
        let seed = s as u64;
        let world = worlds[ki * seeds + s].get_or_init(|| {
            let cfg = TestbedConfig::default().with_max_replicas(ks[ki]);
            edgerep_testbed::build_testbed_instance(&cfg, seed)
        });
        let plan = availability_fault_profile(fractions[fi], seed)
            .generate(world.instance.cloud().compute_count());
        availability_cells(world, &plan, seed, false)
    });
    let rows = fractions
        .iter()
        .zip(flat.chunks(ks.len() * seeds))
        .map(|(&frac, frac_cells)| {
            let mut results = Vec::with_capacity(ks.len() * AVAIL_ARMS.len());
            for (&k, samples) in ks.iter().zip(frac_cells.chunks(seeds)) {
                for (ai, (label, _, _)) in AVAIL_ARMS.iter().enumerate() {
                    results.push(AlgResult {
                        name: format!("Appro-G K={k} {label}"),
                        volume: Summary::of(&samples.iter().map(|s| s[ai].0).collect::<Vec<_>>()),
                        throughput: Summary::of(
                            &samples.iter().map(|s| s[ai].1).collect::<Vec<_>>(),
                        ),
                    });
                }
            }
            FigureRow { x: frac, results }
        })
        .collect();
    // Trajectory sidecar: one seed-0 run per repair arm at the harshest
    // fault fraction, sampled every 30 simulated seconds, so the figure
    // also shows availability dipping at each outage and recovering
    // under repair instead of only the endpoint scalar.
    let timeseries = {
        let seed = 0u64;
        let cfg = TestbedConfig::default().with_max_replicas(3);
        let world = edgerep_testbed::build_testbed_instance(&cfg, seed);
        let plan = availability_fault_profile(*fractions.last().expect("non-empty"), seed)
            .generate(world.instance.cloud().compute_count());
        let series: Vec<(String, Vec<SloSample>)> = AVAIL_ARMS
            .iter()
            .map(|&(label, repair, chunked)| {
                let sim = SimConfig {
                    seed,
                    repair,
                    transfer: arm_transfer(chunked),
                    nic_contention: false,
                    slo_sample_interval_s: Some(30.0),
                    ..Default::default()
                };
                let report = try_run_testbed_with_plan(&ApproG::default(), &world, &sim, &plan)
                    .expect("generated fault plans validate");
                (label.to_owned(), report.slo_series)
            })
            .collect();
        Some(render_slo_csv(&series))
    };
    FigureData {
        id: "ext-availability".to_owned(),
        title: "Extension: availability under transient MTBF/MTTR node faults                 (panel (a) measured volume, panel (b) column reports availability;                 no repair vs p2p repair vs chunked repair per K)"
            .to_owned(),
        x_label: "fault fraction".to_owned(),
        rows,
        timeseries,
    }
}

/// [`ext_availability`] under a user-supplied [`FaultPlan`] instead of
/// generated ones (`repro --fault-plan`): x = K, repair off vs on.
pub fn ext_availability_with_plan(seeds: usize, fault_plan: &FaultPlan) -> FigureData {
    assert!(seeds >= 1);
    let ks = [1usize, 2, 3, 4];
    // One flat K × seed grid; all three arms share the cell's world.
    let per_k: Vec<Vec<[(f64, f64); 3]>> = run_grid(ks.len(), seeds, |ki, seed| {
        let seed = seed as u64;
        let cfg = TestbedConfig::default().with_max_replicas(ks[ki]);
        let world = edgerep_testbed::build_testbed_instance(&cfg, seed);
        availability_cells(&world, fault_plan, seed, false)
    });
    let rows = ks
        .iter()
        .zip(&per_k)
        .map(|(&k, samples)| {
            let results = AVAIL_ARMS
                .iter()
                .enumerate()
                .map(|(ai, (label, _, _))| AlgResult {
                    name: format!("Appro-G {label}"),
                    volume: Summary::of(&samples.iter().map(|s| s[ai].0).collect::<Vec<_>>()),
                    throughput: Summary::of(&samples.iter().map(|s| s[ai].1).collect::<Vec<_>>()),
                })
                .collect();
            FigureRow {
                x: k as f64,
                results,
            }
        })
        .collect();
    FigureData {
        id: "ext-availability".to_owned(),
        title: "Extension: availability under a user-supplied fault plan                 (x = K; no repair vs p2p repair vs chunked repair;                 panel (b) column reports availability)"
            .to_owned(),
        x_label: "K".to_owned(),
        rows,
        timeseries: None,
    }
}

/// The correlated failure-storm profile `repro ext-availability --storm`
/// sweeps: background MTBF noise on 30% of nodes (short transient
/// outages that park multi-chunk repairs and let them *resume*), plus
/// each storm taking 75% of one blast-radius region down within a 5 s
/// window and isolating the region's paths to the outside for an MTTR
/// that dwarfs the transfer retry budget — the *abandonment* path. One
/// run therefore exercises both ends of the chunked engine's
/// interruption spectrum.
fn availability_storm_profile(storms: usize, seed: u64) -> FaultConfig {
    FaultConfig {
        node_mtbf_s: 40.0,
        node_mttr_s: 30.0,
        ..Default::default()
    }
    .with_node_fraction(0.3)
    .with_storms(storms)
    .with_seed(seed)
}

/// Availability under correlated failure storms: x = storms per run,
/// K ∈ {1..4}, the three [`AVAIL_ARMS`] per K. Storms blast the Fig. 6
/// regions from [`testbed_storm_regions`], so a single event takes a
/// whole metro rack (or a DC VM) down and partitions it — unlike the
/// independent MTBF faults of [`ext_availability`], every in-flight
/// transfer touching the region dies at once. Cells run with NIC
/// contention enabled (unlike the plain figure) so flows are long
/// enough for bursts to catch them mid-air.
pub fn ext_availability_storm(seeds: usize) -> FigureData {
    assert!(seeds >= 1);
    let storm_counts = [0usize, 1, 2];
    let ks = [1usize, 2, 3, 4];
    let worlds: Vec<OnceLock<edgerep_testbed::TestbedWorld>> =
        (0..ks.len() * seeds).map(|_| OnceLock::new()).collect();
    let tasks: Vec<(usize, usize, usize)> = (0..storm_counts.len())
        .flat_map(|si| (0..ks.len()).flat_map(move |ki| (0..seeds).map(move |s| (si, ki, s))))
        .collect();
    let flat: Vec<[(f64, f64); 3]> = par_map(&tasks, |&(si, ki, s)| {
        let seed = s as u64;
        let world = worlds[ki * seeds + s].get_or_init(|| {
            let cfg = TestbedConfig::default().with_max_replicas(ks[ki]);
            edgerep_testbed::build_testbed_instance(&cfg, seed)
        });
        let nodes = world.instance.cloud().compute_count();
        let plan = availability_storm_profile(storm_counts[si], seed)
            .generate_with_regions(&testbed_storm_regions(nodes));
        availability_cells(world, &plan, seed, true)
    });
    let rows = storm_counts
        .iter()
        .zip(flat.chunks(ks.len() * seeds))
        .map(|(&count, count_cells)| {
            let mut results = Vec::with_capacity(ks.len() * AVAIL_ARMS.len());
            for (&k, samples) in ks.iter().zip(count_cells.chunks(seeds)) {
                for (ai, (label, _, _)) in AVAIL_ARMS.iter().enumerate() {
                    results.push(AlgResult {
                        name: format!("Appro-G K={k} {label}"),
                        volume: Summary::of(&samples.iter().map(|s| s[ai].0).collect::<Vec<_>>()),
                        throughput: Summary::of(
                            &samples.iter().map(|s| s[ai].1).collect::<Vec<_>>(),
                        ),
                    });
                }
            }
            FigureRow {
                x: count as f64,
                results,
            }
        })
        .collect();
    FigureData {
        id: "ext-availability".to_owned(),
        title: "Extension: availability under correlated region failure storms                 (x = storms per run; no repair vs p2p repair vs chunked repair;                 panel (b) column reports availability)"
            .to_owned(),
        x_label: "storms".to_owned(),
        rows,
        timeseries: None,
    }
}

/// The redundancy arms [`ext_ec`] compares: the paper's `K = 3` full
/// replication vs three erasure-coded stripings with shrinking storage
/// overhead (3.0× vs 1.5×, 1.5×, 1.375×) and growing holder fan-out
/// (3 vs 3, 6, 11 slots). `(label, scheme)`.
fn ec_arms() -> [(&'static str, RedundancyScheme); 4] {
    [
        (
            "Replication(3)",
            RedundancyScheme::replication(3).expect("valid scheme"),
        ),
        (
            "EC(2,1)",
            RedundancyScheme::erasure(2, 1).expect("valid scheme"),
        ),
        (
            "EC(4,2)",
            RedundancyScheme::erasure(4, 2).expect("valid scheme"),
        ),
        (
            "EC(8,3)",
            RedundancyScheme::erasure(8, 3).expect("valid scheme"),
        ),
    ]
}

/// Scrub cadence for the ext-ec cells: frequent enough that lost shards
/// are detected and rebuilt within the testbed's ~150 s query horizon.
const EC_SCRUB_INTERVAL_S: f64 = 20.0;

/// Shared ext-ec world: the default testbed, tilted so the
/// storage-for-fan-out tradeoff is actually load-bearing. Twice the
/// default query demand over half the datasets makes per-holder compute
/// the binding constraint, and with only `6 × K = 18` replica
/// placements over ~20 nodes, `Replication(3)` strands the compute of
/// every node that holds nothing — while a wide stripe's `k + m` slots
/// (11 for `EC(8,3)`) put a readable shard almost everywhere. Deadlines
/// are loosened so EC's shard-gather + decode overhead doesn't mask
/// that effect. Every arm shares the identical workload; only the
/// redundancy scheme differs.
fn ec_world_cfg(scheme: RedundancyScheme) -> TestbedConfig {
    TestbedConfig {
        query_count: 120,
        windows: 6,
        deadline_base: (2.0, 8.0),
        deadline_per_gb: (0.5, 1.5),
        ..TestbedConfig::default()
    }
    .with_redundancy(scheme)
}

/// One (scheme-world, fault-plan) ext-ec cell: `[measured volume,
/// availability, storage GB, mean response s, p95 response s,
/// degraded-read fraction]`. Runs over the chunked engine (degraded
/// reads fan shard gathers out through it) with the Background-tier
/// shard scrubber on and controller repair off, so reconstruction
/// traffic is the scrubber's alone.
fn ec_cell(
    world: &edgerep_testbed::TestbedWorld,
    plan: &FaultPlan,
    seed: u64,
    nic_contention: bool,
) -> [f64; 6] {
    let sim = SimConfig {
        seed,
        scrub_interval_s: Some(EC_SCRUB_INTERVAL_S),
        transfer: TransferModel::Chunked(ChunkedConfig::default()),
        nic_contention,
        ..Default::default()
    };
    let r = try_run_testbed_with_plan(&ApproG::default(), world, &sim, plan)
        .expect("generated fault plans validate");
    let degraded = if r.total_queries > 0 {
        r.degraded_reads as f64 / r.total_queries as f64
    } else {
        0.0
    };
    [
        r.measured_volume,
        r.availability,
        r.storage_gb,
        r.mean_response_s,
        r.p95_response_s,
        degraded,
    ]
}

/// Folds the flat (x × arm × seed) ext-ec cube into figure rows. Each
/// scheme contributes three columns: `(volume, availability)`,
/// `(storage GB, mean response s)`, `(p95 response s, degraded-read
/// fraction)` — the title documents the packing.
fn ec_rows(xs: &[f64], seeds: usize, flat: &[[f64; 6]]) -> Vec<FigureRow> {
    let arms = ec_arms();
    xs.iter()
        .zip(flat.chunks(arms.len() * seeds))
        .map(|(&x, x_cells)| {
            let mut results = Vec::with_capacity(arms.len() * 3);
            for ((label, _), samples) in arms.iter().zip(x_cells.chunks(seeds)) {
                let col = |i: usize| -> Vec<f64> { samples.iter().map(|s| s[i]).collect() };
                results.push(AlgResult {
                    name: format!("Appro-G {label}"),
                    volume: Summary::of(&col(0)),
                    throughput: Summary::of(&col(1)),
                });
                results.push(AlgResult {
                    name: format!("{label} storage/mean"),
                    volume: Summary::of(&col(2)),
                    throughput: Summary::of(&col(3)),
                });
                results.push(AlgResult {
                    name: format!("{label} p95/degraded"),
                    volume: Summary::of(&col(4)),
                    throughput: Summary::of(&col(5)),
                });
            }
            FigureRow { x, results }
        })
        .collect()
}

/// Erasure-coding tradeoff sweep: admitted volume, storage GB, mean/p95
/// read delay, and availability for `Replication(3)` vs
/// `EC{(2,1),(4,2),(8,3)}` across MTBF/MTTR fault fractions. EC spends
/// decode CPU and shard-gather hops to buy back storage (a holder keeps
/// `|S|/k`, not `|S|`) and serving fan-out (`k + m` slots vs `K`);
/// under faults a dataset with `min_read ≤ live < placed` shards serves
/// *degraded* reads instead of losing queries, and the Background-tier
/// scrubber re-encodes lost shards from any `k` survivors.
pub fn ext_ec(seeds: usize) -> FigureData {
    assert!(seeds >= 1);
    let fractions = [0.0f64, 0.1, 0.2, 0.4];
    let arms = ec_arms();
    // Worlds depend only on (scheme, seed): memoized across the fault
    // fractions exactly like the ext-availability grid.
    let worlds: Vec<OnceLock<edgerep_testbed::TestbedWorld>> =
        (0..arms.len() * seeds).map(|_| OnceLock::new()).collect();
    let tasks: Vec<(usize, usize, usize)> = (0..fractions.len())
        .flat_map(|fi| (0..arms.len()).flat_map(move |ai| (0..seeds).map(move |s| (fi, ai, s))))
        .collect();
    let flat: Vec<[f64; 6]> = par_map(&tasks, |&(fi, ai, s)| {
        let seed = s as u64;
        let world = worlds[ai * seeds + s].get_or_init(|| {
            let cfg = ec_world_cfg(arms[ai].1);
            edgerep_testbed::build_testbed_instance(&cfg, seed)
        });
        let plan = availability_fault_profile(fractions[fi], seed)
            .generate(world.instance.cloud().compute_count());
        ec_cell(world, &plan, seed, false)
    });
    let rows = ec_rows(&fractions, seeds, &flat);
    // Trajectory sidecar: one seed-0 run per scheme at the harshest
    // fraction, sampled every 30 simulated seconds — availability dips at
    // each outage and recovers as the scrubber rebuilds shards.
    let timeseries = {
        let seed = 0u64;
        let series: Vec<(String, Vec<SloSample>)> = par_map(&arms, |&(label, scheme)| {
            let cfg = ec_world_cfg(scheme);
            let world = edgerep_testbed::build_testbed_instance(&cfg, seed);
            let plan = availability_fault_profile(*fractions.last().expect("non-empty"), seed)
                .generate(world.instance.cloud().compute_count());
            let sim = SimConfig {
                seed,
                scrub_interval_s: Some(EC_SCRUB_INTERVAL_S),
                transfer: TransferModel::Chunked(ChunkedConfig::default()),
                nic_contention: false,
                slo_sample_interval_s: Some(30.0),
                ..Default::default()
            };
            let report = try_run_testbed_with_plan(&ApproG::default(), &world, &sim, &plan)
                .expect("generated fault plans validate");
            (label.to_owned(), report.slo_series)
        });
        Some(render_slo_csv(&series))
    };
    FigureData {
        id: "ext-ec".to_owned(),
        title: "Extension: erasure coding vs replication under transient faults                 (three columns per scheme — volume with availability in panel (b),                 storage GB with mean response s, p95 response s with degraded-read                 fraction)"
            .to_owned(),
        x_label: "fault fraction".to_owned(),
        rows,
        timeseries,
    }
}

/// [`ext_ec`] under correlated region failure storms (`repro ext-ec
/// --storm`): x = storms per run, same scheme arms and column packing,
/// NIC contention on so shard gathers and scrub rebuilds are long enough
/// for a storm to catch them mid-air. A storm takes a whole metro rack
/// down at once — the case where replication's three full copies can all
/// share a blast radius but a wide shard stripe cannot.
pub fn ext_ec_storm(seeds: usize) -> FigureData {
    assert!(seeds >= 1);
    let storm_counts = [0usize, 1, 2];
    let arms = ec_arms();
    let worlds: Vec<OnceLock<edgerep_testbed::TestbedWorld>> =
        (0..arms.len() * seeds).map(|_| OnceLock::new()).collect();
    let tasks: Vec<(usize, usize, usize)> = (0..storm_counts.len())
        .flat_map(|si| (0..arms.len()).flat_map(move |ai| (0..seeds).map(move |s| (si, ai, s))))
        .collect();
    let flat: Vec<[f64; 6]> = par_map(&tasks, |&(si, ai, s)| {
        let seed = s as u64;
        let world = worlds[ai * seeds + s].get_or_init(|| {
            let cfg = ec_world_cfg(arms[ai].1);
            edgerep_testbed::build_testbed_instance(&cfg, seed)
        });
        let nodes = world.instance.cloud().compute_count();
        let plan = availability_storm_profile(storm_counts[si], seed)
            .generate_with_regions(&testbed_storm_regions(nodes));
        ec_cell(world, &plan, seed, true)
    });
    let xs: Vec<f64> = storm_counts.iter().map(|&c| c as f64).collect();
    let rows = ec_rows(&xs, seeds, &flat);
    FigureData {
        id: "ext-ec".to_owned(),
        title: "Extension: erasure coding vs replication under correlated region                 failure storms (x = storms per run; three columns per scheme —                 volume with availability, storage GB with mean response s,                 p95 response s with degraded-read fraction)"
            .to_owned(),
        x_label: "storms".to_owned(),
        rows,
        timeseries: None,
    }
}

/// Rolling-operation sweep: volume per epoch under a drifting query
/// hotspot, static placement vs periodic replanning (panel (b) reuses the
/// throughput column for per-epoch migration GB normalized by the
/// epoch-0 placement volume).
pub fn ext_rolling(seeds: usize) -> FigureData {
    assert!(seeds >= 1);
    let epochs = 6usize;
    let seed_list: Vec<u64> = (0..seeds as u64).collect();
    // For each seed, run both policies once and collect per-epoch series.
    let runs: Vec<PolicyRuns> = par_map(&seed_list, |&seed| {
        let cfg = RollingConfig {
            epochs,
            seed,
            ..Default::default()
        };
        let alg = ApproG::default();
        let fixed = run_rolling(&alg, &cfg, ReplanPolicy::Static);
        let periodic = run_rolling(&alg, &cfg, ReplanPolicy::Periodic);
        let to_samples = |r: &edgerep_testbed::rolling::RollingReport| {
            r.per_epoch
                .iter()
                .map(|e| EpochSample {
                    volume: e.volume,
                    migration: e.migration_gb,
                })
                .collect::<Vec<_>>()
        };
        (to_samples(&fixed), to_samples(&periodic))
    });
    let rows = (0..epochs)
        .map(|e| {
            let stat = |pick: &dyn Fn(&PolicyRuns) -> EpochSample| {
                let vols: Vec<f64> = runs.iter().map(|r| pick(r).volume).collect();
                let migs: Vec<f64> = runs.iter().map(|r| pick(r).migration).collect();
                (Summary::of(&vols), Summary::of(&migs))
            };
            let (fv, fm) = stat(&|r| r.0[e]);
            let (pv, pm) = stat(&|r| r.1[e]);
            FigureRow {
                x: e as f64,
                results: vec![
                    AlgResult {
                        name: "Static placement".to_owned(),
                        volume: fv,
                        throughput: fm,
                    },
                    AlgResult {
                        name: "Periodic replan".to_owned(),
                        volume: pv,
                        throughput: pm,
                    },
                ],
            }
        })
        .collect();
    FigureData {
        id: "ext-rolling".to_owned(),
        title: "Extension: rolling operation under workload drift                 (panel (a) admitted volume per epoch; panel (b) column reports                 migration GB per epoch, not throughput)"
            .to_owned(),
        x_label: "epoch".to_owned(),
        rows,
        timeseries: None,
    }
}

/// Forecaster × drift-rate sweep: realized admitted volume and total
/// transfer traffic over an 8-epoch rolling run, per replanning policy.
///
/// The x-axis is the hotspot probability (0 = homes uniform, 0.9 = 90 %
/// of queries cluster on the epoch's rotating group — the drift rate);
/// panel (a) reports total admitted volume, panel (b) reuses the
/// throughput column for total transfer GB (migration + prefetch).
/// `Periodic` is the replan-after-seeing-the-workload oracle; the
/// predictive series show what each forecaster recovers of the gap
/// between `Static` and that bound, and at what traffic cost. Forecast
/// error lands in the obs registry (`forecast.mape` gauge, exported to
/// the `{id}_metrics.csv` sidecar under `--csv`).
pub fn ext_forecast(seeds: usize) -> FigureData {
    assert!(seeds >= 1);
    let drifts = [0.0f64, 0.3, 0.6, 0.9];
    let policies: [(&str, ReplanPolicy); 6] = [
        ("Static", ReplanPolicy::Static),
        ("Periodic (oracle)", ReplanPolicy::Periodic),
        (
            "Predictive seasonal-4",
            ReplanPolicy::Predictive(ForecasterKind::SeasonalNaive { period: 4 }),
        ),
        (
            "Predictive EWMA",
            ReplanPolicy::Predictive(ForecasterKind::Ewma),
        ),
        (
            "Predictive Holt",
            ReplanPolicy::Predictive(ForecasterKind::Holt),
        ),
        (
            "Predictive top-32",
            ReplanPolicy::Predictive(ForecasterKind::TopK { k: 32 }),
        ),
    ];
    // One flat (drift × policy) × seed task list through the 2-D
    // scheduler (24 rows × seeds cells at the paper's 15 seeds = 360).
    let cells: Vec<Vec<(f64, f64)>> = run_grid(drifts.len() * policies.len(), seeds, |ri, seed| {
        let (di, pi) = (ri / policies.len(), ri % policies.len());
        let cfg = RollingConfig {
            epochs: 8,
            hotspot_probability: drifts[di],
            seed: seed as u64,
            ..Default::default()
        };
        let report = run_rolling(&ApproG::default(), &cfg, policies[pi].1);
        (
            report.total_volume,
            report.total_migration_gb + report.total_prefetch_gb,
        )
    });
    let rows = drifts
        .iter()
        .enumerate()
        .map(|(di, &drift)| {
            let results = policies
                .iter()
                .enumerate()
                .map(|(pi, (name, _))| {
                    let samples = &cells[di * policies.len() + pi];
                    let vols: Vec<f64> = samples.iter().map(|s| s.0).collect();
                    let traffic: Vec<f64> = samples.iter().map(|s| s.1).collect();
                    AlgResult {
                        name: (*name).to_owned(),
                        volume: Summary::of(&vols),
                        throughput: Summary::of(&traffic),
                    }
                })
                .collect();
            FigureRow { x: drift, results }
        })
        .collect();
    // Trajectory sidecar: seed-0 per-epoch SLO series for every policy at
    // the strongest drift, showing forecast error shrinking (and admitted
    // fraction recovering) as the predictors accrue history.
    let series: Vec<(String, Vec<SloSample>)> = par_map(&policies, |&(name, policy)| {
        let cfg = RollingConfig {
            epochs: 8,
            hotspot_probability: *drifts.last().expect("non-empty"),
            seed: 0,
            ..Default::default()
        };
        let report = run_rolling(&ApproG::default(), &cfg, policy);
        (name.to_owned(), report.slo_series())
    });
    let timeseries = Some(render_slo_csv(&series));
    FigureData {
        id: "ext-forecast".to_owned(),
        title: "Extension: predictive prefetching vs drift rate                 (panel (a) total admitted volume over 8 epochs; panel (b) column                 reports total transfer GB — migration + prefetch — not throughput)"
            .to_owned(),
        x_label: "hotspot probability".to_owned(),
        rows,
        timeseries,
    }
}

/// Region counts swept by [`ext_shard`].
pub const SHARD_REGIONS: [usize; 4] = [1, 2, 4, 8];

/// Sharded-solver scaling study: solve wall-clock and net-benefit gap vs
/// the number of regions R on a scaled-up generator world.
///
/// Per row (R), two packed series:
/// * `"sharded Appro-G"` — admitted volume in the volume panel, solve
///   time in **milliseconds** in the throughput panel;
/// * `"vs global (gap % | speedup x)"` — the net-benefit gap
///   `100 · (global − sharded) / global` admitted volume in the volume
///   panel, wall-clock speedup `t_global / t_sharded` in the throughput
///   panel.
///
/// The R = 1 row *is* the global `Appro-G` baseline (the sharded wrapper
/// delegates verbatim), so its gap is exactly 0 and its speedup exactly 1.
///
/// Unlike every other figure this one runs its cells **sequentially**:
/// the quantity under measurement is wall-clock solve time, and the R-way
/// parallelism under test comes from the sharded solver's own `par_map`
/// over shards — a `run_grid` fan-out would both defeat it (nested
/// `par_map` falls back to sequential) and corrupt the timings through
/// CPU contention.
pub fn ext_shard(seeds: usize) -> FigureData {
    assert!(seeds >= 1);
    // Scaled world: hundreds of queries per instance on a 64-node metro —
    // large enough that the solver's quadratic term dominates and sharding
    // pays, small enough for a --quick CI smoke.
    let params = WorkloadParams::default().with_network_size(64).with_scale(8);
    let instances: Vec<_> = (0..seeds)
        .map(|s| generate_instance(&params, s as u64))
        .collect();
    // Global (R = 1) baseline per seed: admitted volume + solve seconds.
    let globals: Vec<(f64, f64)> = instances
        .iter()
        .map(|inst| {
            let t0 = Instant::now();
            let sol = ApproG::default().solve(inst);
            (sol.admitted_volume(inst), t0.elapsed().as_secs_f64())
        })
        .collect();
    let mut rows = Vec::new();
    for &regions in &SHARD_REGIONS {
        let mut volumes = Vec::with_capacity(seeds);
        let mut solve_ms = Vec::with_capacity(seeds);
        let mut gaps = Vec::with_capacity(seeds);
        let mut speedups = Vec::with_capacity(seeds);
        for (inst, &(global_volume, global_secs)) in instances.iter().zip(&globals) {
            let (volume, secs) = if regions <= 1 {
                (global_volume, global_secs)
            } else {
                let solver = ShardedSolver::new(
                    ApproG::default(),
                    ShardConfig {
                        regions,
                        reconcile: true,
                    },
                );
                let t0 = Instant::now();
                let sol = solver.solve(inst);
                let secs = t0.elapsed().as_secs_f64();
                sol.validate(inst)
                    .expect("reconciled sharded solutions stay feasibility-clean");
                (sol.admitted_volume(inst), secs)
            };
            volumes.push(volume);
            solve_ms.push(secs * 1e3);
            gaps.push(if global_volume > 0.0 {
                (global_volume - volume) / global_volume * 100.0
            } else {
                0.0
            });
            speedups.push(if secs > 0.0 { global_secs / secs } else { 1.0 });
        }
        rows.push(FigureRow {
            x: regions as f64,
            results: vec![
                AlgResult {
                    name: "sharded Appro-G".into(),
                    volume: Summary::of(&volumes),
                    throughput: Summary::of(&solve_ms),
                },
                AlgResult {
                    name: "vs global (gap % | speedup x)".into(),
                    volume: Summary::of(&gaps),
                    throughput: Summary::of(&speedups),
                },
            ],
        });
    }
    FigureData {
        id: "ext-shard".into(),
        title: "Sharded regional solve: wall-clock and net-benefit gap vs R \
                (panel (a): admitted GB / gap %; panel (b): solve ms / speedup x)"
            .into(),
        x_label: "regions R".into(),
        rows,
        timeseries: None,
    }
}

#[derive(Clone, Copy)]
struct EpochSample {
    volume: f64,
    migration: f64,
}

/// One seed's per-epoch series for both rolling policies (static, periodic).
type PolicyRuns = (Vec<EpochSample>, Vec<EpochSample>);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_benefit_rows_cover_k_and_gammas() {
        let fig = ext_net_benefit(1);
        assert_eq!(fig.rows.len(), 7);
        for row in &fig.rows {
            assert_eq!(row.results.len(), GAMMA_VALUES.len());
            // γ = 0 net benefit equals the measured volume: >= the γ = 2
            // series at the same K.
            assert!(row.results[0].volume.mean >= row.results[2].volume.mean - 1e-9);
        }
    }

    #[test]
    fn refinement_never_hurts() {
        let fig = ext_refine(2);
        let row = &fig.rows[0];
        for pair in row.results.chunks(2) {
            assert!(
                pair[1].volume.mean >= pair[0].volume.mean - 1e-9,
                "refinement lost volume for {}",
                pair[0].name
            );
        }
    }

    #[test]
    fn topology_robustness_preserves_ordering() {
        let fig = ext_topology(3);
        for row in &fig.rows {
            let appro = row.results[0].volume.mean;
            let greedy = row.results[1].volume.mean;
            let graph = row.results[2].volume.mean;
            assert!(appro > greedy, "x={}: ordering broken", row.x);
            assert!(appro > graph, "x={}: ordering broken", row.x);
        }
    }

    #[test]
    fn faults_extension_gap_closes_with_k() {
        let fig = ext_faults(3);
        for row in &fig.rows {
            let clean = row.results[0].volume.mean;
            let faulty = row.results[1].volume.mean;
            assert!(faulty <= clean + 1e-9, "K={}: fault helped?!", row.x);
        }
        // Relative damage at K = 1 exceeds damage at K = 5.
        let damage = |row: &FigureRow| {
            let clean = row.results[0].volume.mean.max(1e-9);
            1.0 - row.results[1].volume.mean / clean
        };
        assert!(
            damage(&fig.rows[0]) >= damage(&fig.rows[fig.rows.len() - 1]) - 0.05,
            "replication should blunt the failure"
        );
    }

    #[test]
    fn availability_extension_zero_faults_makes_repair_a_noop() {
        let fig = ext_availability(1);
        assert_eq!(fig.rows.len(), 4);
        let clean = &fig.rows[0]; // fraction 0.0
        assert_eq!(clean.results.len(), 12); // K ∈ {1..4} × three arms
        for arms in clean.results.chunks(3) {
            // Without faults all three arms are byte-identical: repair is
            // inert, and the chunked engine coalesces to the same
            // point-to-point physics (the sim pins this bitwise too).
            assert_eq!(
                arms[0].volume.mean, arms[1].volume.mean,
                "repair must be inert without faults"
            );
            assert_eq!(
                arms[1].volume.mean, arms[2].volume.mean,
                "chunked transfers must match p2p without faults"
            );
            for arm in arms {
                assert_eq!(arm.throughput.mean, 1.0, "no faults, full availability");
            }
        }
        // The trajectory sidecar carries all three arms as labeled,
        // multi-sample SLO series.
        let ts = fig.timeseries.as_deref().expect("availability trajectory");
        assert!(ts.starts_with("series,t_s,availability"), "{ts}");
        for label in ["no-repair,", "repair,", "repair+chunked,"] {
            assert!(
                ts.lines().filter(|l| l.starts_with(label)).count() >= 2,
                "series {label} too short:\n{ts}"
            );
        }
    }

    #[test]
    fn availability_storm_rows_are_coherent() {
        let fig = ext_availability_storm(1);
        assert_eq!(fig.rows.len(), 3);
        assert_eq!(fig.x_label, "storms");
        for (row, &storms) in fig.rows.iter().zip(&[0.0f64, 1.0, 2.0]) {
            assert_eq!(row.x, storms);
            assert_eq!(row.results.len(), 12); // K ∈ {1..4} × three arms
            for arms in row.results.chunks(3) {
                assert!(arms[0].name.contains("no-repair"));
                assert!(arms[1].name.ends_with(" repair"));
                assert!(arms[2].name.ends_with("repair+chunked"));
                for arm in arms {
                    assert!(
                        (0.0..=1.0).contains(&arm.throughput.mean),
                        "{}: availability out of range",
                        arm.name
                    );
                }
            }
        }
        // Storms hurt: aggregated over K, layering two region storms on
        // the background noise cannot beat the storm-free row per arm.
        for ai in 0..3 {
            let sum = |row: &FigureRow| -> f64 {
                row.results
                    .iter()
                    .skip(ai)
                    .step_by(3)
                    .map(|a| a.throughput.mean)
                    .sum()
            };
            let calm = sum(&fig.rows[0]);
            let stormy = sum(&fig.rows[2]);
            assert!(
                stormy <= calm + 1e-9,
                "arm {ai}: stormy availability {stormy} above calm {calm}"
            );
        }
    }

    #[test]
    fn availability_extension_repair_beats_no_repair_under_transient_faults() {
        // The acceptance criterion: with repair enabled and K >= 2, the
        // measured admitted volume under the 10%-of-nodes transient plan
        // is strictly above the repair-disabled run at the same seeds
        // (aggregated over K ∈ {2, 3, 4} so one quiet seed cannot mask
        // the effect).
        let fig = ext_availability(2);
        let row = &fig.rows[1]; // fraction 0.1
        assert!((row.x - 0.1).abs() < 1e-12);
        let mut off_sum = 0.0;
        let mut on_sum = 0.0;
        let mut chunked_sum = 0.0;
        let mut off_avail = 0.0;
        let mut on_avail = 0.0;
        let mut chunked_avail = 0.0;
        for arms in row.results.chunks(3).skip(1) {
            // arms are (no-repair, repair, repair+chunked) per K;
            // skip(1) drops K = 1.
            assert!(arms[0].name.contains("no-repair"));
            assert!(arms[1].name.ends_with(" repair"));
            assert!(arms[2].name.ends_with("repair+chunked"));
            off_sum += arms[0].volume.mean;
            on_sum += arms[1].volume.mean;
            chunked_sum += arms[2].volume.mean;
            off_avail += arms[0].throughput.mean;
            on_avail += arms[1].throughput.mean;
            chunked_avail += arms[2].throughput.mean;
        }
        assert!(
            on_sum > off_sum,
            "repair must strictly raise measured volume under faults \
             (on {on_sum} vs off {off_sum})"
        );
        assert!(
            on_avail >= off_avail,
            "repair must not lower availability (on {on_avail} vs off {off_avail})"
        );
        assert!(
            chunked_sum > off_sum,
            "chunked repair must strictly raise measured volume under faults \
             (chunked {chunked_sum} vs off {off_sum})"
        );
        assert!(
            chunked_avail >= off_avail,
            "chunked repair must not lower availability \
             (chunked {chunked_avail} vs off {off_avail})"
        );
    }

    #[test]
    fn availability_with_custom_plan_shapes() {
        use edgerep_testbed::{FaultPlan, NodeOutage};
        let plan = FaultPlan {
            node_outages: vec![NodeOutage {
                node: edgerep_model::ComputeNodeId(5),
                down_at_s: 2.0,
                up_at_s: Some(60.0),
            }],
            link_faults: Vec::new(),
        };
        let fig = ext_availability_with_plan(1, &plan);
        assert_eq!(fig.rows.len(), 4);
        let (mut off_volume, mut on_volume) = (0.0, 0.0);
        for row in &fig.rows {
            assert_eq!(row.results.len(), 3);
            off_volume += row.results[0].volume.mean;
            on_volume += row.results[1].volume.mean;
            // Repair never loses more queries to the outage than no
            // repair does (losses happen at the down-transition, before
            // the two arms can diverge).
            assert!(
                row.results[1].throughput.mean >= row.results[0].throughput.mean - 1e-9,
                "repair lowered availability at K={}",
                row.x
            );
        }
        // Per-K volume can wobble slightly — repaired replicas shift
        // failover routing — but over the K sweep repair is a net win
        // (or a wash when replication already covers the outage).
        assert!(
            on_volume >= off_volume - 1e-9,
            "repair must not be a net volume loss (on {on_volume} vs off {off_volume})"
        );
    }

    #[test]
    fn rolling_extension_shapes() {
        let fig = ext_rolling(2);
        assert_eq!(fig.rows.len(), 6);
        // Epoch 0 identical across policies.
        let r0 = &fig.rows[0];
        assert!((r0.results[0].volume.mean - r0.results[1].volume.mean).abs() < 1e-9);
        // Static placement never migrates after epoch 0.
        for row in fig.rows.iter().skip(1) {
            assert_eq!(row.results[0].throughput.mean, 0.0);
        }
    }

    #[test]
    fn forecast_extension_shapes() {
        let fig = ext_forecast(1);
        assert_eq!(fig.rows.len(), 4);
        for row in &fig.rows {
            assert_eq!(row.results.len(), 6);
            for r in &row.results {
                assert!(r.volume.mean > 0.0, "{} admitted nothing", r.name);
                assert!(r.throughput.mean >= 0.0);
            }
            // Static never pays transfer traffic after its one placement;
            // every replanning/prefetching policy pays at least as much.
            let static_traffic = row.results[0].throughput.mean;
            for r in &row.results[1..] {
                assert!(
                    r.throughput.mean >= static_traffic - 1e-9,
                    "{} moved less than Static at drift {}",
                    r.name,
                    row.x
                );
            }
        }
        // The trajectory sidecar holds one 8-epoch series per policy,
        // and predictive epochs past cold start carry a wmape cell.
        let ts = fig.timeseries.as_deref().expect("forecast trajectory");
        for name in ["Static,", "Periodic (oracle),", "Predictive EWMA,"] {
            assert_eq!(
                ts.lines().filter(|l| l.starts_with(name)).count(),
                8,
                "missing series {name}:\n{ts}"
            );
        }
        let scored = ts
            .lines()
            .filter(|l| l.starts_with("Predictive") && !l.ends_with(','))
            .count();
        assert!(scored > 0, "no predictive epoch reported a wmape:\n{ts}");
    }

    #[test]
    fn ec_extension_trades_storage_for_admission() {
        let fig = ext_ec(1);
        assert_eq!(fig.rows.len(), 4);
        assert_eq!(fig.x_label, "fault fraction");
        let clean = &fig.rows[0]; // fraction 0.0
        assert_eq!(clean.results.len(), 12); // 4 schemes × 3 columns
        for cols in clean.results.chunks(3) {
            assert_eq!(
                cols[0].throughput.mean, 1.0,
                "{}: no faults, full availability",
                cols[0].name
            );
            assert_eq!(
                cols[2].throughput.mean, 0.0,
                "{}: no faults, no degraded reads",
                cols[2].name
            );
        }
        // The tentpole tradeoff: at least one EC striping admits at least
        // Replication(3)'s volume while storing strictly less.
        let vol = |i: usize| clean.results[i * 3].volume.mean;
        let storage = |i: usize| clean.results[i * 3 + 1].volume.mean;
        assert!(
            (1..4).any(|i| vol(i) >= vol(0) - 1e-9 && storage(i) < storage(0) - 1e-9),
            "no EC arm admitted >= Replication(3)'s volume at lower storage \
             (volumes {:?}, storage {:?})",
            (0..4).map(vol).collect::<Vec<_>>(),
            (0..4).map(storage).collect::<Vec<_>>()
        );
        // The trajectory sidecar carries one labeled series per scheme.
        let ts = fig.timeseries.as_deref().expect("ec trajectory");
        assert!(ts.starts_with("series,t_s,availability"), "{ts}");
        for label in ["Replication(3),", "EC(2,1),", "EC(4,2),", "EC(8,3),"] {
            assert!(
                ts.lines().filter(|l| l.starts_with(label)).count() >= 2,
                "series {label} too short:\n{ts}"
            );
        }
    }

    #[test]
    fn ec_storm_rows_are_coherent() {
        let fig = ext_ec_storm(1);
        assert_eq!(fig.rows.len(), 3);
        assert_eq!(fig.x_label, "storms");
        for (row, &storms) in fig.rows.iter().zip(&[0.0f64, 1.0, 2.0]) {
            assert_eq!(row.x, storms);
            assert_eq!(row.results.len(), 12);
            for cols in row.results.chunks(3) {
                assert!(
                    (0.0..=1.0).contains(&cols[0].throughput.mean),
                    "{}: availability out of range",
                    cols[0].name
                );
                assert!(
                    (0.0..=1.0).contains(&cols[2].throughput.mean),
                    "{}: degraded-read fraction out of range",
                    cols[2].name
                );
                assert!(cols[1].volume.mean > 0.0, "{}: empty plan", cols[1].name);
            }
        }
    }

    #[test]
    fn ec_extension_is_registered() {
        assert_eq!(EXT_IDS.len(), 10, "the ext set is ten figures");
        assert!(EXT_IDS.contains(&"ext-ec"));
    }

    #[test]
    fn shard_extension_is_registered() {
        assert!(EXT_IDS.contains(&"ext-shard"));
        assert_eq!(SHARD_REGIONS, [1, 2, 4, 8]);
    }

    #[test]
    fn shard_rows_are_coherent() {
        let fig = ext_shard(1);
        assert_eq!(fig.rows.len(), SHARD_REGIONS.len());
        for (row, &r) in fig.rows.iter().zip(&SHARD_REGIONS) {
            assert_eq!(row.x, r as f64);
            assert_eq!(row.results.len(), 2);
            let sharded = &row.results[0];
            let gap = &row.results[1];
            assert!(sharded.volume.mean > 0.0, "R={r}: nothing admitted");
            assert!(sharded.throughput.mean > 0.0, "R={r}: zero solve time");
            assert!(
                gap.volume.mean <= 100.0 + 1e-9,
                "R={r}: gap above 100%"
            );
        }
        // The R = 1 row is the global baseline itself: gap exactly 0,
        // speedup exactly 1.
        assert_eq!(fig.rows[0].results[1].volume.mean, 0.0);
        assert_eq!(fig.rows[0].results[1].throughput.mean, 1.0);
    }

    #[test]
    fn online_extension_shapes() {
        if std::env::var_os("EDGEREP_STUB_HARNESS").is_some() {
            return; // the registry-free harness's stub rand drifts instances
        }
        let fig = ext_online(2);
        assert_eq!(fig.rows.len(), 5);
        for row in &fig.rows {
            // The offline reference is threshold-independent.
            let offline = row.results[1].volume.mean;
            assert!((offline - fig.rows[0].results[1].volume.mean).abs() < 1e-9);
            // Online never exceeds offline by more than noise on means.
            assert!(row.results[0].volume.mean <= offline * 1.05 + 1e-9);
        }
    }
}
