//! Per-figure drivers.
//!
//! Each `figN` function regenerates the data behind one figure of the
//! paper (both panels — (a) admitted volume and (b) system throughput —
//! come back in the same [`FigureData`]). Figures 1 and 6 are topology
//! illustrations; [`fig1_text`] and [`fig6_text`] render them as ASCII.

use edgerep_core::BoxedAlgorithm;
use edgerep_testbed::{SimConfig, TestbedConfig};
use edgerep_workload::presets;
use serde::{Deserialize, Serialize};

use crate::runner::{run_simulation_point, run_testbed_point, AlgResult};

/// Every paper figure id, in figure order — the `repro all` set. Figures
/// 1 and 6 are topology illustrations; the rest carry data.
pub const FIGURE_IDS: [&str; 8] = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
];

/// One x-axis point of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureRow {
    /// The swept parameter value (network size, `F`, or `K`).
    pub x: f64,
    /// Per-algorithm results at this point.
    pub results: Vec<AlgResult>,
}

/// A regenerated figure: id, axis labels, and all rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureData {
    /// Paper figure id, e.g. `"fig2"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Rows in x order.
    pub rows: Vec<FigureRow>,
    /// Optional SLO trajectory sidecar (rendered
    /// [`edgerep_testbed::render_slo_csv`] text): per-epoch availability /
    /// QoS-miss / backlog / prefetch / forecast-error series for figures
    /// whose endpoint scalars hide a recovery or learning curve. `repro
    /// --csv` writes it as `{id}_timeseries.csv`; `None` for plain sweeps.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub timeseries: Option<String>,
}

/// Fig. 2: Appro-S vs Greedy-S vs Graph-S over network size (special
/// case: one dataset per query).
pub fn fig2(seeds: usize) -> FigureData {
    sweep_network_sizes(
        "fig2",
        "Appro-S vs Greedy-S vs Graph-S (single-dataset queries)",
        seeds,
        true,
    )
}

/// Fig. 3: Appro-G vs Greedy-G vs Graph-G over network size (general
/// case: multi-dataset queries).
pub fn fig3(seeds: usize) -> FigureData {
    sweep_network_sizes(
        "fig3",
        "Appro-G vs Greedy-G vs Graph-G (multi-dataset queries)",
        seeds,
        false,
    )
}

fn sweep_network_sizes(id: &str, title: &str, seeds: usize, special: bool) -> FigureData {
    let rows = presets::NETWORK_SIZES
        .iter()
        .map(|&n| {
            let params = if special {
                presets::fig2_special_case(n)
            } else {
                presets::fig3_general_case(n)
            };
            let panel = if special {
                edgerep_core::special_panel()
            } else {
                edgerep_core::simulation_panel()
            };
            FigureRow {
                x: n as f64,
                results: run_simulation_point(&params, &panel, seeds),
            }
        })
        .collect();
    FigureData {
        id: id.to_owned(),
        title: title.to_owned(),
        x_label: "network size".to_owned(),
        rows,
        timeseries: None,
    }
}

/// Fig. 4: impact of the max number `F` of datasets demanded per query.
pub fn fig4(seeds: usize) -> FigureData {
    let rows = presets::F_VALUES
        .iter()
        .map(|&f| FigureRow {
            x: f as f64,
            results: run_simulation_point(
                &presets::fig4_vary_f(f),
                &edgerep_core::simulation_panel(),
                seeds,
            ),
        })
        .collect();
    FigureData {
        id: "fig4".to_owned(),
        title: "Impact of max datasets per query F (Appro-G vs Greedy-G vs Graph-G)".to_owned(),
        x_label: "F".to_owned(),
        rows,
        timeseries: None,
    }
}

/// Fig. 5: impact of the max number `K` of replicas per dataset.
pub fn fig5(seeds: usize) -> FigureData {
    let rows = presets::K_VALUES
        .iter()
        .map(|&k| FigureRow {
            x: k as f64,
            results: run_simulation_point(
                &presets::fig5_vary_k(k),
                &edgerep_core::simulation_panel(),
                seeds,
            ),
        })
        .collect();
    FigureData {
        id: "fig5".to_owned(),
        title: "Impact of max replicas K (Appro-G vs Greedy-G vs Graph-G)".to_owned(),
        x_label: "K".to_owned(),
        rows,
        timeseries: None,
    }
}

/// The testbed panel of Fig. 7: Appro-S vs Popularity-S.
fn testbed_special_panel() -> Vec<BoxedAlgorithm> {
    vec![
        Box::new(edgerep_core::appro::ApproS::default()),
        Box::new(edgerep_core::popularity::Popularity::special()),
    ]
}

/// The testbed panel of Fig. 8: Appro-G vs Popularity-G.
fn testbed_general_panel() -> Vec<BoxedAlgorithm> {
    vec![
        Box::new(edgerep_core::appro::ApproG::default()),
        Box::new(edgerep_core::popularity::Popularity::general()),
    ]
}

/// Fig. 7: testbed, `F` sweep, Appro-S vs Popularity-S (single dataset
/// per query at `F = 1`; the sweep raises the cap as the paper does).
pub fn fig7(seeds: usize) -> FigureData {
    let rows = [1usize, 2, 3, 4, 5, 6]
        .iter()
        .map(|&f| {
            let cfg = TestbedConfig::default().with_max_datasets_per_query(f);
            let panel = if f == 1 {
                testbed_special_panel()
            } else {
                testbed_general_panel()
            };
            let mut results = run_testbed_point(&cfg, &panel, seeds, &SimConfig::default());
            // The panel switches from the -S to the -G algorithms at
            // F > 1; the figure's series are conceptually "Appro" vs
            // "Popularity", so normalize the names or the table header
            // (taken from row 0) would mislabel later rows.
            results[0].name = "Appro".to_owned();
            results[1].name = "Popularity".to_owned();
            FigureRow {
                x: f as f64,
                results,
            }
        })
        .collect();
    FigureData {
        id: "fig7".to_owned(),
        title: "Testbed: Appro vs Popularity over F (measured)".to_owned(),
        x_label: "F".to_owned(),
        rows,
        timeseries: None,
    }
}

/// Fig. 8: testbed, `K` sweep, Appro-G vs Popularity-G.
pub fn fig8(seeds: usize) -> FigureData {
    let rows = [1usize, 2, 3, 4, 5, 6, 7]
        .iter()
        .map(|&k| {
            let cfg = TestbedConfig::default().with_max_replicas(k);
            FigureRow {
                x: k as f64,
                results: run_testbed_point(
                    &cfg,
                    &testbed_general_panel(),
                    seeds,
                    &SimConfig::default(),
                ),
            }
        })
        .collect();
    FigureData {
        id: "fig8".to_owned(),
        title: "Testbed: Appro-G vs Popularity-G over K (measured)".to_owned(),
        x_label: "K".to_owned(),
        rows,
        timeseries: None,
    }
}

/// Fig. 1: the two-tier edge cloud illustration, as ASCII.
pub fn fig1_text() -> String {
    r#"Fig. 1 — A two-tier edge cloud G = (BS ∪ SW ∪ CL ∪ DC, E)

                    Internet
     DC1   DC2   DC3  ...        (remote data centers, tier 2)
       \    |    /
      [gateway switches]
       /    |    \
   SW --- SW --- SW              (WMAN switches)
   |  \    |    /  |
  CL1  CL2 CL3 ... CLn           (edge cloudlets, tier 1,
   |    |   |       |             co-located with switches)
  BS   BS  BS  ... BS            (base stations / access points)
   |    |   |       |
 users users users users
"#
    .to_owned()
}

/// Fig. 6: the testbed topology, as ASCII.
pub fn fig6_text() -> String {
    r#"Fig. 6 — Testbed topology (20 VMs + controller + 2 switches)

   [SFO DC]   [NYC DC]   [TOR DC]   [SGP DC]     4 VMs as data centers
       \         |           |         /
        +--------+-----------+--------+          WAN links (Internet)
                 |           |
              [SW 0]------[SW 1]                 2 metro switches
              /  |  \      /  |  \
          CL0  CL2 ... CL1  CL3 ... CL15         16 VMs as cloudlets
                 (metro region)
          [controller: runs the placement algorithms]
"#
    .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_rows_cover_f_values() {
        let data = fig4(1);
        assert_eq!(data.rows.len(), 6);
        assert_eq!(data.rows[0].x, 1.0);
        assert_eq!(data.rows[5].x, 6.0);
        for row in &data.rows {
            assert_eq!(row.results.len(), 3);
        }
    }

    #[test]
    fn fig2_uses_special_panel() {
        let data = fig2(1);
        assert_eq!(data.rows[0].results[0].name, "Appro-S");
        assert_eq!(data.rows[0].results[1].name, "Greedy-S");
        assert_eq!(data.rows[0].results[2].name, "Graph-S");
    }

    #[test]
    fn topology_figures_render() {
        assert!(fig1_text().contains("two-tier"));
        assert!(fig6_text().contains("SGP DC"));
    }
}
