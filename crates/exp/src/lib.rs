#![warn(missing_docs)]

//! Experiment harness regenerating every figure of the paper.
//!
//! * [`stats`] — sample summaries (mean, standard deviation, 95% CI).
//! * [`parallel`] — a panic-propagating, nesting-safe deterministic
//!   parallel map built on scoped `std` threads.
//! * [`runner`] — evaluates an algorithm panel over seeded instances and
//!   aggregates the paper's two metrics; the seed × algorithm grid runs
//!   as one flat task list so wide machines stay saturated.
//! * [`figures`] — one driver per figure (2, 3, 4, 5, 7, 8 — Figs. 1 and 6
//!   are topology illustrations, rendered as text by the `repro` binary).
//! * [`report`] — text/CSV rendering of figure series.
//!
//! The `repro` binary ties it together:
//!
//! ```text
//! cargo run -p edgerep-exp --release --bin repro -- all
//! cargo run -p edgerep-exp --release --bin repro -- fig4 --seeds 30
//! cargo run -p edgerep-exp --release --bin repro -- fig7 --quick
//! ```

pub mod extensions;
pub mod figures;
pub mod parallel;
pub mod plot;
pub mod report;
pub mod runner;
pub mod stats;

pub use figures::{FigureData, FigureRow};
pub use stats::Summary;
