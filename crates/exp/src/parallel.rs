//! Deterministic, panic-safe parallel map on std scoped threads.
//!
//! The implementation lives in [`edgerep_shard::parallel`] — the sharded
//! regional solver runs its per-shard solves on the same scheduler, and
//! `edgerep-exp` depends on `edgerep-shard` (for the `ext-shard` figure
//! and the CLI's `--shards` flag), so the scheduler moved down-stack.
//! This module re-exports it so every experiment call site (and the
//! historical `exp::parallel::par_map` path) keeps working unchanged.

pub use edgerep_shard::parallel::par_map;
