//! Deterministic parallel map on crossbeam scoped threads.
//!
//! Every figure point repeats its experiment over 15 seeded topologies and
//! several algorithms; the repetitions are embarrassingly parallel and
//! independent of execution order, so a simple atomic-counter work queue
//! over scoped threads is all that is needed — results land in their input
//! slot, making the output identical to the sequential map regardless of
//! scheduling (the guides' "same result as the sequential counterpart"
//! contract).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Parallel `map` preserving input order. Uses up to
/// `available_parallelism` worker threads (capped by the item count);
/// falls back to a sequential loop for tiny inputs.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if n <= 1 || workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::bounded::<(usize, R)>(n);

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            let f = &f;
            let next = &next;
            let tx = tx.clone();
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                tx.send((i, r)).expect("receiver outlives the scope");
            });
        }
        drop(tx); // workers hold the remaining senders
    })
    .expect("parallel workers never panic past their own unwinding");

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in rx.try_iter() {
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every slot written by a worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..100).collect();
        let par = par_map(&items, |&x| x * x + 1);
        let seq: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        assert!(par_map(&items, |&x| x).is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn order_preserved_under_uneven_work() {
        // Earlier items take longer; results must still line up.
        let items: Vec<u64> = (0..32).collect();
        let par = par_map(&items, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x * 10
        });
        assert_eq!(par, (0..32).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn heavy_types_move_correctly() {
        let items: Vec<usize> = (0..20).collect();
        let par = par_map(&items, |&x| vec![x; x]);
        for (i, v) in par.iter().enumerate() {
            assert_eq!(v.len(), i);
        }
    }
}
