//! Deterministic parallel map on crossbeam scoped threads.
//!
//! Every figure point repeats its experiment over 15 seeded topologies and
//! several algorithms; the repetitions are embarrassingly parallel and
//! independent of execution order, so a simple atomic-counter work queue
//! over scoped threads is all that is needed — results land in their input
//! slot, making the output identical to the sequential map regardless of
//! scheduling (the guides' "same result as the sequential counterpart"
//! contract).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use edgerep_obs as obs;

/// Parallel `map` preserving input order. Uses up to
/// `available_parallelism` worker threads (capped by the item count);
/// falls back to a sequential loop for tiny inputs.
///
/// When the `parallel` observability target is enabled, per-item wall time
/// lands in the `span.parallel.item_us` histogram and the fleet-wide
/// utilization (busy time over `workers × wall`) in the
/// `parallel.utilization` gauge; disabled, the loop takes no clock
/// readings at all.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if n <= 1 || workers <= 1 {
        return items.iter().map(&f).collect();
    }

    // Gated once per call: the item loop never touches the filter.
    let timed = obs::enabled("parallel");
    let item_hist = timed.then(|| obs::histogram("span.parallel.item_us"));
    let started = timed.then(Instant::now);
    let busy_us = AtomicU64::new(0);
    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::bounded::<(usize, R)>(n);

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            let f = &f;
            let next = &next;
            let busy_us = &busy_us;
            let item_hist = &item_hist;
            let tx = tx.clone();
            scope.spawn(move |_| {
                let mut local_busy_us = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let t0 = item_hist.as_ref().map(|_| Instant::now());
                    let r = f(&items[i]);
                    if let (Some(h), Some(t0)) = (item_hist.as_ref(), t0) {
                        let us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
                        h.record(us);
                        local_busy_us += us;
                    }
                    tx.send((i, r)).expect("receiver outlives the scope");
                }
                busy_us.fetch_add(local_busy_us, Ordering::Relaxed);
            });
        }
        drop(tx); // workers hold the remaining senders
    })
    .expect("parallel workers never panic past their own unwinding");

    if let Some(started) = started {
        let wall_s = started.elapsed().as_secs_f64();
        let busy_s = busy_us.load(Ordering::Relaxed) as f64 / 1e6;
        let utilization = if wall_s > 0.0 {
            (busy_s / (wall_s * workers as f64)).min(1.0)
        } else {
            0.0
        };
        obs::counter("parallel.items").add(n as u64);
        obs::gauge("parallel.utilization").set(utilization);
        obs::emit(
            "parallel",
            "parallel.par_map",
            "par_map.done",
            &[
                ("items", n.into()),
                ("workers", workers.into()),
                ("wall_s", wall_s.into()),
                ("busy_s", busy_s.into()),
                ("utilization", utilization.into()),
            ],
        );
    }

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in rx.try_iter() {
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every slot written by a worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..100).collect();
        let par = par_map(&items, |&x| x * x + 1);
        let seq: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        assert!(par_map(&items, |&x| x).is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn order_preserved_under_uneven_work() {
        // Earlier items take longer; results must still line up.
        let items: Vec<u64> = (0..32).collect();
        let par = par_map(&items, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x * 10
        });
        assert_eq!(par, (0..32).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn heavy_types_move_correctly() {
        let items: Vec<usize> = (0..20).collect();
        let par = par_map(&items, |&x| vec![x; x]);
        for (i, v) in par.iter().enumerate() {
            assert_eq!(v.len(), i);
        }
    }
}
