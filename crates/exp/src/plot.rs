//! Self-contained SVG line charts for figure data.
//!
//! The paper presents its evaluation as line charts; [`figure_to_svg`]
//! renders a [`FigureData`] panel the same way — one polyline per
//! algorithm, 95%-CI error bars, axis ticks, and a legend — with no
//! dependencies beyond `std`. The `repro` binary writes these next to the
//! CSVs (`--svg DIR`), so a reproduction run produces directly comparable
//! pictures.

use std::fmt::Write as _;

use crate::figures::FigureData;

/// Which metric panel of a figure to draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Panel {
    /// Panel (a): volume of datasets demanded by admitted queries.
    Volume,
    /// Panel (b): system throughput.
    Throughput,
}

impl Panel {
    fn label(self) -> &'static str {
        match self {
            Panel::Volume => "admitted demanded volume [GB]",
            Panel::Throughput => "system throughput",
        }
    }

    /// File-name suffix used by the `repro` binary.
    pub fn suffix(self) -> &'static str {
        match self {
            Panel::Volume => "volume",
            Panel::Throughput => "throughput",
        }
    }
}

/// Chart geometry and palette.
#[derive(Debug, Clone)]
pub struct PlotStyle {
    /// Total width in pixels.
    pub width: f64,
    /// Total height in pixels.
    pub height: f64,
    /// Margin around the plotting area (left, right, top, bottom).
    pub margins: (f64, f64, f64, f64),
    /// Series colors, cycled.
    pub palette: Vec<&'static str>,
}

impl Default for PlotStyle {
    fn default() -> Self {
        Self {
            width: 640.0,
            height: 420.0,
            margins: (70.0, 20.0, 50.0, 55.0),
            palette: vec!["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e"],
        }
    }
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// "Nice" tick step covering `span` with about `target` intervals.
fn nice_step(span: f64, target: usize) -> f64 {
    debug_assert!(span > 0.0);
    let raw = span / target as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let nice = if norm <= 1.0 {
        1.0
    } else if norm <= 2.0 {
        2.0
    } else if norm <= 5.0 {
        5.0
    } else {
        10.0
    };
    nice * mag
}

/// Renders one panel of a figure as a standalone SVG document.
pub fn figure_to_svg(fig: &FigureData, panel: Panel, style: &PlotStyle) -> String {
    let (ml, mr, mt, mb) = style.margins;
    let plot_w = style.width - ml - mr;
    let plot_h = style.height - mt - mb;
    assert!(plot_w > 0.0 && plot_h > 0.0, "margins exceed the canvas");

    // Collect series: (name, points (x, mean, ci)).
    let names: Vec<String> = fig
        .rows
        .first()
        .map(|r| r.results.iter().map(|a| a.name.clone()).collect())
        .unwrap_or_default();
    let series: Vec<Vec<(f64, f64, f64)>> = (0..names.len())
        .map(|ai| {
            fig.rows
                .iter()
                .map(|row| {
                    let a = &row.results[ai];
                    let (m, ci) = match panel {
                        Panel::Volume => (a.volume.mean, a.volume.ci95),
                        Panel::Throughput => (a.throughput.mean, a.throughput.ci95),
                    };
                    (row.x, m, ci)
                })
                .collect()
        })
        .collect();

    // Data ranges (y always starts at 0, the paper's convention).
    let x_min = fig.rows.first().map_or(0.0, |r| r.x);
    let x_max = fig.rows.last().map_or(1.0, |r| r.x);
    let x_span = (x_max - x_min).max(1e-9);
    let y_max = series
        .iter()
        .flatten()
        .map(|&(_, m, ci)| m + ci)
        .fold(1e-9_f64, f64::max)
        * 1.08;

    let x_of = |x: f64| ml + (x - x_min) / x_span * plot_w;
    let y_of = |y: f64| mt + plot_h - (y / y_max) * plot_h;

    let mut svg = String::with_capacity(8 * 1024);
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="12">"#,
        w = style.width,
        h = style.height
    );
    let _ = write!(
        svg,
        r#"<rect width="{}" height="{}" fill="white"/>"#,
        style.width, style.height
    );
    // Title.
    let _ = write!(
        svg,
        r#"<text x="{}" y="20" text-anchor="middle" font-size="14">{} — {}</text>"#,
        style.width / 2.0,
        xml_escape(&fig.id),
        xml_escape(panel.label()),
    );

    // Axes.
    let x0 = ml;
    let y0 = mt + plot_h;
    let _ = write!(
        svg,
        r#"<line x1="{x0}" y1="{y0}" x2="{}" y2="{y0}" stroke="black"/>"#,
        ml + plot_w
    );
    let _ = write!(
        svg,
        r#"<line x1="{x0}" y1="{mt}" x2="{x0}" y2="{y0}" stroke="black"/>"#
    );

    // X ticks at the actual data points (the sweeps are discrete).
    for row in &fig.rows {
        let px = x_of(row.x);
        let _ = write!(
            svg,
            r#"<line x1="{px}" y1="{y0}" x2="{px}" y2="{}" stroke="black"/>"#,
            y0 + 5.0
        );
        let _ = write!(
            svg,
            r#"<text x="{px}" y="{}" text-anchor="middle">{}</text>"#,
            y0 + 20.0,
            fmt_tick(row.x)
        );
    }
    let _ = write!(
        svg,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        ml + plot_w / 2.0,
        style.height - 12.0,
        xml_escape(&fig.x_label)
    );

    // Y ticks.
    let step = nice_step(y_max, 5);
    let mut y = 0.0;
    while y <= y_max + 1e-12 {
        let py = y_of(y);
        let _ = write!(
            svg,
            r#"<line x1="{}" y1="{py}" x2="{x0}" y2="{py}" stroke="black"/>"#,
            x0 - 5.0
        );
        let _ = write!(
            svg,
            r##"<line x1="{x0}" y1="{py}" x2="{}" y2="{py}" stroke="#dddddd"/>"##,
            ml + plot_w
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="end">{}</text>"#,
            x0 - 9.0,
            py + 4.0,
            fmt_tick(y)
        );
        y += step;
    }
    let _ = write!(
        svg,
        r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
        mt + plot_h / 2.0,
        mt + plot_h / 2.0,
        xml_escape(panel.label())
    );

    // Series: error bars, polyline, markers.
    for (si, points) in series.iter().enumerate() {
        let color = style.palette[si % style.palette.len()];
        for &(x, m, ci) in points {
            if ci > 0.0 {
                let px = x_of(x);
                let (top, bot) = (y_of(m + ci), y_of((m - ci).max(0.0)));
                let _ = write!(
                    svg,
                    r#"<line x1="{px}" y1="{top}" x2="{px}" y2="{bot}" stroke="{color}" stroke-width="1"/>"#
                );
                for py in [top, bot] {
                    let _ = write!(
                        svg,
                        r#"<line x1="{}" y1="{py}" x2="{}" y2="{py}" stroke="{color}" stroke-width="1"/>"#,
                        px - 3.0,
                        px + 3.0
                    );
                }
            }
        }
        let path: Vec<String> = points
            .iter()
            .map(|&(x, m, _)| format!("{:.2},{:.2}", x_of(x), y_of(m)))
            .collect();
        let _ = write!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
            path.join(" ")
        );
        for &(x, m, _) in points {
            let _ = write!(
                svg,
                r#"<circle cx="{:.2}" cy="{:.2}" r="3.2" fill="{color}"/>"#,
                x_of(x),
                y_of(m)
            );
        }
    }

    // Legend (top-right inside the plot).
    for (si, name) in names.iter().enumerate() {
        let color = style.palette[si % style.palette.len()];
        let ly = mt + 14.0 + si as f64 * 18.0;
        let lx = ml + plot_w - 150.0;
        let _ = write!(
            svg,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
            lx + 22.0
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}">{}</text>"#,
            lx + 28.0,
            ly + 4.0,
            xml_escape(name)
        );
    }

    svg.push_str("</svg>");
    svg
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::FigureRow;
    use crate::runner::AlgResult;
    use crate::stats::Summary;

    fn sample_fig() -> FigureData {
        let row = |x: f64, v: &[f64], t: &[f64]| FigureRow {
            x,
            results: vec![
                AlgResult {
                    name: "Appro-G".into(),
                    volume: Summary::of(v),
                    throughput: Summary::of(t),
                },
                AlgResult {
                    name: "Greedy-G".into(),
                    volume: Summary::of(&v.iter().map(|x| x / 3.0).collect::<Vec<_>>()),
                    throughput: Summary::of(&t.iter().map(|x| x / 2.0).collect::<Vec<_>>()),
                },
            ],
        };
        FigureData {
            id: "fig5".into(),
            title: "sample".into(),
            x_label: "K".into(),
            rows: vec![
                row(1.0, &[80.0, 90.0], &[0.2, 0.25]),
                row(2.0, &[170.0, 180.0], &[0.35, 0.45]),
                row(3.0, &[250.0, 260.0], &[0.5, 0.55]),
            ],
            timeseries: None,
        }
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let svg = figure_to_svg(&sample_fig(), Panel::Volume, &PlotStyle::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        // One polyline per algorithm, one circle per (row, algorithm).
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        // Legend names appear.
        assert!(svg.contains("Appro-G"));
        assert!(svg.contains("Greedy-G"));
        // Both CI whiskers exist (nonzero ci on every point).
        assert!(svg.matches("stroke-width=\"1\"").count() >= 6);
    }

    #[test]
    fn throughput_panel_scales_below_one() {
        let svg = figure_to_svg(&sample_fig(), Panel::Throughput, &PlotStyle::default());
        assert!(svg.contains("system throughput"));
        // Ticks like "0.2" show up for the [0, ~0.6] range.
        assert!(svg.contains(">0.2<") || svg.contains(">0.20<"));
    }

    #[test]
    fn coordinates_stay_inside_canvas() {
        let style = PlotStyle::default();
        let svg = figure_to_svg(&sample_fig(), Panel::Volume, &style);
        // Crude but effective: all cx attributes within [0, width].
        for part in svg.split("cx=\"").skip(1) {
            let val: f64 = part.split('"').next().unwrap().parse().unwrap();
            assert!(val >= 0.0 && val <= style.width, "cx {val} escapes canvas");
        }
        for part in svg.split("cy=\"").skip(1) {
            let val: f64 = part.split('"').next().unwrap().parse().unwrap();
            assert!(val >= 0.0 && val <= style.height, "cy {val} escapes canvas");
        }
    }

    #[test]
    fn nice_steps_are_nice() {
        assert_eq!(nice_step(10.0, 5), 2.0);
        assert_eq!(nice_step(1.0, 5), 0.2);
        assert_eq!(nice_step(437.0, 5), 100.0);
        assert_eq!(nice_step(0.6, 5), 0.2);
    }

    #[test]
    fn escaping_defuses_markup() {
        assert_eq!(xml_escape("a<b&c>\"d\""), "a&lt;b&amp;c&gt;&quot;d&quot;");
    }

    #[test]
    fn single_row_figure_renders() {
        let mut fig = sample_fig();
        fig.rows.truncate(1);
        let svg = figure_to_svg(&fig, Panel::Volume, &PlotStyle::default());
        assert!(svg.contains("<polyline"));
    }
}
