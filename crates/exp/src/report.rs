//! Rendering figure data as text tables and CSV.

use std::fmt::Write as _;

use crate::figures::FigureData;

/// Renders a figure as the paper-style two-panel text table: panel (a)
/// admitted volume, panel (b) system throughput.
pub fn render_text(fig: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} — {}", fig.id, fig.title);
    let names: Vec<&str> = fig
        .rows
        .first()
        .map(|r| r.results.iter().map(|a| a.name.as_str()).collect())
        .unwrap_or_default();

    let _ = writeln!(
        out,
        "\n(a) volume of datasets demanded by admitted queries [GB]"
    );
    let _ = write!(out, "{:>12}", fig.x_label);
    for n in &names {
        let _ = write!(out, " | {n:>20}");
    }
    let _ = writeln!(out);
    for row in &fig.rows {
        let _ = write!(out, "{:>12}", trim_float(row.x));
        for a in &row.results {
            let _ = write!(out, " | {:>20}", a.volume.display_ci());
        }
        let _ = writeln!(out);
    }

    let _ = writeln!(out, "\n(b) system throughput [admitted/total]");
    let _ = write!(out, "{:>12}", fig.x_label);
    for n in &names {
        let _ = write!(out, " | {n:>20}");
    }
    let _ = writeln!(out);
    for row in &fig.rows {
        let _ = write!(out, "{:>12}", trim_float(row.x));
        for a in &row.results {
            let _ = write!(
                out,
                " | {:>20}",
                format!("{:.3} ± {:.3}", a.throughput.mean, a.throughput.ci95)
            );
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a figure as CSV: one row per (x, algorithm) pair.
pub fn render_csv(fig: &FigureData) -> String {
    let mut out = String::from(
        "figure,x,algorithm,volume_mean,volume_std,volume_ci95,throughput_mean,throughput_std,throughput_ci95,seeds\n",
    );
    for row in &fig.rows {
        for a in &row.results {
            let _ = writeln!(
                out,
                "{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{}",
                fig.id,
                trim_float(row.x),
                a.name,
                a.volume.mean,
                a.volume.std_dev,
                a.volume.ci95,
                a.throughput.mean,
                a.throughput.std_dev,
                a.throughput.ci95,
                a.volume.n,
            );
        }
    }
    out
}

/// Renders a figure as a GitHub-flavoured markdown section: one combined
/// table with volume and throughput columns per algorithm — the format
/// EXPERIMENTS.md uses, so regenerated data can be pasted straight in.
pub fn render_markdown(fig: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## {} — {}
",
        fig.id, fig.title
    );
    let names: Vec<&str> = fig
        .rows
        .first()
        .map(|r| r.results.iter().map(|a| a.name.as_str()).collect())
        .unwrap_or_default();
    let _ = write!(out, "| {} |", fig.x_label);
    for n in &names {
        let _ = write!(out, " {n} vol |");
    }
    for n in &names {
        let _ = write!(out, " {n} thr |");
    }
    let _ = writeln!(out);
    let _ = write!(out, "|--:|");
    for _ in 0..names.len() {
        let _ = write!(out, "---------------:|");
    }
    for _ in 0..names.len() {
        let _ = write!(out, "------:|");
    }
    let _ = writeln!(out);
    for row in &fig.rows {
        let _ = write!(out, "| {} |", trim_float(row.x));
        for a in &row.results {
            let _ = write!(out, " {} |", a.volume.display_ci());
        }
        for a in &row.results {
            let _ = write!(out, " {:.3} |", a.throughput.mean);
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders an `edgerep-obs` registry snapshot as CSV: one row per metric,
/// with histogram rows carrying count/mean/p50/p95/max and scalar rows
/// carrying their value in the `value` column. Written by `repro --csv`
/// next to each figure's data so runner timings, `parallel.utilization`,
/// and admission-reject breakdowns land in the same artifact directory.
pub fn render_metrics_csv(snap: &edgerep_obs::Snapshot) -> String {
    let mut out = String::from("kind,name,value,count,mean,p50,p95,max\n");
    for (name, v) in &snap.counters {
        let _ = writeln!(out, "counter,{name},{v},,,,,");
    }
    for (name, v) in &snap.gauges {
        let _ = writeln!(out, "gauge,{name},{v:.6},,,,,");
    }
    for h in &snap.histograms {
        let _ = writeln!(
            out,
            "histogram,{},,{},{:.3},{},{},{}",
            h.name, h.count, h.mean, h.p50, h.p95, h.max
        );
    }
    out
}

fn trim_float(x: f64) -> String {
    if x.fract() == 0.0 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::FigureRow;
    use crate::runner::AlgResult;
    use crate::stats::Summary;

    fn sample_fig() -> FigureData {
        FigureData {
            id: "figX".into(),
            title: "sample".into(),
            x_label: "K".into(),
            rows: vec![FigureRow {
                x: 2.0,
                results: vec![
                    AlgResult {
                        name: "Appro-G".into(),
                        volume: Summary::of(&[10.0, 12.0]),
                        throughput: Summary::of(&[0.5, 0.6]),
                    },
                    AlgResult {
                        name: "Greedy-G".into(),
                        volume: Summary::of(&[3.0, 5.0]),
                        throughput: Summary::of(&[0.2, 0.3]),
                    },
                ],
            }],
            timeseries: None,
        }
    }

    #[test]
    fn text_has_both_panels_and_all_algorithms() {
        let text = render_text(&sample_fig());
        assert!(text.contains("(a) volume"));
        assert!(text.contains("(b) system throughput"));
        assert!(text.contains("Appro-G"));
        assert!(text.contains("Greedy-G"));
        assert!(text.contains("11.00")); // volume mean
    }

    #[test]
    fn csv_shape() {
        let csv = render_csv(&sample_fig());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 algorithms
        assert!(lines[0].starts_with("figure,x,algorithm"));
        assert!(lines[1].starts_with("figX,2,Appro-G,"));
        assert_eq!(lines[1].split(',').count(), 10);
    }

    #[test]
    fn markdown_table_shape() {
        let md = render_markdown(&sample_fig());
        let lines: Vec<&str> = md.lines().collect();
        assert!(lines[0].starts_with("## figX"));
        // Header + separator + one data row.
        let table: Vec<&str> = lines
            .iter()
            .filter(|l| l.starts_with('|'))
            .copied()
            .collect();
        assert_eq!(table.len(), 3);
        // 1 x column + 2 vol + 2 thr = 5 content columns -> 6 pipes+1.
        assert_eq!(table[0].matches('|').count(), 6);
        assert!(table[2].contains("11.00 ±"));
        assert!(table[2].contains("0.550"));
    }

    #[test]
    fn integer_x_renders_without_decimals() {
        assert_eq!(trim_float(5.0), "5");
        assert_eq!(trim_float(2.5), "2.5");
    }

    fn empty_fig() -> FigureData {
        FigureData {
            id: "figE".into(),
            title: "empty".into(),
            x_label: "K".into(),
            rows: vec![],
            timeseries: None,
        }
    }

    #[test]
    fn text_golden_output() {
        // Full golden string: any rendering change must be reviewed here.
        let expected = "\
figX — sample

(a) volume of datasets demanded by admitted queries [GB]
           K |              Appro-G |             Greedy-G
           2 |        11.00 ± 1.96 |         4.00 ± 1.96

(b) system throughput [admitted/total]
           K |              Appro-G |             Greedy-G
           2 |        0.550 ± 0.098 |        0.250 ± 0.098
";
        let got = render_text(&sample_fig());
        // display_ci width can vary with locale-independent float
        // formatting; compare structure line by line instead of bytes.
        let exp_lines: Vec<&str> = expected.lines().collect();
        let got_lines: Vec<&str> = got.lines().collect();
        assert_eq!(got_lines.len(), exp_lines.len(), "{got}");
        for (g, e) in got_lines.iter().zip(&exp_lines) {
            assert_eq!(
                g.split_whitespace().collect::<Vec<_>>(),
                e.split_whitespace().collect::<Vec<_>>(),
                "line mismatch in:\n{got}"
            );
        }
    }

    #[test]
    fn empty_rows_render_headers_only() {
        let text = render_text(&empty_fig());
        assert!(text.contains("figE — empty"));
        assert!(text.contains("(a) volume"));
        assert!(text.contains("(b) system throughput"));
        // No algorithm names, no data rows: every remaining line is a
        // header or the bare x-label column.
        assert!(!text.contains('±'));

        let csv = render_csv(&empty_fig());
        assert_eq!(csv.lines().count(), 1, "header only: {csv}");
        assert!(csv.starts_with("figure,x,algorithm"));

        let md = render_markdown(&empty_fig());
        let table: Vec<&str> = md.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(table.len(), 2, "header + separator only: {md}");
        assert_eq!(table[0], "| K |");
    }

    #[test]
    fn metrics_csv_renders_counters_gauges_and_histograms() {
        let snap = edgerep_obs::Snapshot {
            counters: vec![("admission.rejected.deadline".into(), 4u64)],
            gauges: vec![("parallel.utilization".into(), 0.75f64)],
            histograms: vec![edgerep_obs::HistogramSnapshot {
                name: "runner.point_us".into(),
                count: 2,
                sum: 3000,
                mean: 1500.0,
                p50: 1023,
                p95: 2047,
                max: 1800,
            }],
        };
        let csv = render_metrics_csv(&snap);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kind,name,value,count,mean,p50,p95,max");
        assert_eq!(lines[1], "counter,admission.rejected.deadline,4,,,,,");
        assert_eq!(lines[2], "gauge,parallel.utilization,0.750000,,,,,");
        assert_eq!(
            lines[3],
            "histogram,runner.point_us,,2,1500.000,1023,2047,1800"
        );
        assert_eq!(lines.len(), 4);
        // Every row has the same column count as the header.
        for l in &lines {
            assert_eq!(l.split(',').count(), 8, "{l}");
        }
    }

    #[test]
    fn csv_golden_row_values() {
        let csv = render_csv(&sample_fig());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[1],
            "figX,2,Appro-G,11.000000,1.414214,1.960000,0.550000,0.070711,0.098000,2"
        );
        assert_eq!(
            lines[2],
            "figX,2,Greedy-G,4.000000,1.414214,1.960000,0.250000,0.070711,0.098000,2"
        );
    }
}
