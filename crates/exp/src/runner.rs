//! Panel evaluation over seeded repetitions.
//!
//! Both entry points flatten the seed × algorithm grid into **one** task
//! list for [`par_map`], so a 15-seed × 3-algorithm figure point exposes
//! 45 independent tasks instead of 15 — enough to saturate wide machines
//! even at small seed counts. Instance/world generation is memoized per
//! seed behind [`OnceLock`] slots: whichever task reaches a seed first
//! builds its input, every other algorithm at that seed reuses it, and all
//! algorithms therefore compete on identical inputs exactly as in the
//! sequential formulation. Results land in grid order, making
//! [`collect_panel`] output byte-identical to the sequential baseline.

use std::sync::OnceLock;

use edgerep_core::BoxedAlgorithm;
use edgerep_obs as obs;
use edgerep_testbed::{run_testbed, SimConfig, TestbedConfig};
use edgerep_workload::{generate_instance, WorkloadParams};
use serde::{Deserialize, Serialize};

use crate::parallel::par_map;
use crate::stats::Summary;

/// One algorithm's aggregated metrics at one figure point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgResult {
    /// Algorithm display name (e.g. `"Appro-G"`).
    pub name: String,
    /// Volume of datasets demanded by admitted queries, GB.
    pub volume: Summary,
    /// System throughput (admitted / total).
    pub throughput: Summary,
}

/// Bumps the per-point runner counters: one point, `seeds` repetitions,
/// `seeds × panel` executed panel runs (the actual scheduled tasks).
fn count_point(seeds: usize, panel: usize) {
    obs::counter("runner.points").inc();
    obs::counter("runner.seeds").add(seeds as u64);
    obs::counter("runner.seed_runs").add((seeds * panel) as u64);
}

/// Runs `cell(row, col)` over the full `rows × cols` grid as one flat
/// parallel task list and reshapes the results into row-major nested
/// vectors (`out[row][col]`), identical to the sequential nested loops.
/// The panel runners call it as seeds × algorithms; the extension sweeps
/// (`crate::extensions`) as parameter-values × seeds.
pub(crate) fn run_grid<R, F>(rows: usize, cols: usize, cell: F) -> Vec<Vec<R>>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let tasks: Vec<(usize, usize)> = (0..rows)
        .flat_map(|r| (0..cols).map(move |c| (r, c)))
        .collect();
    let flat = par_map(&tasks, |&(r, c)| {
        let _task_span = obs::span("runner", "runner.task");
        cell(r, c)
    });
    let mut flat = flat.into_iter();
    (0..rows)
        .map(|_| (0..cols).map(|_| flat.next().expect("grid-sized output")).collect())
        .collect()
}

/// Evaluates a simulation panel at one parameter point over `seeds`
/// seeded topologies (the paper uses 15). Every algorithm sees the *same*
/// instances; every returned solution is validated.
pub fn run_simulation_point(
    params: &WorkloadParams,
    panel: &[BoxedAlgorithm],
    seeds: usize,
) -> Vec<AlgResult> {
    assert!(seeds >= 1, "need at least one repetition");
    if panel.is_empty() {
        return Vec::new();
    }
    let _span = obs::span("runner", "runner.simulation_point");
    count_point(seeds, panel.len());
    // Each seed's instance is generated once, by whichever of the seed's
    // panel tasks gets there first; `OnceLock` blocks the rest until it is
    // ready, so every algorithm solves the identical instance.
    let instances: Vec<OnceLock<_>> = (0..seeds).map(|_| OnceLock::new()).collect();
    let per_seed: Vec<Vec<(f64, f64)>> = run_grid(seeds, panel.len(), |seed, ai| {
        let inst = instances[seed].get_or_init(|| generate_instance(params, seed as u64));
        let alg = &panel[ai];
        let sol = alg.solve(inst);
        sol.validate(inst).unwrap_or_else(|e| {
            panic!("{} produced an infeasible solution: {e:?}", alg.name())
        });
        (sol.admitted_volume(inst), sol.throughput(inst))
    });
    collect_panel(panel.iter().map(|a| a.name()), &per_seed)
}

/// Evaluates a testbed panel: each seed builds a fresh world and runs the
/// full discrete-event experiment; metrics are the *measured* volume and
/// throughput (queries that actually met their deadline).
pub fn run_testbed_point(
    cfg: &TestbedConfig,
    panel: &[BoxedAlgorithm],
    seeds: usize,
    sim: &SimConfig,
) -> Vec<AlgResult> {
    assert!(seeds >= 1, "need at least one repetition");
    if panel.is_empty() {
        return Vec::new();
    }
    let _span = obs::span("runner", "runner.testbed_point");
    count_point(seeds, panel.len());
    let worlds: Vec<OnceLock<_>> = (0..seeds).map(|_| OnceLock::new()).collect();
    let per_seed: Vec<Vec<(f64, f64)>> = run_grid(seeds, panel.len(), |seed, ai| {
        let world =
            worlds[seed].get_or_init(|| edgerep_testbed::build_testbed_instance(cfg, seed as u64));
        let sim_cfg = SimConfig {
            seed: seed as u64,
            ..*sim
        };
        let report = run_testbed(panel[ai].as_ref(), world, &sim_cfg);
        (report.measured_volume, report.measured_throughput)
    });
    collect_panel(panel.iter().map(|a| a.name()), &per_seed)
}

/// Transposes per-seed metric rows into per-algorithm summaries.
fn collect_panel<'a>(
    names: impl Iterator<Item = &'a str>,
    per_seed: &[Vec<(f64, f64)>],
) -> Vec<AlgResult> {
    names
        .enumerate()
        .map(|(ai, name)| {
            let volumes: Vec<f64> = per_seed.iter().map(|row| row[ai].0).collect();
            let throughputs: Vec<f64> = per_seed.iter().map(|row| row[ai].1).collect();
            AlgResult {
                name: name.to_owned(),
                volume: Summary::of(&volumes),
                throughput: Summary::of(&throughputs),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgerep_core::{simulation_panel, special_panel, PlacementAlgorithm};
    use edgerep_model::{ComputeNodeId, DatasetId, Instance, Solution};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn simulation_point_aggregates_panel() {
        let params = WorkloadParams {
            query_count: (10, 20),
            ..Default::default()
        };
        let results = run_simulation_point(&params, &simulation_panel(), 3);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].name, "Appro-G");
        assert_eq!(results[1].name, "Greedy-G");
        assert_eq!(results[2].name, "Graph-G");
        for r in &results {
            assert_eq!(r.volume.n, 3);
            assert!(r.volume.mean >= 0.0);
            assert!(r.throughput.mean >= 0.0 && r.throughput.mean <= 1.0);
        }
    }

    #[test]
    fn deterministic_across_calls() {
        // The special panel requires single-dataset queries (Fig. 2).
        let params = WorkloadParams {
            query_count: (10, 15),
            ..Default::default()
        }
        .with_max_datasets_per_query(1);
        let a = run_simulation_point(&params, &special_panel(), 2);
        let b = run_simulation_point(&params, &special_panel(), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn flattened_grid_matches_sequential_baseline() {
        // The flattened seed × algorithm schedule must reproduce the
        // pre-flatten sequential path byte for byte: same instances, same
        // per-cell metrics, same aggregation.
        let params = WorkloadParams {
            query_count: (10, 15),
            ..Default::default()
        }
        .with_max_datasets_per_query(1);
        let panel = special_panel();
        let seeds = 3usize;
        let flattened = run_simulation_point(&params, &panel, seeds);
        let per_seed: Vec<Vec<(f64, f64)>> = (0..seeds as u64)
            .map(|seed| {
                let inst = generate_instance(&params, seed);
                panel
                    .iter()
                    .map(|alg| {
                        let sol = alg.solve(&inst);
                        (sol.admitted_volume(&inst), sol.throughput(&inst))
                    })
                    .collect()
            })
            .collect();
        let sequential = collect_panel(panel.iter().map(|a| a.name()), &per_seed);
        assert_eq!(flattened, sequential);
    }

    #[test]
    fn testbed_point_runs() {
        let cfg = TestbedConfig {
            query_count: 10,
            trace: edgerep_workload::mobile_trace::TraceConfig {
                users: 100,
                apps: 20,
                days: 5,
                ..Default::default()
            },
            windows: 4,
            ..Default::default()
        };
        let panel: Vec<BoxedAlgorithm> = vec![
            Box::new(edgerep_core::appro::ApproG::default()),
            Box::new(edgerep_core::popularity::Popularity::general()),
        ];
        let results = run_testbed_point(&cfg, &panel, 2, &SimConfig::default());
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.throughput.mean <= 1.0));
    }

    /// Returns a solution with a replica on a node id far outside the
    /// cloud, which `Solution::validate` rejects as `UnknownReplicaNode`.
    struct Broken;

    impl PlacementAlgorithm for Broken {
        fn name(&self) -> &'static str {
            "Broken"
        }
        fn solve(&self, inst: &Instance) -> Solution {
            let mut sol = Solution::empty(inst);
            sol.place_replica(DatasetId(0), ComputeNodeId(u32::MAX));
            sol
        }
    }

    #[test]
    fn infeasible_solution_panic_message_survives_the_scheduler() {
        // The headline bugfix: the original "X produced an infeasible
        // solution" diagnostic must reach the caller verbatim, not the
        // scope-join `.expect` text the old par_map substituted.
        let params = WorkloadParams {
            query_count: (10, 15),
            ..Default::default()
        };
        let panel: Vec<BoxedAlgorithm> = vec![
            Box::new(edgerep_core::appro::ApproG::default()),
            Box::new(Broken),
        ];
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_simulation_point(&params, &panel, 2)
        }))
        .expect_err("the Broken algorithm must fail validation");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload must be the runner's formatted String");
        assert!(
            msg.contains("Broken produced an infeasible solution"),
            "original diagnostic lost, got: {msg}"
        );
        assert!(
            msg.contains("UnknownReplicaNode"),
            "validation detail lost, got: {msg}"
        );
    }

    #[test]
    fn empty_panel_yields_no_results() {
        let params = WorkloadParams {
            query_count: (5, 10),
            ..Default::default()
        };
        assert!(run_simulation_point(&params, &[], 2).is_empty());
    }
}
