//! Panel evaluation over seeded repetitions.

use edgerep_core::BoxedAlgorithm;
use edgerep_obs as obs;
use edgerep_testbed::{run_testbed, SimConfig, TestbedConfig};
use edgerep_workload::{generate_instance, WorkloadParams};
use serde::{Deserialize, Serialize};

use crate::parallel::par_map;
use crate::stats::Summary;

/// One algorithm's aggregated metrics at one figure point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlgResult {
    /// Algorithm display name (e.g. `"Appro-G"`).
    pub name: String,
    /// Volume of datasets demanded by admitted queries, GB.
    pub volume: Summary,
    /// System throughput (admitted / total).
    pub throughput: Summary,
}

/// Evaluates a simulation panel at one parameter point over `seeds`
/// seeded topologies (the paper uses 15). Every algorithm sees the *same*
/// instances; every returned solution is validated.
pub fn run_simulation_point(
    params: &WorkloadParams,
    panel: &[BoxedAlgorithm],
    seeds: usize,
) -> Vec<AlgResult> {
    assert!(seeds >= 1, "need at least one repetition");
    let _span = obs::span("runner", "runner.simulation_point");
    obs::counter("runner.points").inc();
    obs::counter("runner.seed_runs").add(seeds as u64);
    let seed_list: Vec<u64> = (0..seeds as u64).collect();
    // One parallel task per seed: generates the instance once and runs the
    // whole panel on it, so algorithms always compete on identical inputs.
    let per_seed: Vec<Vec<(f64, f64)>> = par_map(&seed_list, |&seed| {
        let _seed_span = obs::span("runner", "runner.seed");
        let inst = generate_instance(params, seed);
        panel
            .iter()
            .map(|alg| {
                let sol = alg.solve(&inst);
                sol.validate(&inst).unwrap_or_else(|e| {
                    panic!("{} produced an infeasible solution: {e:?}", alg.name())
                });
                (sol.admitted_volume(&inst), sol.throughput(&inst))
            })
            .collect()
    });
    collect_panel(panel.iter().map(|a| a.name()), &per_seed)
}

/// Evaluates a testbed panel: each seed builds a fresh world and runs the
/// full discrete-event experiment; metrics are the *measured* volume and
/// throughput (queries that actually met their deadline).
pub fn run_testbed_point(
    cfg: &TestbedConfig,
    panel: &[BoxedAlgorithm],
    seeds: usize,
    sim: &SimConfig,
) -> Vec<AlgResult> {
    assert!(seeds >= 1, "need at least one repetition");
    let _span = obs::span("runner", "runner.testbed_point");
    obs::counter("runner.points").inc();
    obs::counter("runner.seed_runs").add(seeds as u64);
    let seed_list: Vec<u64> = (0..seeds as u64).collect();
    let per_seed: Vec<Vec<(f64, f64)>> = par_map(&seed_list, |&seed| {
        let _seed_span = obs::span("runner", "runner.seed");
        let world = edgerep_testbed::build_testbed_instance(cfg, seed);
        let sim_cfg = SimConfig { seed, ..*sim };
        panel
            .iter()
            .map(|alg| {
                let report = run_testbed(alg.as_ref(), &world, &sim_cfg);
                (report.measured_volume, report.measured_throughput)
            })
            .collect()
    });
    collect_panel(panel.iter().map(|a| a.name()), &per_seed)
}

/// Transposes per-seed metric rows into per-algorithm summaries.
fn collect_panel<'a>(
    names: impl Iterator<Item = &'a str>,
    per_seed: &[Vec<(f64, f64)>],
) -> Vec<AlgResult> {
    names
        .enumerate()
        .map(|(ai, name)| {
            let volumes: Vec<f64> = per_seed.iter().map(|row| row[ai].0).collect();
            let throughputs: Vec<f64> = per_seed.iter().map(|row| row[ai].1).collect();
            AlgResult {
                name: name.to_owned(),
                volume: Summary::of(&volumes),
                throughput: Summary::of(&throughputs),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgerep_core::{simulation_panel, special_panel};

    #[test]
    fn simulation_point_aggregates_panel() {
        let params = WorkloadParams {
            query_count: (10, 20),
            ..Default::default()
        };
        let results = run_simulation_point(&params, &simulation_panel(), 3);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].name, "Appro-G");
        assert_eq!(results[1].name, "Greedy-G");
        assert_eq!(results[2].name, "Graph-G");
        for r in &results {
            assert_eq!(r.volume.n, 3);
            assert!(r.volume.mean >= 0.0);
            assert!(r.throughput.mean >= 0.0 && r.throughput.mean <= 1.0);
        }
    }

    #[test]
    fn deterministic_across_calls() {
        // The special panel requires single-dataset queries (Fig. 2).
        let params = WorkloadParams {
            query_count: (10, 15),
            ..Default::default()
        }
        .with_max_datasets_per_query(1);
        let a = run_simulation_point(&params, &special_panel(), 2);
        let b = run_simulation_point(&params, &special_panel(), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn testbed_point_runs() {
        let cfg = TestbedConfig {
            query_count: 10,
            trace: edgerep_workload::mobile_trace::TraceConfig {
                users: 100,
                apps: 20,
                days: 5,
                ..Default::default()
            },
            windows: 4,
            ..Default::default()
        };
        let panel: Vec<BoxedAlgorithm> = vec![
            Box::new(edgerep_core::appro::ApproG::default()),
            Box::new(edgerep_core::popularity::Popularity::general()),
        ];
        let results = run_testbed_point(&cfg, &panel, 2, &SimConfig::default());
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.throughput.mean <= 1.0));
    }
}
