//! Sample statistics for experiment aggregation.

use serde::{Deserialize, Serialize};

/// Summary of a sample: the paper plots means over 15 topologies; the
/// harness additionally reports dispersion so EXPERIMENTS.md can show
/// confidence intervals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for n < 2).
    pub std_dev: f64,
    /// Half-width of the 95% normal-approximation confidence interval.
    pub ci95: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes a slice of samples.
    ///
    /// # Panics
    /// Panics on an empty slice or non-finite samples — experiment code
    /// always has at least one repetition.
    pub fn of(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize zero samples");
        assert!(
            samples.iter().all(|s| s.is_finite()),
            "non-finite sample in {samples:?}"
        );
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        let std_dev = var.sqrt();
        let ci95 = if n < 2 {
            0.0
        } else {
            1.96 * std_dev / (n as f64).sqrt()
        };
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            n,
            mean,
            std_dev,
            ci95,
            min,
            max,
        }
    }

    /// `mean ± ci95` formatted for tables.
    pub fn display_ci(&self) -> String {
        format!("{:.2} ± {:.2}", self.mean, self.ci95)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample() {
        let s = Summary::of(&[4.2]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 4.2);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!(s.min, 4.2);
        assert_eq!(s.max, 4.2);
    }

    #[test]
    fn known_sample_statistics() {
        // Sample: 2, 4, 4, 4, 5, 5, 7, 9 — mean 5, sample std dev ~2.138.
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean, 5.0);
        assert!((s.std_dev - 2.1380899).abs() < 1e-6);
        assert!((s.ci95 - 1.96 * 2.1380899 / 8f64.sqrt()).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn constant_sample_has_zero_spread() {
        let s = Summary::of(&[3.0; 10]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_rejected() {
        Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn display_format() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert!(s.display_ci().starts_with("2.00 ± "));
    }
}
