//! End-to-end tests of the `edgerep` and `repro` binaries.

use std::process::Command;

fn edgerep() -> Command {
    Command::new(env!("CARGO_BIN_EXE_edgerep"))
}

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn gen_inspect_solve_round_trip() {
    let dir = std::env::temp_dir().join(format!("edgerep-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst = dir.join("inst.json");

    let out = edgerep()
        .args([
            "gen",
            "--seed",
            "3",
            "--network-size",
            "32",
            "--k",
            "2",
            "-o",
            inst.to_str().unwrap(),
        ])
        .output()
        .expect("gen runs");
    assert!(out.status.success(), "gen failed: {out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("32 nodes"));

    let out = edgerep()
        .args(["inspect", "-i", inst.to_str().unwrap()])
        .output()
        .expect("inspect runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("edge cloud:"));
    assert!(text.contains("K = 2"));

    let out = edgerep()
        .args(["solve", "-i", inst.to_str().unwrap(), "--alg", "appro-g"])
        .output()
        .expect("solve runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("Appro-G"));

    // JSON metrics mode parses as JSON.
    let out = edgerep()
        .args([
            "solve",
            "-i",
            inst.to_str().unwrap(),
            "--alg",
            "greedy-g",
            "--metrics-json",
        ])
        .output()
        .expect("solve json runs");
    assert!(out.status.success());
    let line = String::from_utf8_lossy(&out.stdout);
    let parsed: serde_json::Value =
        serde_json::from_str(line.lines().next().unwrap()).expect("valid JSON");
    assert_eq!(parsed["algorithm"], "Greedy-G");
    assert!(parsed["metrics"]["admitted_volume"].is_number());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn solve_rejects_unknown_algorithm() {
    let dir = std::env::temp_dir().join(format!("edgerep-cli-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst = dir.join("inst.json");
    edgerep()
        .args(["gen", "--seed", "1", "-o", inst.to_str().unwrap()])
        .output()
        .unwrap();
    let out = edgerep()
        .args(["solve", "-i", inst.to_str().unwrap(), "--alg", "nonsense"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gen_without_output_fails() {
    let out = edgerep().args(["gen", "--seed", "1"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn inspect_rejects_garbage_file() {
    let dir = std::env::temp_dir().join(format!("edgerep-cli-garbage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.json");
    std::fs::write(&path, "{not json").unwrap();
    let out = edgerep()
        .args(["inspect", "-i", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn inspect_zero_query_instance_prints_na_deadlines() {
    let dir = std::env::temp_dir().join(format!("edgerep-cli-noq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst = dir.join("inst.json");
    let out = edgerep()
        .args(["gen", "--seed", "5", "-o", inst.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "gen failed: {out:?}");
    // The generator never emits zero queries, so strip them from the spec.
    let mut spec: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&inst).unwrap()).unwrap();
    spec["queries"] = serde_json::json!([]);
    std::fs::write(&inst, spec.to_string()).unwrap();

    let out = edgerep()
        .args(["inspect", "-i", inst.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "inspect failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        text.contains("deadlines: n/a (no queries)"),
        "expected n/a deadlines, got:\n{text}"
    );
    assert!(!text.contains("inf"), "no infinities leak out:\n{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn solve_trace_writes_parseable_ndjson_with_spans_and_rejections() {
    let dir = std::env::temp_dir().join(format!("edgerep-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst = dir.join("inst.json");
    let trace = dir.join("out.ndjson");
    let out = edgerep()
        .args([
            "gen",
            "--seed",
            "7",
            "--network-size",
            "40",
            "-o",
            inst.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "gen failed: {out:?}");

    let out = edgerep()
        .args([
            "solve",
            "-i",
            inst.to_str().unwrap(),
            "--alg",
            "appro-g",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "solve --trace failed: {out:?}");

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(!text.trim().is_empty(), "trace file is empty");
    let lines: Vec<serde_json::Value> = text
        .lines()
        .map(|l| {
            serde_json::from_str(l)
                .unwrap_or_else(|e| panic!("trace line is not valid JSON ({e}): {l}"))
        })
        .collect();
    // Every event carries the NDJSON envelope.
    for v in &lines {
        assert!(v["ts_us"].is_u64(), "missing ts_us: {v}");
        assert!(v["target"].is_string(), "missing target: {v}");
        assert!(v["event"].is_string(), "missing event: {v}");
        assert!(v["fields"].is_object(), "missing fields: {v}");
    }
    // Per-reason admission rejection counts appear both as the solver's
    // summary event and as registry counter dumps.
    assert!(
        lines.iter().any(|v| v["event"] == "admission.summary"
            && v["fields"]["reject_deadline"].is_u64()
            && v["fields"]["reject_capacity"].is_u64()
            && v["fields"]["reject_replica_budget"].is_u64()),
        "no admission.summary event in trace"
    );
    assert!(
        lines.iter().any(|v| v["event"] == "counter"
            && v["fields"]["name"]
                .as_str()
                .is_some_and(|n| n.starts_with("admission.reject."))),
        "no admission.reject.* counter dump in trace"
    );
    // Per-phase span timings: live span.close events plus the histogram dump.
    assert!(
        lines.iter().any(|v| v["event"] == "span.close"
            && v["span"] == "appro.run"
            && v["fields"]["duration_us"].is_u64()),
        "no appro.run span.close event in trace"
    );
    assert!(
        lines.iter().any(|v| v["event"] == "histogram"
            && v["fields"]["name"] == "span.appro.run_us"
            && v["fields"]["count"].as_u64().unwrap_or(0) >= 1),
        "no span.appro.run_us histogram dump in trace"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn solve_stats_prints_registry_summary() {
    let dir = std::env::temp_dir().join(format!("edgerep-cli-stats-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst = dir.join("inst.json");
    edgerep()
        .args(["gen", "--seed", "2", "-o", inst.to_str().unwrap()])
        .output()
        .unwrap();
    let out = edgerep()
        .args([
            "solve",
            "-i",
            inst.to_str().unwrap(),
            "--alg",
            "greedy-g",
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "solve --stats failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("--- metrics: Greedy-G ---"), "{text}");
    assert!(text.contains("admission.checks"), "{text}");
    assert!(text.contains("span.greedy.solve_us"), "{text}");
    // Span timings live in their own section with quantile columns.
    assert!(text.contains("p50_us"), "{text}");
    assert!(text.contains("p95_us"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn solve_profile_writes_folded_stacks_and_self_table() {
    let dir = std::env::temp_dir().join(format!("edgerep-cli-prof-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst = dir.join("inst.json");
    let folded = dir.join("p.txt");
    edgerep()
        .args([
            "gen",
            "--seed",
            "4",
            "--network-size",
            "40",
            "-o",
            inst.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let out = edgerep()
        .args([
            "solve",
            "-i",
            inst.to_str().unwrap(),
            "--alg",
            "appro-g",
            "--profile",
            folded.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "solve --profile failed: {out:?}");
    let text = std::fs::read_to_string(&folded).expect("folded stacks written");
    assert!(!text.trim().is_empty(), "folded stacks file is empty");
    // Every line is `semicolon;separated;path self_us`.
    for line in text.lines() {
        let (path, us) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!path.is_empty(), "{line}");
        us.parse::<u64>()
            .unwrap_or_else(|_| panic!("bad self_us in {line}"));
    }
    // The per-iteration candidate scan nests under the solver run.
    assert!(
        text.lines()
            .any(|l| l.starts_with("appro.run;appro.select ")),
        "appro.select must nest under appro.run:\n{text}"
    );
    // The stdout table reports the tree with self/cumulative columns.
    let table = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(table.contains("self_us"), "{table}");
    assert!(table.contains("appro.select"), "{table}");

    // Flag validation matches --trace.
    let out = edgerep()
        .args(["solve", "-i", inst.to_str().unwrap(), "--profile"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--profile needs FILE"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_profile_top_self_frame_is_a_solver_span() {
    let dir = std::env::temp_dir().join(format!("edgerep-repro-prof-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let folded = dir.join("fig8.folded");
    let out = repro()
        .args([
            "fig8",
            "--seeds",
            "1",
            "--profile",
            folded.to_str().unwrap(),
        ])
        .output()
        .expect("repro --profile runs");
    assert!(out.status.success(), "repro --profile failed: {out:?}");
    let text = std::fs::read_to_string(&folded).expect("folded stacks written");
    // The solver's candidate scan must be visible in the tree...
    assert!(
        text.lines().any(|l| l
            .rsplit_once(' ')
            .unwrap()
            .0
            .ends_with("appro.run;appro.select")),
        "no appro.select frame in the fig8 profile:\n{text}"
    );
    // ...and the frame with the largest self time must be a named unit of
    // work (the solver scan, the analytics engine, world generation), not
    // an event-loop or scheduler catch-all.
    let top = text
        .lines()
        .max_by_key(|l| {
            l.rsplit_once(' ')
                .and_then(|(_, us)| us.parse::<u64>().ok())
                .unwrap_or(0)
        })
        .expect("non-empty profile");
    let path = top.rsplit_once(' ').unwrap().0;
    let leaf = path.rsplit(';').next().unwrap();
    assert!(
        !matches!(
            leaf,
            "sim.loop" | "sim.run" | "runner.task" | "runner.testbed_point"
        ),
        "top self-time frame is the catch-all {leaf} (path {path}):\n{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn solve_trace_without_file_fails() {
    let dir = std::env::temp_dir().join(format!("edgerep-cli-tracebad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst = dir.join("inst.json");
    edgerep()
        .args(["gen", "--seed", "1", "-o", inst.to_str().unwrap()])
        .output()
        .unwrap();
    let out = edgerep()
        .args(["solve", "-i", inst.to_str().unwrap(), "--trace"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--trace needs FILE"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_renders_topology_figures_instantly() {
    let out = repro().args(["fig1", "fig6"]).output().expect("repro runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("two-tier edge cloud"));
    assert!(text.contains("SGP DC"));
}

#[test]
fn repro_trace_writes_ndjson_ending_in_registry_dump() {
    let dir = std::env::temp_dir().join(format!("edgerep-repro-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("fig.ndjson");
    let out = repro()
        .args(["fig2", "--seeds", "1", "--trace", trace.to_str().unwrap()])
        .output()
        .expect("repro --trace runs");
    assert!(out.status.success(), "repro --trace failed: {out:?}");

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let lines: Vec<serde_json::Value> = text
        .lines()
        .map(|l| {
            serde_json::from_str(l)
                .unwrap_or_else(|e| panic!("trace line is not valid JSON ({e}): {l}"))
        })
        .collect();
    assert!(!lines.is_empty(), "trace file is empty");
    // The scheduler's per-task spans are visible in the stream...
    assert!(
        lines
            .iter()
            .any(|v| v["event"] == "span.close" && v["span"] == "runner.task"),
        "no runner.task span.close event in trace"
    );
    // ...the figure closes with a registry dump tagged with its id...
    assert!(
        lines
            .iter()
            .any(|v| v["event"] == "counter" && v["fields"]["figure"] == "fig2"),
        "no fig2-tagged counter dump in trace"
    );
    // ...and the file's very last line is the dump completion marker, so
    // a truncated regeneration is distinguishable from a finished one.
    let last = lines.last().unwrap();
    assert_eq!(
        last["event"], "dump.done",
        "trace must end in dump.done: {last}"
    );
    assert_eq!(last["fields"]["figure"], "fig2");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_help_and_bad_args() {
    let out = repro().args(["--help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage"));
    let out = repro().args(["figZZ"]).output().unwrap();
    assert!(!out.status.success());
}
