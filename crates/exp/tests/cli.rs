//! End-to-end tests of the `edgerep` and `repro` binaries.

use std::process::Command;

fn edgerep() -> Command {
    Command::new(env!("CARGO_BIN_EXE_edgerep"))
}

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn gen_inspect_solve_round_trip() {
    let dir = std::env::temp_dir().join(format!("edgerep-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst = dir.join("inst.json");

    let out = edgerep()
        .args([
            "gen",
            "--seed",
            "3",
            "--network-size",
            "32",
            "--k",
            "2",
            "-o",
            inst.to_str().unwrap(),
        ])
        .output()
        .expect("gen runs");
    assert!(out.status.success(), "gen failed: {out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("32 nodes"));

    let out = edgerep()
        .args(["inspect", "-i", inst.to_str().unwrap()])
        .output()
        .expect("inspect runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("edge cloud:"));
    assert!(text.contains("K = 2"));

    let out = edgerep()
        .args(["solve", "-i", inst.to_str().unwrap(), "--alg", "appro-g"])
        .output()
        .expect("solve runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("Appro-G"));

    // JSON metrics mode parses as JSON.
    let out = edgerep()
        .args([
            "solve",
            "-i",
            inst.to_str().unwrap(),
            "--alg",
            "greedy-g",
            "--metrics-json",
        ])
        .output()
        .expect("solve json runs");
    assert!(out.status.success());
    let line = String::from_utf8_lossy(&out.stdout);
    let parsed: serde_json::Value =
        serde_json::from_str(line.lines().next().unwrap()).expect("valid JSON");
    assert_eq!(parsed["algorithm"], "Greedy-G");
    assert!(parsed["metrics"]["admitted_volume"].is_number());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn solve_rejects_unknown_algorithm() {
    let dir = std::env::temp_dir().join(format!("edgerep-cli-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst = dir.join("inst.json");
    edgerep()
        .args(["gen", "--seed", "1", "-o", inst.to_str().unwrap()])
        .output()
        .unwrap();
    let out = edgerep()
        .args(["solve", "-i", inst.to_str().unwrap(), "--alg", "nonsense"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown algorithm"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn gen_without_output_fails() {
    let out = edgerep().args(["gen", "--seed", "1"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn inspect_rejects_garbage_file() {
    let dir = std::env::temp_dir().join(format!("edgerep-cli-garbage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.json");
    std::fs::write(&path, "{not json").unwrap();
    let out = edgerep()
        .args(["inspect", "-i", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_renders_topology_figures_instantly() {
    let out = repro().args(["fig1", "fig6"]).output().expect("repro runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("two-tier edge cloud"));
    assert!(text.contains("SGP DC"));
}

#[test]
fn repro_help_and_bad_args() {
    let out = repro().args(["--help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage"));
    let out = repro().args(["figZZ"]).output().unwrap();
    assert!(!out.status.success());
}
