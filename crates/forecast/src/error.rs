//! Forecast scoring: volume-weighted error metrics.

use crate::forecaster::DemandForecast;
use crate::history::EpochDemand;

/// Weighted mean absolute percentage error of a forecast against the
/// realized demand: `Σ|actual − predicted| / Σ actual` over the union of
/// keys. Weighting by realized volume means mispredicting a 100 GB
/// hotspot costs 100× a 1 GB cell — the right loss for replication,
/// where bytes moved and bytes missed are what matter.
///
/// Edge cases: if nothing was realized (`Σ actual = 0`) the error is 0
/// when nothing was predicted either, and `+∞` when phantom demand was
/// predicted.
pub fn wmape(actual: &EpochDemand, predicted: &DemandForecast) -> f64 {
    let mut abs_err = 0.0;
    // Keys with realized demand (predicted may be 0 there).
    for (key, a) in actual.iter() {
        abs_err += (a - predicted.volume(key)).abs();
    }
    // Phantom predictions: keys forecast but not realized.
    for (key, p) in predicted.iter() {
        if actual.volume(key) == 0.0 {
            abs_err += p;
        }
    }
    let denom = actual.total_volume();
    if denom > 0.0 {
        abs_err / denom
    } else if abs_err > 0.0 {
        f64::INFINITY
    } else {
        0.0
    }
}

/// Mean absolute error in GB per key, over the union of realized and
/// predicted keys. Unweighted companion to [`wmape`] for absolute-scale
/// reporting.
pub fn mean_abs_error(actual: &EpochDemand, predicted: &DemandForecast) -> f64 {
    let mut abs_err = 0.0;
    let mut keys = 0usize;
    for (key, a) in actual.iter() {
        abs_err += (a - predicted.volume(key)).abs();
        keys += 1;
    }
    for (key, p) in predicted.iter() {
        if actual.volume(key) == 0.0 {
            abs_err += p;
            keys += 1;
        }
    }
    if keys == 0 {
        0.0
    } else {
        abs_err / keys as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::DemandKey;

    fn k(h: u32, d: u32) -> DemandKey {
        DemandKey::new(h, d)
    }

    #[test]
    fn perfect_forecast_scores_zero() {
        let actual: EpochDemand = [(k(0, 0), 4.0), (k(1, 1), 6.0)].into_iter().collect();
        let predicted = DemandForecast::from_entries([(k(0, 0), 4.0), (k(1, 1), 6.0)]);
        assert_eq!(wmape(&actual, &predicted), 0.0);
        assert_eq!(mean_abs_error(&actual, &predicted), 0.0);
    }

    #[test]
    fn weighted_by_realized_volume() {
        let actual: EpochDemand = [(k(0, 0), 9.0), (k(1, 1), 1.0)].into_iter().collect();
        // Missed the small key entirely, nailed the big one.
        let predicted = DemandForecast::from_entries([(k(0, 0), 9.0)]);
        assert!((wmape(&actual, &predicted) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn phantom_predictions_are_penalized() {
        let actual: EpochDemand = [(k(0, 0), 5.0)].into_iter().collect();
        let predicted = DemandForecast::from_entries([(k(0, 0), 5.0), (k(7, 7), 5.0)]);
        assert!((wmape(&actual, &predicted) - 1.0).abs() < 1e-12);
        assert!((mean_abs_error(&actual, &predicted) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_epoch_edge_cases() {
        let actual = EpochDemand::new();
        assert_eq!(wmape(&actual, &DemandForecast::default()), 0.0);
        let phantom = DemandForecast::from_entries([(k(0, 0), 1.0)]);
        assert_eq!(wmape(&actual, &phantom), f64::INFINITY);
    }
}
