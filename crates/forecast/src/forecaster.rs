//! The [`Forecaster`] trait and the [`DemandForecast`] it produces.

use edgerep_obs as obs;

use crate::history::{DemandHistory, DemandKey};

/// Predicted per-key demanded volume for the *next* epoch, sorted by key.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DemandForecast {
    entries: Vec<(DemandKey, f64)>,
}

impl DemandForecast {
    /// Builds a forecast from `(key, volume)` pairs: duplicates sum,
    /// non-finite and negative predictions clamp to 0, zero entries are
    /// dropped so iteration touches only keys with predicted demand.
    pub fn from_entries(entries: impl IntoIterator<Item = (DemandKey, f64)>) -> Self {
        let mut acc: Vec<(DemandKey, f64)> = Vec::new();
        for (key, v) in entries {
            let v = if v.is_finite() { v.max(0.0) } else { 0.0 };
            match acc.binary_search_by(|(k, _)| k.cmp(&key)) {
                Ok(i) => acc[i].1 += v,
                Err(i) => acc.insert(i, (key, v)),
            }
        }
        acc.retain(|(_, v)| *v > 0.0);
        Self { entries: acc }
    }

    /// Predicted volume for `key` (0 when absent).
    pub fn volume(&self, key: DemandKey) -> f64 {
        self.entries
            .binary_search_by(|(k, _)| k.cmp(&key))
            .map(|i| self.entries[i].1)
            .unwrap_or(0.0)
    }

    /// Total predicted volume across keys.
    pub fn total_volume(&self) -> f64 {
        self.entries.iter().map(|(_, v)| v).sum()
    }

    /// Iterates `(key, volume)` in key order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (DemandKey, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of keys with non-zero predicted demand.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is predicted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A next-epoch demand predictor.
///
/// Implementors provide [`Forecaster::predict_series`] — predict the next
/// value of one key's volume series — and inherit a default
/// [`Forecaster::predict`] that applies it to every key in the history.
/// Predictors that need cross-key context (e.g.
/// [`crate::topk::TopKPopularity`]) override `predict` instead.
pub trait Forecaster {
    /// Display name (used as the series label in figures).
    fn name(&self) -> &'static str;

    /// Predicts the next value of one chronological series. An empty
    /// series must predict 0.
    fn predict_series(&self, series: &[f64]) -> f64;

    /// Predicts next-epoch demand for every key in `history`.
    ///
    /// Instrumentation: wraps the computation in a `forecast.predict`
    /// span, bumps the `forecast.predictions` counter, and emits a
    /// `forecast.done` trace event with the predicted key count and
    /// total volume (all under the `forecast` obs target).
    fn predict(&self, history: &DemandHistory) -> DemandForecast {
        let _span = obs::span("forecast", "forecast.predict");
        let forecast = DemandForecast::from_entries(
            history
                .keys()
                .into_iter()
                .map(|key| (key, self.predict_series(&history.series(key)))),
        );
        obs::counter("forecast.predictions").inc();
        obs::emit(
            "forecast",
            "forecast.predict",
            "forecast.done",
            &[
                ("forecaster", self.name().into()),
                ("history_epochs", history.len().into()),
                ("keys", forecast.len().into()),
                ("total_gb", forecast.total_volume().into()),
            ],
        );
        forecast
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::EpochDemand;

    fn k(h: u32, d: u32) -> DemandKey {
        DemandKey::new(h, d)
    }

    /// Predicts the last observed value (classic naive forecast).
    struct Naive;

    impl Forecaster for Naive {
        fn name(&self) -> &'static str {
            "naive"
        }
        fn predict_series(&self, series: &[f64]) -> f64 {
            series.last().copied().unwrap_or(0.0)
        }
    }

    #[test]
    fn forecast_normalizes_entries() {
        let f = DemandForecast::from_entries([
            (k(1, 0), 2.0),
            (k(0, 0), f64::NAN),
            (k(1, 0), 1.0),
            (k(2, 2), -5.0),
            (k(3, 3), 0.0),
        ]);
        assert_eq!(f.len(), 1);
        assert_eq!(f.volume(k(1, 0)), 3.0);
        assert_eq!(f.volume(k(0, 0)), 0.0);
        assert_eq!(f.total_volume(), 3.0);
    }

    #[test]
    fn default_predict_covers_every_key() {
        let mut h = DemandHistory::new(4);
        h.record([(k(0, 0), 1.0)].into_iter().collect::<EpochDemand>());
        h.record(
            [(k(0, 0), 2.0), (k(1, 1), 4.0)]
                .into_iter()
                .collect::<EpochDemand>(),
        );
        let f = Naive.predict(&h);
        assert_eq!(f.volume(k(0, 0)), 2.0);
        assert_eq!(f.volume(k(1, 1)), 4.0);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn empty_history_predicts_nothing() {
        let h = DemandHistory::new(4);
        assert!(Naive.predict(&h).is_empty());
    }
}
