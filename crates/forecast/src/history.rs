//! Demand history: per-epoch, per-(home, dataset) demanded-volume series.
//!
//! The forecasting layer never sees model types — observations arrive as
//! plain `(home, dataset)` index pairs with a demanded volume in GB, so
//! this crate stays dependency-free and buildable offline. Adapters in
//! `edgerep-testbed` (realized epoch instances) and `edgerep-workload`
//! (the synthetic mobile trace) produce [`EpochDemand`] records.
//!
//! [`DemandHistory`] retains the last `capacity` epochs in a compact ring
//! buffer: recording epoch `capacity + 1` overwrites the slot of epoch 0
//! in place, so a long-running controller holds a bounded window no
//! matter how many epochs it has seen.

/// One demand cell: a query home node and a demanded dataset, by dense
/// index (the model's `ComputeNodeId.0` and `DatasetId.0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DemandKey {
    /// Home compute-node index `h_m`.
    pub home: u32,
    /// Demanded dataset index `n`.
    pub dataset: u32,
}

impl DemandKey {
    /// Builds a key from raw indices.
    pub fn new(home: u32, dataset: u32) -> Self {
        Self { home, dataset }
    }
}

/// Aggregated demand of one epoch: total demanded volume (GB) per key,
/// kept sorted by key for deterministic iteration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EpochDemand {
    entries: Vec<(DemandKey, f64)>,
}

impl EpochDemand {
    /// An empty epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates `volume_gb` onto `key` (keys may be added in any
    /// order; duplicates sum).
    pub fn add(&mut self, key: DemandKey, volume_gb: f64) {
        assert!(
            volume_gb.is_finite() && volume_gb >= 0.0,
            "demand volume must be finite and non-negative, got {volume_gb}"
        );
        match self.entries.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => self.entries[i].1 += volume_gb,
            Err(i) => self.entries.insert(i, (key, volume_gb)),
        }
    }

    /// Demanded volume of `key` this epoch (0 when absent).
    pub fn volume(&self, key: DemandKey) -> f64 {
        self.entries
            .binary_search_by(|(k, _)| k.cmp(&key))
            .map(|i| self.entries[i].1)
            .unwrap_or(0.0)
    }

    /// Total demanded volume over all keys.
    pub fn total_volume(&self) -> f64 {
        self.entries.iter().map(|(_, v)| v).sum()
    }

    /// Iterates `(key, volume)` in key order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (DemandKey, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the epoch recorded no demand at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl FromIterator<(DemandKey, f64)> for EpochDemand {
    fn from_iter<I: IntoIterator<Item = (DemandKey, f64)>>(iter: I) -> Self {
        let mut e = EpochDemand::new();
        for (k, v) in iter {
            e.add(k, v);
        }
        e
    }
}

/// Ring buffer of the last `capacity` [`EpochDemand`] records.
#[derive(Debug, Clone)]
pub struct DemandHistory {
    /// Ring storage; `slots.len() <= capacity`.
    slots: Vec<EpochDemand>,
    capacity: usize,
    /// Index of the *oldest* retained epoch within `slots` (only
    /// meaningful once the ring is full and wrapping).
    head: usize,
    /// Total epochs ever recorded (≥ retained count).
    recorded: u64,
}

impl DemandHistory {
    /// Creates a history retaining at most `capacity` epochs.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "history needs at least one slot");
        Self {
            slots: Vec::with_capacity(capacity.min(64)),
            capacity,
            head: 0,
            recorded: 0,
        }
    }

    /// Records the next epoch, evicting the oldest once full.
    pub fn record(&mut self, epoch: EpochDemand) {
        if self.slots.len() < self.capacity {
            self.slots.push(epoch);
        } else {
            self.slots[self.head] = epoch;
            self.head = (self.head + 1) % self.capacity;
        }
        self.recorded += 1;
    }

    /// Number of retained epochs (≤ capacity).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no epoch has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total epochs ever recorded, including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// The `i`-th retained epoch in chronological order (0 = oldest).
    pub fn epoch(&self, i: usize) -> &EpochDemand {
        assert!(i < self.slots.len(), "epoch index out of range");
        &self.slots[(self.head + i) % self.slots.len().max(1)]
    }

    /// The most recently recorded epoch.
    pub fn latest(&self) -> Option<&EpochDemand> {
        (!self.is_empty()).then(|| self.epoch(self.len() - 1))
    }

    /// Sorted union of every key seen in the retained window.
    pub fn keys(&self) -> Vec<DemandKey> {
        let mut keys: Vec<DemandKey> = self
            .slots
            .iter()
            .flat_map(|e| e.iter().map(|(k, _)| k))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// The chronological volume series of one key over the retained
    /// window (epochs where the key is absent contribute 0).
    pub fn series(&self, key: DemandKey) -> Vec<f64> {
        (0..self.len()).map(|i| self.epoch(i).volume(key)).collect()
    }

    /// Total demanded volume of `key` over the retained window.
    pub fn cumulative_volume(&self, key: DemandKey) -> f64 {
        self.slots.iter().map(|e| e.volume(key)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(h: u32, d: u32) -> DemandKey {
        DemandKey::new(h, d)
    }

    #[test]
    fn epoch_demand_accumulates_and_sorts() {
        let mut e = EpochDemand::new();
        e.add(k(2, 0), 1.5);
        e.add(k(0, 1), 2.0);
        e.add(k(2, 0), 0.5);
        assert_eq!(e.len(), 2);
        assert_eq!(e.volume(k(2, 0)), 2.0);
        assert_eq!(e.volume(k(0, 1)), 2.0);
        assert_eq!(e.volume(k(9, 9)), 0.0);
        assert_eq!(e.total_volume(), 4.0);
        let keys: Vec<DemandKey> = e.iter().map(|(key, _)| key).collect();
        assert_eq!(keys, vec![k(0, 1), k(2, 0)]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn epoch_demand_rejects_negative_volume() {
        EpochDemand::new().add(k(0, 0), -1.0);
    }

    #[test]
    fn history_records_in_order() {
        let mut h = DemandHistory::new(4);
        for i in 0..3u32 {
            let mut e = EpochDemand::new();
            e.add(k(0, 0), f64::from(i));
            h.record(e);
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.recorded(), 3);
        assert_eq!(h.series(k(0, 0)), vec![0.0, 1.0, 2.0]);
        assert_eq!(h.latest().unwrap().volume(k(0, 0)), 2.0);
    }

    #[test]
    fn ring_evicts_oldest_epochs() {
        let mut h = DemandHistory::new(3);
        for i in 0..7u32 {
            let mut e = EpochDemand::new();
            e.add(k(1, 1), f64::from(i));
            h.record(e);
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.capacity(), 3);
        assert_eq!(h.recorded(), 7);
        // Epochs 4, 5, 6 survive, chronologically ordered.
        assert_eq!(h.series(k(1, 1)), vec![4.0, 5.0, 6.0]);
        assert_eq!(h.epoch(0).volume(k(1, 1)), 4.0);
    }

    #[test]
    fn keys_union_is_sorted_and_deduped() {
        let mut h = DemandHistory::new(8);
        h.record([(k(3, 0), 1.0), (k(0, 2), 1.0)].into_iter().collect());
        h.record([(k(0, 2), 2.0), (k(1, 1), 1.0)].into_iter().collect());
        assert_eq!(h.keys(), vec![k(0, 2), k(1, 1), k(3, 0)]);
        assert_eq!(h.series(k(1, 1)), vec![0.0, 1.0]);
        assert_eq!(h.cumulative_volume(k(0, 2)), 3.0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        DemandHistory::new(0);
    }
}
