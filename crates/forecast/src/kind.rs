//! [`ForecasterKind`]: a `Copy` tag naming a concrete forecaster
//! configuration, so policies (e.g. `ReplanPolicy::Predictive`) stay
//! plain-old-data while still selecting a boxed [`Forecaster`] at run
//! time.

use std::fmt;

use crate::forecaster::Forecaster;
use crate::seasonal::SeasonalNaive;
use crate::smoothing::{Ewma, Holt};
use crate::topk::TopKPopularity;

/// A nameable forecaster configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ForecasterKind {
    /// Period-`period` seasonal repeat ([`SeasonalNaive`]).
    SeasonalNaive {
        /// Season length in epochs.
        period: usize,
    },
    /// Level-only exponential smoothing with default α ([`Ewma`]).
    Ewma,
    /// Holt double-exponential smoothing with default α/β ([`Holt`]).
    Holt,
    /// Top-`k` popularity baseline ([`TopKPopularity`]).
    TopK {
        /// Keys retained in the forecast.
        k: usize,
    },
}

impl ForecasterKind {
    /// Instantiates the forecaster this kind names.
    pub fn build(self) -> Box<dyn Forecaster + Send + Sync> {
        match self {
            Self::SeasonalNaive { period } => Box::new(SeasonalNaive::new(period)),
            Self::Ewma => Box::new(Ewma::default()),
            Self::Holt => Box::new(Holt::default()),
            Self::TopK { k } => Box::new(TopKPopularity::new(k)),
        }
    }

    /// Short label for figure series and CSV columns.
    pub fn label(self) -> String {
        match self {
            Self::SeasonalNaive { period } => format!("seasonal{period}"),
            Self::Ewma => "ewma".to_string(),
            Self::Holt => "holt".to_string(),
            Self::TopK { k } => format!("top{k}"),
        }
    }
}

impl fmt::Display for ForecasterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{DemandHistory, DemandKey, EpochDemand};

    #[test]
    fn build_matches_kind() {
        assert_eq!(
            ForecasterKind::SeasonalNaive { period: 4 }.build().name(),
            "seasonal-naive"
        );
        assert_eq!(ForecasterKind::Ewma.build().name(), "ewma");
        assert_eq!(ForecasterKind::Holt.build().name(), "holt");
        assert_eq!(
            ForecasterKind::TopK { k: 8 }.build().name(),
            "topk-popularity"
        );
    }

    #[test]
    fn labels_are_compact() {
        assert_eq!(
            ForecasterKind::SeasonalNaive { period: 4 }.label(),
            "seasonal4"
        );
        assert_eq!(ForecasterKind::TopK { k: 32 }.to_string(), "top32");
    }

    #[test]
    fn built_forecasters_predict() {
        let mut h = DemandHistory::new(4);
        h.record(
            [(DemandKey::new(0, 0), 3.0)]
                .into_iter()
                .collect::<EpochDemand>(),
        );
        for kind in [
            ForecasterKind::SeasonalNaive { period: 2 },
            ForecasterKind::Ewma,
            ForecasterKind::Holt,
            ForecasterKind::TopK { k: 4 },
        ] {
            let f = kind.build().predict(&h);
            assert_eq!(f.volume(DemandKey::new(0, 0)), 3.0, "{kind}");
        }
    }
}
