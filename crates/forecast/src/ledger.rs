//! Transfer ledger: which (dataset, node) replica copies have already
//! been materialized, so prefetching never pays for the same copy twice.

use std::collections::BTreeSet;

use edgerep_obs as obs;

/// Tracks replica copies the predictive controller has ever paid to
/// materialize. The controller keeps evicted copies *cold* rather than
/// deleting them (edge storage for a dataset already shipped is sunk
/// cost), so a replica that rotates back onto a node it once occupied
/// costs nothing — only first-time materializations are charged. Origin
/// copies are preloaded for free, mirroring `migration_gb`'s convention
/// that origin placements move no bytes.
#[derive(Debug, Clone, Default)]
pub struct TransferLedger {
    /// Materialized `(dataset, node)` pairs, by dense index.
    paid: BTreeSet<(u32, u32)>,
    total_gb: f64,
}

impl TransferLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a copy that exists without any transfer (e.g. the
    /// dataset's origin node).
    pub fn preload(&mut self, dataset: u32, node: u32) {
        self.paid.insert((dataset, node));
    }

    /// Charges `gb` for materializing `dataset` on `node` unless that
    /// copy was already paid for. Returns `true` if bytes were charged
    /// (i.e. a real transfer must happen).
    pub fn charge(&mut self, dataset: u32, node: u32, gb: f64) -> bool {
        assert!(
            gb.is_finite() && gb >= 0.0,
            "transfer size must be finite and non-negative"
        );
        if self.paid.insert((dataset, node)) {
            self.total_gb += gb;
            obs::counter("forecast.prefetch_gb").add(gb.round() as u64);
            true
        } else {
            false
        }
    }

    /// Whether `dataset` has ever been materialized on `node`.
    pub fn contains(&self, dataset: u32, node: u32) -> bool {
        self.paid.contains(&(dataset, node))
    }

    /// Total GB charged across all first-time materializations.
    pub fn total_gb(&self) -> f64 {
        self.total_gb
    }

    /// Number of distinct materialized copies (including preloads).
    pub fn len(&self) -> usize {
        self.paid.len()
    }

    /// Whether nothing has been materialized or preloaded.
    pub fn is_empty(&self) -> bool {
        self.paid.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_charge_pays_repeat_is_free() {
        let mut l = TransferLedger::new();
        assert!(l.charge(0, 3, 10.0));
        assert!(!l.charge(0, 3, 10.0));
        assert_eq!(l.total_gb(), 10.0);
        assert!(l.contains(0, 3));
        assert!(!l.contains(0, 4));
    }

    #[test]
    fn preloaded_copies_are_never_charged() {
        let mut l = TransferLedger::new();
        l.preload(2, 7);
        assert!(!l.charge(2, 7, 50.0));
        assert_eq!(l.total_gb(), 0.0);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn distinct_pairs_accumulate() {
        let mut l = TransferLedger::new();
        assert!(l.is_empty());
        l.charge(0, 1, 2.0);
        l.charge(0, 2, 2.0);
        l.charge(1, 1, 3.0);
        assert_eq!(l.total_gb(), 7.0);
        assert_eq!(l.len(), 3);
    }
}
