//! # edgerep-forecast
//!
//! Demand forecasting for *predictive* proactive replication. The
//! paper's planners place replicas for a known query set; this crate
//! supplies what a production controller actually has — history — and
//! turns it into a prediction of next-epoch demand:
//!
//! - [`history`]: per-(home, dataset) demanded-volume time series in a
//!   bounded ring buffer ([`DemandHistory`] / [`EpochDemand`]).
//! - [`forecaster`]: the [`Forecaster`] trait and its [`DemandForecast`]
//!   output.
//! - [`seasonal`] / [`smoothing`] / [`topk`]: hand-rolled predictors —
//!   [`SeasonalNaive`], [`Ewma`], [`Holt`], [`TopKPopularity`] — behind
//!   the trait; [`ForecasterKind`] names a configuration as plain data.
//! - [`error`]: volume-weighted scoring ([`wmape`], [`mean_abs_error`]).
//! - [`profile`]: running means of query attributes ([`ProfileStore`])
//!   for synthesizing predicted instances.
//! - [`ledger`]: the [`TransferLedger`] that charges each (dataset,
//!   node) materialization exactly once, backing prefetch accounting.
//!
//! The crate is deliberately model-free: observations arrive as plain
//! `u32` index pairs, keeping the dependency closure at `edgerep-obs`
//! only (zero external deps, offline-buildable). Adapters that speak
//! `Instance`/`Solution` live in `edgerep-testbed::predict` and
//! `edgerep-workload::trace_history`.

#![warn(missing_docs)]

pub mod error;
pub mod forecaster;
pub mod history;
pub mod kind;
pub mod ledger;
pub mod profile;
pub mod seasonal;
pub mod smoothing;
pub mod topk;

pub use error::{mean_abs_error, wmape};
pub use forecaster::{DemandForecast, Forecaster};
pub use history::{DemandHistory, DemandKey, EpochDemand};
pub use kind::ForecasterKind;
pub use ledger::TransferLedger;
pub use profile::{ProfileStore, QueryProfile};
pub use seasonal::SeasonalNaive;
pub use smoothing::{Ewma, Holt};
pub use topk::TopKPopularity;
