//! Query profiles: running means of the non-volume query attributes
//! (compute rate, deadline, selectivity) needed to synthesize a
//! predicted instance. History forecasts *how much* volume each (home,
//! dataset) cell will demand; profiles answer *what the queries look
//! like* there.

use std::collections::BTreeMap;

use crate::history::DemandKey;

/// Mean query attributes for one demand cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryProfile {
    /// Mean compute rate (GB/s equivalent units of the model).
    pub compute_rate: f64,
    /// Mean QoS deadline (s).
    pub deadline: f64,
    /// Mean selectivity ∈ (0, 1].
    pub selectivity: f64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Sums {
    rate: f64,
    deadline: f64,
    selectivity: f64,
    count: u64,
}

impl Sums {
    fn observe(&mut self, rate: f64, deadline: f64, selectivity: f64) {
        self.rate += rate;
        self.deadline += deadline;
        self.selectivity += selectivity;
        self.count += 1;
    }

    fn mean(&self) -> Option<QueryProfile> {
        (self.count > 0).then(|| QueryProfile {
            compute_rate: self.rate / self.count as f64,
            deadline: self.deadline / self.count as f64,
            selectivity: self.selectivity / self.count as f64,
        })
    }
}

/// Accumulates per-key and global query-attribute means from observed
/// epochs.
#[derive(Debug, Clone, Default)]
pub struct ProfileStore {
    per_key: BTreeMap<DemandKey, Sums>,
    global: Sums,
}

impl ProfileStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observed query-demand pair for `key`.
    pub fn observe(&mut self, key: DemandKey, compute_rate: f64, deadline: f64, selectivity: f64) {
        self.per_key
            .entry(key)
            .or_default()
            .observe(compute_rate, deadline, selectivity);
        self.global.observe(compute_rate, deadline, selectivity);
    }

    /// Mean profile of `key`, if ever observed.
    pub fn profile(&self, key: DemandKey) -> Option<QueryProfile> {
        self.per_key.get(&key).and_then(Sums::mean)
    }

    /// Mean profile across every observation, if any.
    pub fn global(&self) -> Option<QueryProfile> {
        self.global.mean()
    }

    /// Per-key profile with global fallback — what the predicted-
    /// instance builder uses for keys forecast into existence at homes
    /// never observed before.
    pub fn profile_or_global(&self, key: DemandKey) -> Option<QueryProfile> {
        self.profile(key).or_else(|| self.global())
    }

    /// Total observations recorded.
    pub fn observations(&self) -> u64 {
        self.global.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(h: u32, d: u32) -> DemandKey {
        DemandKey::new(h, d)
    }

    #[test]
    fn per_key_means_accumulate() {
        let mut s = ProfileStore::new();
        s.observe(k(0, 0), 2.0, 10.0, 0.5);
        s.observe(k(0, 0), 4.0, 20.0, 1.0);
        let p = s.profile(k(0, 0)).unwrap();
        assert_eq!(p.compute_rate, 3.0);
        assert_eq!(p.deadline, 15.0);
        assert_eq!(p.selectivity, 0.75);
        assert_eq!(s.observations(), 2);
    }

    #[test]
    fn global_fallback_for_unseen_keys() {
        let mut s = ProfileStore::new();
        s.observe(k(1, 1), 6.0, 30.0, 0.9);
        assert!(s.profile(k(9, 9)).is_none());
        let p = s.profile_or_global(k(9, 9)).unwrap();
        assert_eq!(p.compute_rate, 6.0);
    }

    #[test]
    fn empty_store_has_no_profiles() {
        let s = ProfileStore::new();
        assert!(s.global().is_none());
        assert!(s.profile_or_global(k(0, 0)).is_none());
    }
}
