//! Seasonal-naive forecasting: repeat the value observed one period ago.

use crate::forecaster::Forecaster;

/// Period-`p` repeat predictor: the forecast for the next epoch is the
/// value observed `p` epochs earlier. On an exactly periodic series this
/// is a perfect predictor (zero error); with fewer than `p` observations
/// it degrades to last-value naive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeasonalNaive {
    /// Season length in epochs (≥ 1).
    pub period: usize,
}

impl SeasonalNaive {
    /// Builds a period-`p` predictor.
    pub fn new(period: usize) -> Self {
        assert!(period >= 1, "season period must be at least 1");
        Self { period }
    }
}

impl Forecaster for SeasonalNaive {
    fn name(&self) -> &'static str {
        "seasonal-naive"
    }

    fn predict_series(&self, series: &[f64]) -> f64 {
        if series.len() >= self.period {
            series[series.len() - self.period]
        } else {
            series.last().copied().unwrap_or(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeats_one_period_back() {
        let f = SeasonalNaive::new(3);
        // Next value after [a b c d] with period 3 is b.
        assert_eq!(f.predict_series(&[1.0, 2.0, 3.0, 4.0]), 2.0);
        assert_eq!(f.predict_series(&[1.0, 2.0, 3.0]), 1.0);
    }

    #[test]
    fn short_series_falls_back_to_last_value() {
        let f = SeasonalNaive::new(4);
        assert_eq!(f.predict_series(&[7.0, 9.0]), 9.0);
        assert_eq!(f.predict_series(&[]), 0.0);
    }

    #[test]
    fn perfect_on_periodic_series() {
        let f = SeasonalNaive::new(2);
        let series = [5.0, 1.0, 5.0, 1.0, 5.0, 1.0];
        for end in 2..series.len() {
            assert_eq!(f.predict_series(&series[..end]), series[end]);
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_period_rejected() {
        SeasonalNaive::new(0);
    }
}
