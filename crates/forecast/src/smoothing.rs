//! Exponential-smoothing forecasters: simple EWMA and Holt's linear
//! (double-exponential) method with a trend component.

use crate::forecaster::Forecaster;

fn check_weight(name: &str, w: f64) {
    assert!(
        w.is_finite() && w > 0.0 && w <= 1.0,
        "{name} must lie in (0, 1], got {w}"
    );
}

/// Exponentially weighted moving average: level-only smoothing,
/// `l_t = α·y_t + (1−α)·l_{t−1}`, forecast = final level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    /// Smoothing weight α ∈ (0, 1]; higher reacts faster.
    pub alpha: f64,
}

impl Ewma {
    /// Builds an EWMA with weight `alpha`.
    pub fn new(alpha: f64) -> Self {
        check_weight("alpha", alpha);
        Self { alpha }
    }
}

impl Default for Ewma {
    /// α = 0.6: reactive enough to track epoch-scale hotspot shifts.
    fn default() -> Self {
        Self::new(0.6)
    }
}

impl Forecaster for Ewma {
    fn name(&self) -> &'static str {
        "ewma"
    }

    fn predict_series(&self, series: &[f64]) -> f64 {
        let mut iter = series.iter();
        let Some(&first) = iter.next() else {
            return 0.0;
        };
        iter.fold(first, |level, &y| {
            self.alpha * y + (1.0 - self.alpha) * level
        })
    }
}

/// Holt's linear method: double-exponential smoothing with an explicit
/// trend term, `forecast = level + trend` (clamped to ≥ 0 since demand
/// volumes cannot go negative).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Holt {
    /// Level smoothing weight α ∈ (0, 1].
    pub alpha: f64,
    /// Trend smoothing weight β ∈ (0, 1].
    pub beta: f64,
}

impl Holt {
    /// Builds a Holt smoother with weights `alpha` / `beta`.
    pub fn new(alpha: f64, beta: f64) -> Self {
        check_weight("alpha", alpha);
        check_weight("beta", beta);
        Self { alpha, beta }
    }
}

impl Default for Holt {
    /// α = 0.6, β = 0.3: standard reactive level, damped trend.
    fn default() -> Self {
        Self::new(0.6, 0.3)
    }
}

impl Forecaster for Holt {
    fn name(&self) -> &'static str {
        "holt"
    }

    fn predict_series(&self, series: &[f64]) -> f64 {
        match series {
            [] => 0.0,
            [only] => *only,
            [first, second, rest @ ..] => {
                let mut level = *second;
                let mut trend = second - first;
                for &y in rest {
                    let prev_level = level;
                    level = self.alpha * y + (1.0 - self.alpha) * (level + trend);
                    trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
                }
                (level + trend).max(0.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_toward_recent_values() {
        let f = Ewma::new(0.5);
        // l = 0.5·4 + 0.5·(0.5·2 + 0.5·0) = 2.5
        assert_eq!(f.predict_series(&[0.0, 2.0, 4.0]), 2.5);
        assert_eq!(f.predict_series(&[3.0]), 3.0);
        assert_eq!(f.predict_series(&[]), 0.0);
    }

    #[test]
    fn ewma_alpha_one_is_last_value() {
        let f = Ewma::new(1.0);
        assert_eq!(f.predict_series(&[9.0, 1.0, 6.0]), 6.0);
    }

    #[test]
    fn holt_extrapolates_linear_trend_exactly() {
        let f = Holt::new(0.8, 0.4);
        // On a perfectly linear series the level/trend recursion is
        // exact regardless of weights: forecast continues the line.
        let series = [2.0, 4.0, 6.0, 8.0, 10.0];
        let got = f.predict_series(&series);
        assert!((got - 12.0).abs() < 1e-9, "got {got}");
    }

    #[test]
    fn holt_clamps_negative_forecasts() {
        let f = Holt::new(0.9, 0.9);
        // Steeply collapsing series extrapolates below zero → clamp.
        assert_eq!(f.predict_series(&[9.0, 3.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must lie in (0, 1]")]
    fn ewma_rejects_zero_alpha() {
        Ewma::new(0.0);
    }
}
