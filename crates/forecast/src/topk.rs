//! Top-K popularity baseline: predict mean historical demand, but only
//! for the K most popular (home, dataset) cells.

use crate::forecaster::{DemandForecast, Forecaster};
use crate::history::DemandHistory;

/// Hou-et-al-style popularity predictor applied over time: rank keys by
/// cumulative demanded volume across the retained window, keep the top
/// `k`, and predict each kept key's *mean* per-epoch volume. Everything
/// outside the top-K is predicted as zero demand — the same "replicate
/// only what is popular" premise as `edgerep-core::popularity`, here
/// acting as a deliberately coarse forecasting baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKPopularity {
    /// Number of keys retained in the forecast (≥ 1).
    pub k: usize,
}

impl TopKPopularity {
    /// Builds a top-`k` popularity predictor.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "top-k needs k >= 1");
        Self { k }
    }
}

impl Forecaster for TopKPopularity {
    fn name(&self) -> &'static str {
        "topk-popularity"
    }

    /// Mean of the series (the per-key prediction once a key survives
    /// the popularity cut).
    fn predict_series(&self, series: &[f64]) -> f64 {
        if series.is_empty() {
            0.0
        } else {
            series.iter().sum::<f64>() / series.len() as f64
        }
    }

    /// Ranks keys by cumulative volume (ties broken by key order, so
    /// the cut is deterministic) and forecasts only the top `k`.
    fn predict(&self, history: &DemandHistory) -> DemandForecast {
        let mut ranked: Vec<_> = history
            .keys()
            .into_iter()
            .map(|key| (key, history.cumulative_volume(key)))
            .collect();
        // Stable sort on descending volume keeps the key-order tiebreak.
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        ranked.truncate(self.k);
        DemandForecast::from_entries(
            ranked
                .into_iter()
                .map(|(key, _)| (key, self.predict_series(&history.series(key)))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{DemandKey, EpochDemand};

    fn k(h: u32, d: u32) -> DemandKey {
        DemandKey::new(h, d)
    }

    #[test]
    fn keeps_only_the_most_popular_keys() {
        let mut h = DemandHistory::new(8);
        h.record(
            [(k(0, 0), 10.0), (k(1, 1), 1.0), (k(2, 2), 5.0)]
                .into_iter()
                .collect::<EpochDemand>(),
        );
        h.record(
            [(k(0, 0), 10.0), (k(1, 1), 2.0), (k(2, 2), 5.0)]
                .into_iter()
                .collect::<EpochDemand>(),
        );
        let f = TopKPopularity::new(2).predict(&h);
        assert_eq!(f.len(), 2);
        assert_eq!(f.volume(k(0, 0)), 10.0); // mean of [10, 10]
        assert_eq!(f.volume(k(2, 2)), 5.0); // mean of [5, 5]
        assert_eq!(f.volume(k(1, 1)), 0.0); // cut
    }

    #[test]
    fn ties_break_by_key_order() {
        let mut h = DemandHistory::new(4);
        h.record(
            [(k(5, 0), 3.0), (k(1, 0), 3.0), (k(3, 0), 3.0)]
                .into_iter()
                .collect::<EpochDemand>(),
        );
        let f = TopKPopularity::new(2).predict(&h);
        assert_eq!(f.volume(k(1, 0)), 3.0);
        assert_eq!(f.volume(k(3, 0)), 3.0);
        assert_eq!(f.volume(k(5, 0)), 0.0);
    }

    #[test]
    fn k_larger_than_universe_keeps_everything() {
        let mut h = DemandHistory::new(4);
        h.record([(k(0, 0), 1.0), (k(1, 1), 2.0)].into_iter().collect());
        let f = TopKPopularity::new(100).predict(&h);
        assert_eq!(f.len(), 2);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_rejected() {
        TopKPopularity::new(0);
    }
}
