//! Integration tests for edgerep-forecast, including the pinned
//! qualitative result: seasonal-naive is a *perfect* predictor on an
//! exactly periodic synthetic history.

use edgerep_forecast::{
    wmape, DemandHistory, DemandKey, EpochDemand, Ewma, Forecaster, ForecasterKind, SeasonalNaive,
    TransferLedger,
};

fn k(h: u32, d: u32) -> DemandKey {
    DemandKey::new(h, d)
}

/// A period-`p` rotating hotspot: in epoch `e`, home `e % p` demands
/// dataset `e % p` heavily, everyone keeps a light background demand.
fn periodic_epoch(e: usize, period: usize) -> EpochDemand {
    let hot = (e % period) as u32;
    let mut demand = EpochDemand::new();
    for home in 0..period as u32 {
        demand.add(k(home, home), if home == hot { 40.0 } else { 2.5 });
    }
    demand
}

/// Pinned acceptance criterion: `SeasonalNaive` achieves *zero*
/// forecast error on an exactly periodic synthetic history.
#[test]
fn seasonal_naive_is_exact_on_periodic_history() {
    let period = 4;
    let forecaster = SeasonalNaive::new(period);
    let mut history = DemandHistory::new(16);
    // Warm up one full season so the predictor can look a period back.
    for e in 0..period {
        history.record(periodic_epoch(e, period));
    }
    // From then on every prediction must be exact.
    for e in period..3 * period {
        let predicted = forecaster.predict(&history);
        let realized = periodic_epoch(e, period);
        assert_eq!(
            wmape(&realized, &predicted),
            0.0,
            "seasonal-naive should be exact at epoch {e}"
        );
        for (key, actual) in realized.iter() {
            assert_eq!(predicted.volume(key), actual, "epoch {e}, key {key:?}");
        }
        history.record(realized);
    }
}

/// The ring buffer does not break periodicity tracking: even once the
/// window wraps (capacity < total epochs), seasonal prediction stays
/// exact because a full season is always retained.
#[test]
fn seasonal_naive_survives_ring_eviction() {
    let period = 3;
    let forecaster = SeasonalNaive::new(period);
    let mut history = DemandHistory::new(period + 1); // tight window
    for e in 0..period {
        history.record(periodic_epoch(e, period));
    }
    for e in period..20 {
        let predicted = forecaster.predict(&history);
        let realized = periodic_epoch(e, period);
        assert_eq!(wmape(&realized, &predicted), 0.0, "epoch {e}");
        history.record(realized);
    }
    assert_eq!(history.len(), period + 1);
    assert_eq!(history.recorded(), 20);
}

/// EWMA tracks a drifting level to within the smoothing lag, and its
/// volume-weighted error is strictly worse than seasonal-naive's on a
/// periodic workload (the motivating comparison for ext-forecast).
#[test]
fn ewma_lags_on_periodic_history() {
    let period = 4;
    let seasonal = SeasonalNaive::new(period);
    let ewma = Ewma::default();
    let mut history = DemandHistory::new(16);
    for e in 0..period {
        history.record(periodic_epoch(e, period));
    }
    let mut seasonal_err = 0.0;
    let mut ewma_err = 0.0;
    for e in period..3 * period {
        let realized = periodic_epoch(e, period);
        seasonal_err += wmape(&realized, &seasonal.predict(&history));
        ewma_err += wmape(&realized, &ewma.predict(&history));
        history.record(realized);
    }
    assert_eq!(seasonal_err, 0.0);
    assert!(
        ewma_err > 0.1,
        "EWMA should pay a real lag penalty on rotation, got {ewma_err}"
    );
}

/// Every ForecasterKind round-trips through build() and produces a
/// finite, non-negative forecast on an arbitrary history.
#[test]
fn all_kinds_produce_sane_forecasts() {
    let mut history = DemandHistory::new(8);
    for e in 0..6 {
        history.record(periodic_epoch(e, 3));
    }
    for kind in [
        ForecasterKind::SeasonalNaive { period: 3 },
        ForecasterKind::Ewma,
        ForecasterKind::Holt,
        ForecasterKind::TopK { k: 2 },
    ] {
        let forecast = kind.build().predict(&history);
        assert!(!forecast.is_empty(), "{kind} predicted nothing");
        for (key, v) in forecast.iter() {
            assert!(v.is_finite() && v >= 0.0, "{kind} {key:?} -> {v}");
        }
    }
}

/// Ledger + forecast interplay: re-prefetching the same rotation is
/// free after the first full cycle.
#[test]
fn ledger_makes_repeat_rotations_free() {
    let mut ledger = TransferLedger::new();
    // First cycle: 3 hot datasets land on 3 nodes, all charged.
    for e in 0..3u32 {
        assert!(ledger.charge(e, e, 40.0));
    }
    assert_eq!(ledger.total_gb(), 120.0);
    // Second cycle: same pairs, nothing charged.
    for e in 0..3u32 {
        assert!(!ledger.charge(e, e, 40.0));
    }
    assert_eq!(ledger.total_gb(), 120.0);
}
