//! Delay-centrality measures.
//!
//! Used by the `Centroid` placement baseline in `edgerep-core`: a replica
//! placed at a node with low total delay to a dataset's consumers serves
//! them all cheaply. Closeness here is defined over *shortest path delays*
//! (not hop counts), matching how the edge cloud routes intermediate
//! results.

use crate::graph::{Graph, NodeId};
use crate::shortest::DelayMatrix;

/// Closeness centrality of every node: `(reachable − 1) / Σ delays` with
/// the standard Wasserman–Faust correction for disconnected graphs
/// (multiply by `(reachable − 1)/(n − 1)`). Nodes that reach nothing get 0.
pub fn closeness(g: &Graph, delays: &DelayMatrix) -> Vec<f64> {
    let n = g.node_count();
    let mut out = vec![0.0; n];
    if n <= 1 {
        return out;
    }
    for u in g.nodes() {
        let mut sum = 0.0;
        let mut reachable = 0usize;
        for v in g.nodes() {
            if u == v {
                continue;
            }
            let d = delays.delay_or_inf(u, v);
            if d.is_finite() {
                sum += d;
                reachable += 1;
            }
        }
        if reachable > 0 && sum > 0.0 {
            let r = reachable as f64;
            out[u.index()] = (r / sum) * (r / (n as f64 - 1.0));
        } else if reachable > 0 {
            // All reachable at zero delay: maximal closeness.
            out[u.index()] = reachable as f64 / (n as f64 - 1.0);
        }
    }
    out
}

/// The node minimizing the *weighted* total delay to a set of
/// `(target, weight)` pairs — the 1-median / delay centroid. Candidates
/// may be restricted; ties break to the smallest node id. Returns `None`
/// when `candidates` is empty or no candidate reaches every target.
pub fn weighted_centroid(
    delays: &DelayMatrix,
    candidates: &[NodeId],
    targets: &[(NodeId, f64)],
) -> Option<NodeId> {
    let mut best: Option<(NodeId, f64)> = None;
    for &c in candidates {
        let mut total = 0.0;
        for &(t, w) in targets {
            total += delays.delay_or_inf(c, t) * w;
        }
        if !total.is_finite() {
            continue;
        }
        let better = match best {
            None => true,
            Some((bn, bt)) => total < bt - 1e-15 || (total <= bt + 1e-15 && c < bn),
        };
        if better {
            best = Some((c, total));
        }
    }
    best.map(|(n, _)| n)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A path graph 0 - 1 - 2 - 3 with unit delays: node 1 and 2 are the
    /// most central.
    fn path4() -> (Graph, DelayMatrix) {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(2), NodeId(3), 1.0);
        let m = DelayMatrix::compute(&g);
        (g, m)
    }

    #[test]
    fn closeness_peaks_in_the_middle_of_a_path() {
        let (g, m) = path4();
        let c = closeness(&g, &m);
        assert!(c[1] > c[0]);
        assert!(c[2] > c[3]);
        assert!((c[1] - c[2]).abs() < 1e-12);
        // Endpoint: sum = 1+2+3 = 6, closeness = 3/6 = 0.5.
        assert!((c[0] - 0.5).abs() < 1e-12);
        // Middle: sum = 1+1+2 = 4, closeness = 3/4.
        assert!((c[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn closeness_zero_for_isolated_nodes() {
        let g = Graph::with_nodes(3);
        let m = DelayMatrix::compute(&g);
        assert_eq!(closeness(&g, &m), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn closeness_disconnected_correction() {
        // Two components: 0-1 (close pair) and 2 alone. The pair's nodes
        // only reach 1 of 2 others, so the correction halves them.
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        let m = DelayMatrix::compute(&g);
        let c = closeness(&g, &m);
        assert!((c[0] - 0.5).abs() < 1e-12); // (1/1)·(1/2)
        assert_eq!(c[2], 0.0);
    }

    #[test]
    fn singleton_graph() {
        let g = Graph::with_nodes(1);
        let m = DelayMatrix::compute(&g);
        assert_eq!(closeness(&g, &m), vec![0.0]);
    }

    #[test]
    fn centroid_of_weighted_targets() {
        let (_, m) = path4();
        let all: Vec<NodeId> = (0..4).map(NodeId).collect();
        // Targets {0, 3} with equal weight: on a path every interior node
        // ties (total 3), so the smallest id wins.
        let c = weighted_centroid(&m, &all, &[(NodeId(0), 1.0), (NodeId(3), 1.0)]);
        assert_eq!(c, Some(NodeId(0)));
        // Targets {0, 1, 3}: node 1 is strictly optimal (1+0+2 = 3).
        let c = weighted_centroid(
            &m,
            &all,
            &[(NodeId(0), 1.0), (NodeId(1), 1.0), (NodeId(3), 1.0)],
        );
        assert_eq!(c, Some(NodeId(1)));
        // Heavy weight at 3 pulls the centroid right.
        let c = weighted_centroid(&m, &all, &[(NodeId(0), 1.0), (NodeId(3), 10.0)]);
        assert_eq!(c, Some(NodeId(3)));
    }

    #[test]
    fn centroid_restricted_candidates() {
        let (_, m) = path4();
        let c = weighted_centroid(
            &m,
            &[NodeId(0), NodeId(3)],
            &[(NodeId(1), 1.0), (NodeId(2), 1.0)],
        );
        assert_eq!(c, Some(NodeId(0)));
    }

    #[test]
    fn centroid_none_for_unreachable_targets() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        let m = DelayMatrix::compute(&g);
        // Node 2 is unreachable from both candidates.
        let c = weighted_centroid(&m, &[NodeId(0), NodeId(1)], &[(NodeId(2), 1.0)]);
        assert_eq!(c, None);
        // Empty candidate set.
        assert_eq!(weighted_centroid(&m, &[], &[(NodeId(0), 1.0)]), None);
    }
}
