//! Connectivity queries and repair.
//!
//! The paper's GT-ITM-style generator draws each link with probability 0.2,
//! which routinely leaves small networks disconnected; a disconnected
//! topology would make every cross-component query inadmissible for a
//! structural (not algorithmic) reason, so the generators repair
//! connectivity with [`connect_components`] before handing topologies to the
//! experiments.

use rand::Rng;

use crate::graph::{Graph, NodeId};

/// Breadth-first order of nodes reachable from `source` (inclusive).
pub fn bfs_order(g: &Graph, source: NodeId) -> Vec<NodeId> {
    assert!(g.contains_node(source), "unknown source {source}");
    let mut seen = vec![false; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    let mut order = Vec::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(n) = queue.pop_front() {
        order.push(n);
        for nb in g.neighbors(n) {
            if !seen[nb.node.index()] {
                seen[nb.node.index()] = true;
                queue.push_back(nb.node);
            }
        }
    }
    order
}

/// Assigns each node a component label in `0..k` and returns `(labels, k)`.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut label = vec![usize::MAX; n];
    let mut k = 0;
    for start in g.nodes() {
        if label[start.index()] != usize::MAX {
            continue;
        }
        for reached in bfs_order(g, start) {
            label[reached.index()] = k;
        }
        k += 1;
    }
    (label, k)
}

/// Whether every node can reach every other node (vacuously true for empty
/// and single-node graphs).
pub fn is_connected(g: &Graph) -> bool {
    if g.node_count() <= 1 {
        return true;
    }
    connected_components(g).1 == 1
}

/// Connects a disconnected graph by adding one random bridge edge between
/// consecutive components. Returns the number of edges added.
///
/// Bridge endpoints are drawn uniformly inside each component so repair does
/// not bias toward low node ids; bridge weights are drawn from
/// `weight_range`.
pub fn connect_components<R: Rng>(g: &mut Graph, rng: &mut R, weight_range: (f64, f64)) -> usize {
    let (labels, k) = connected_components(g);
    if k <= 1 {
        return 0;
    }
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for n in g.nodes() {
        members[labels[n.index()]].push(n);
    }
    let (lo, hi) = weight_range;
    assert!(lo <= hi && lo >= 0.0, "invalid weight range");
    for pair in 0..k - 1 {
        let a = members[pair][rng.gen_range(0..members[pair].len())];
        let b = members[pair + 1][rng.gen_range(0..members[pair + 1].len())];
        let w = if lo == hi { lo } else { rng.gen_range(lo..hi) };
        g.add_edge(a, b, w);
    }
    k - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn two_components() -> Graph {
        let mut g = Graph::with_nodes(5);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(3), NodeId(4), 1.0);
        g
    }

    #[test]
    fn bfs_reaches_component_only() {
        let g = two_components();
        let order = bfs_order(&g, NodeId(0));
        assert_eq!(order.len(), 3);
        assert!(order.contains(&NodeId(2)));
        assert!(!order.contains(&NodeId(3)));
    }

    #[test]
    fn bfs_starts_at_source() {
        let g = two_components();
        assert_eq!(bfs_order(&g, NodeId(3))[0], NodeId(3));
    }

    #[test]
    fn components_labelled_consistently() {
        let g = two_components();
        let (labels, k) = connected_components(&g);
        assert_eq!(k, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn connectivity_predicates() {
        assert!(is_connected(&Graph::new()));
        assert!(is_connected(&Graph::with_nodes(1)));
        assert!(!is_connected(&Graph::with_nodes(2)));
        assert!(!is_connected(&two_components()));
    }

    #[test]
    fn repair_connects_everything() {
        let mut g = two_components();
        let mut rng = SmallRng::seed_from_u64(7);
        let added = connect_components(&mut g, &mut rng, (0.5, 1.5));
        assert_eq!(added, 1);
        assert!(is_connected(&g));
    }

    #[test]
    fn repair_noop_on_connected_graph() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(connect_components(&mut g, &mut rng, (1.0, 2.0)), 0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn repair_handles_all_isolated_nodes() {
        let mut g = Graph::with_nodes(6);
        let mut rng = SmallRng::seed_from_u64(42);
        let added = connect_components(&mut g, &mut rng, (1.0, 1.0));
        assert_eq!(added, 5);
        assert!(is_connected(&g));
        for e in g.edges() {
            assert_eq!(e.weight, 1.0);
        }
    }

    #[test]
    fn repair_weights_within_range() {
        let mut g = Graph::with_nodes(10);
        let mut rng = SmallRng::seed_from_u64(3);
        connect_components(&mut g, &mut rng, (2.0, 4.0));
        for e in g.edges() {
            assert!((2.0..4.0).contains(&e.weight));
        }
    }
}
