//! Undirected, edge-weighted adjacency-list graph.
//!
//! Nodes are dense `u32` indices so the rest of the workspace can use them
//! directly as array offsets; edge weights are `f64` per-unit-data
//! transmission delays (seconds per GB in the edge-cloud model).

use serde::{Deserialize, Serialize};

/// A node handle: a dense index into the graph's node table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An edge handle: a dense index into the graph's edge table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The edge index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One endpoint record stored in a node's adjacency list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// The adjacent node.
    pub node: NodeId,
    /// The connecting edge.
    pub edge: EdgeId,
    /// Per-unit-data delay of the connecting edge (copied here so shortest
    /// path relaxation does not chase the edge table).
    pub weight: f64,
}

/// A stored undirected edge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// First endpoint (the smaller id as inserted).
    pub u: NodeId,
    /// Second endpoint.
    pub v: NodeId,
    /// Per-unit-data transmission delay.
    pub weight: f64,
}

impl Edge {
    /// Given one endpoint, return the other. Panics if `n` is not an
    /// endpoint of this edge.
    pub fn other(&self, n: NodeId) -> NodeId {
        if n == self.u {
            self.v
        } else {
            assert_eq!(n, self.v, "node {n} is not an endpoint of this edge");
            self.u
        }
    }
}

/// An undirected, edge-weighted graph with dense node indices.
///
/// Parallel edges are permitted (shortest-path code simply relaxes both);
/// self-loops are rejected because a zero-length loop never participates in
/// a shortest path and routinely signals a generator bug.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    adjacency: Vec<Vec<Neighbor>>,
    edges: Vec<Edge>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity reserved for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        Self {
            adjacency: Vec::with_capacity(nodes),
            edges: Vec::new(),
        }
    }

    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Self {
            adjacency: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(u32::try_from(self.adjacency.len()).expect("graph node overflow"));
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds `count` nodes and returns their ids in insertion order.
    pub fn add_nodes(&mut self, count: usize) -> Vec<NodeId> {
        (0..count).map(|_| self.add_node()).collect()
    }

    /// Adds an undirected edge with the given per-unit-data delay.
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range endpoints, or non-finite /
    /// negative weights (delays are physical quantities).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: f64) -> EdgeId {
        assert!(u != v, "self-loop at {u} rejected");
        assert!(u.index() < self.adjacency.len(), "unknown node {u}");
        assert!(v.index() < self.adjacency.len(), "unknown node {v}");
        assert!(
            weight.is_finite() && weight >= 0.0,
            "edge delay must be finite and non-negative, got {weight}"
        );
        let id = EdgeId(u32::try_from(self.edges.len()).expect("graph edge overflow"));
        self.edges.push(Edge { u, v, weight });
        self.adjacency[u.index()].push(Neighbor {
            node: v,
            edge: id,
            weight,
        });
        self.adjacency[v.index()].push(Neighbor {
            node: u,
            edge: id,
            weight,
        });
        id
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.adjacency.len() as u32).map(NodeId)
    }

    /// Slice of all stored edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The stored edge for an id.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Adjacency list of `n`.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[Neighbor] {
        &self.adjacency[n.index()]
    }

    /// Degree (number of incident edge endpoints) of `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n.index()].len()
    }

    /// Whether any edge directly connects `u` and `v`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        // Scan the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adjacency[a.index()].iter().any(|nb| nb.node == b)
    }

    /// The minimum direct-edge weight between `u` and `v`, if any edge exists.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.adjacency[u.index()]
            .iter()
            .filter(|nb| nb.node == v)
            .map(|nb| nb.weight)
            .fold(None, |best, w| Some(best.map_or(w, |b: f64| b.min(w))))
    }

    /// Total weight over all edges (used by partition quality metrics).
    pub fn total_edge_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Checks a node id is valid for this graph.
    pub fn contains_node(&self, n: NodeId) -> bool {
        n.index() < self.adjacency.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b, 1.0);
        g.add_edge(b, c, 2.0);
        g.add_edge(a, c, 4.0);
        (g, a, b, c)
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_empty());
        assert_eq!(g.nodes().count(), 0);
    }

    #[test]
    fn add_nodes_and_edges() {
        let (g, a, b, c) = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(a), 2);
        assert_eq!(g.degree(b), 2);
        assert!(g.has_edge(a, b));
        assert!(g.has_edge(b, a));
        assert!(g.has_edge(a, c));
        assert_eq!(g.edge_weight(b, c), Some(2.0));
        assert_eq!(g.edge_weight(c, b), Some(2.0));
    }

    #[test]
    fn with_nodes_creates_isolated_nodes() {
        let g = Graph::with_nodes(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        for n in g.nodes() {
            assert_eq!(g.degree(n), 0);
        }
    }

    #[test]
    fn parallel_edges_take_min_weight() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, 5.0);
        g.add_edge(a, b, 2.0);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.edge_weight(a, b), Some(2.0));
    }

    #[test]
    fn edge_other_endpoint() {
        let (g, a, b, _) = triangle();
        let e = g.edge(EdgeId(0));
        assert_eq!(e.other(a), b);
        assert_eq!(e.other(b), a);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut g = Graph::new();
        let a = g.add_node();
        g.add_edge(a, a, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_weight_rejected() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_weight_rejected() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, -1.0);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn out_of_range_endpoint_rejected() {
        let mut g = Graph::new();
        let a = g.add_node();
        g.add_edge(a, NodeId(7), 1.0);
    }

    #[test]
    fn missing_edge_weight_is_none() {
        let mut g = Graph::with_nodes(2);
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), None);
        g.add_edge(NodeId(0), NodeId(1), 3.0);
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(3.0));
    }

    #[test]
    fn total_edge_weight_sums_all_edges() {
        let (g, ..) = triangle();
        assert!((g.total_edge_weight() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn add_nodes_returns_sequential_ids() {
        let mut g = Graph::new();
        let ids = g.add_nodes(4);
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "v3");
    }
}
