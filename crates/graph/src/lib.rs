#![warn(missing_docs)]

//! Graph substrate for the `edgerep` workspace.
//!
//! The ICPP'19 paper evaluates its replication algorithms on random
//! topologies produced by the GT-ITM tool and routes intermediate results
//! along minimum-transmission-delay paths. This crate provides everything the
//! rest of the workspace needs from a graph library, built from scratch
//! because the offline dependency set contains none:
//!
//! * [`Graph`] — an undirected, edge-weighted adjacency-list graph with
//!   `f64` per-unit-data delay weights.
//! * [`shortest`] — binary-heap Dijkstra, all-pairs [`shortest::DelayMatrix`],
//!   path reconstruction, and a Bellman–Ford reference used for
//!   cross-checking.
//! * [`connectivity`] — BFS, connected components, and connectivity repair
//!   used by the random generators.
//! * [`topology`] — GT-ITM-style random topology generation (flat
//!   Erdős–Rényi with the paper's link probability, Waxman geometric graphs,
//!   and a layered two-tier skeleton).
//! * [`partition`] — Kernighan–Lin graph partitioning backing the
//!   `Graph-S`/`Graph-G` baseline (Golab et al., SSDBM'14).
//!
//! # Example
//!
//! ```
//! use edgerep_graph::{Graph, shortest::Dijkstra};
//!
//! let mut g = Graph::new();
//! let a = g.add_node();
//! let b = g.add_node();
//! let c = g.add_node();
//! g.add_edge(a, b, 1.5);
//! g.add_edge(b, c, 2.0);
//! let sp = Dijkstra::run(&g, a);
//! assert_eq!(sp.delay_to(c), Some(3.5));
//! assert_eq!(sp.path_to(c), Some(vec![a, b, c]));
//! ```

pub mod centrality;
pub mod connectivity;
pub mod graph;
pub mod partition;
pub mod shortest;
pub mod topology;

pub use graph::{EdgeId, Graph, NodeId};
pub use shortest::{DelayMatrix, Dijkstra};
