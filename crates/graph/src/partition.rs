//! Kernighan–Lin graph partitioning.
//!
//! Backs the `Graph-S` / `Graph-G` baseline of the paper (§4.1), which is
//! adapted from Golab et al., "Distributed data placement to minimize
//! communication costs via graph partitioning" (SSDBM'14): the affinity
//! graph between queries and replica-hosting nodes is partitioned to
//! minimize cross-partition communication, then queries are served within
//! their partition.
//!
//! [`partition_kway`] recursively bisects with the classic Kernighan–Lin
//! improvement heuristic. It is deterministic given the initial split, so
//! experiment runs are reproducible per seed.

use crate::graph::{Graph, NodeId};

/// Sum of weights of edges whose endpoints carry different labels.
pub fn cut_weight(g: &Graph, labels: &[usize]) -> f64 {
    assert_eq!(labels.len(), g.node_count(), "label/node count mismatch");
    g.edges()
        .iter()
        .filter(|e| labels[e.u.index()] != labels[e.v.index()])
        .map(|e| e.weight)
        .sum()
}

/// External-minus-internal cost of `n` with respect to a 2-way split of
/// `members` (only edges between members count).
fn kl_gain(g: &Graph, n: NodeId, side: &[bool], in_part: &[bool]) -> f64 {
    let mut gain = 0.0;
    for nb in g.neighbors(n) {
        if !in_part[nb.node.index()] {
            continue;
        }
        if side[nb.node.index()] != side[n.index()] {
            gain += nb.weight; // external edge: moving n would internalize it
        } else {
            gain -= nb.weight; // internal edge: moving n would cut it
        }
    }
    gain
}

/// One Kernighan–Lin bisection of `members` (a subset of `g`'s nodes) into
/// two balanced halves. Returns a boolean side per node (indexed by node
/// id; nodes outside `members` keep `false` but are ignored).
fn kl_bisect(g: &Graph, members: &[NodeId]) -> Vec<bool> {
    let n_total = g.node_count();
    let mut side = vec![false; n_total];
    let mut in_part = vec![false; n_total];
    for m in members {
        in_part[m.index()] = true;
    }
    // Initial balanced split by position in `members` (callers shuffle the
    // member order when a randomized start is wanted).
    let half = members.len() / 2;
    for (i, m) in members.iter().enumerate() {
        side[m.index()] = i >= half;
    }
    if members.len() < 4 {
        return side;
    }

    // Classic KL passes: repeatedly build a sequence of best swaps, keep the
    // best prefix, stop when a pass yields no improvement.
    const MAX_PASSES: usize = 10;
    for _ in 0..MAX_PASSES {
        let mut locked = vec![false; n_total];
        let mut gains: Vec<f64> = vec![0.0; n_total];
        for m in members {
            gains[m.index()] = kl_gain(g, *m, &side, &in_part);
        }
        let mut swap_seq: Vec<(NodeId, NodeId, f64)> = Vec::new();
        let mut working_side = side.clone();
        for _ in 0..half {
            // Pick the unlocked cross pair (a, b) maximizing
            // gain(a) + gain(b) - 2*w(a,b).
            let mut best: Option<(NodeId, NodeId, f64)> = None;
            for &a in members
                .iter()
                .filter(|m| !locked[m.index()] && !working_side[m.index()])
            {
                for &b in members
                    .iter()
                    .filter(|m| !locked[m.index()] && working_side[m.index()])
                {
                    let w_ab = g.edge_weight(a, b).unwrap_or(0.0);
                    let gain = gains[a.index()] + gains[b.index()] - 2.0 * w_ab;
                    if best.is_none_or(|(_, _, bg)| gain > bg) {
                        best = Some((a, b, gain));
                    }
                }
            }
            let Some((a, b, gain)) = best else { break };
            locked[a.index()] = true;
            locked[b.index()] = true;
            working_side[a.index()] = true;
            working_side[b.index()] = false;
            // Update gains of unlocked members for the tentative swap.
            for &m in members.iter().filter(|m| !locked[m.index()]) {
                gains[m.index()] = kl_gain(g, m, &working_side, &in_part);
            }
            swap_seq.push((a, b, gain));
        }
        // Best prefix of cumulative gains.
        let mut best_prefix = 0;
        let mut best_total = 0.0;
        let mut running = 0.0;
        for (i, (_, _, gain)) in swap_seq.iter().enumerate() {
            running += gain;
            if running > best_total + 1e-12 {
                best_total = running;
                best_prefix = i + 1;
            }
        }
        if best_prefix == 0 {
            break;
        }
        for (a, b, _) in swap_seq.into_iter().take(best_prefix) {
            side[a.index()] = true;
            side[b.index()] = false;
        }
    }
    side
}

/// Partitions the graph's nodes into at most `k` balanced parts by
/// recursive Kernighan–Lin bisection; returns a part label per node.
///
/// `k` must be ≥ 1; `k = 1` labels everything `0`. The labeling is always
/// a *valid covering partition*: labels are dense in `0..r` for some
/// `r ≤ min(k, node count)` and every label in that range owns at least
/// one node. Degenerate inputs — `k` larger than the node count, or a
/// bisection handing an empty side to a subtree that was promised several
/// parts — would leave label gaps in the raw recursion, so the result is
/// compacted (first-seen order, deterministic) before it is returned.
pub fn partition_kway(g: &Graph, k: usize) -> Vec<usize> {
    assert!(k >= 1, "k must be at least 1");
    let mut labels = vec![0usize; g.node_count()];
    let all: Vec<NodeId> = g.nodes().collect();
    recurse(g, &all, k, 0, &mut labels);
    compact_labels(&mut labels);
    labels
}

/// Remaps labels onto `0..r` in first-appearance order so every label in
/// the returned range is non-empty. Deterministic: the dense label only
/// depends on the raw label sequence.
fn compact_labels(labels: &mut [usize]) {
    // Raw labels from `recurse` are < k but may exceed the node count when
    // callers over-partition; a map keeps compaction O(n) regardless.
    let mut dense: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for l in labels.iter_mut() {
        let next = dense.len();
        *l = *dense.entry(*l).or_insert(next);
    }
}

fn recurse(g: &Graph, members: &[NodeId], k: usize, base: usize, labels: &mut [usize]) {
    if k <= 1 || members.len() <= 1 {
        for m in members {
            labels[m.index()] = base;
        }
        return;
    }
    let side = kl_bisect(g, members);
    let (left, right): (Vec<NodeId>, Vec<NodeId>) = members.iter().partition(|m| !side[m.index()]);
    let k_left = k / 2 + k % 2;
    let k_right = k / 2;
    recurse(g, &left, k_left, base, labels);
    recurse(g, &right, k_right, base + k_left, labels);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two dense clusters joined by a single light edge — the canonical
    /// partitioning test case.
    fn two_clusters() -> Graph {
        let mut g = Graph::with_nodes(8);
        let heavy = 10.0;
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                g.add_edge(NodeId(u), NodeId(v), heavy);
            }
        }
        for u in 4..8u32 {
            for v in (u + 1)..8 {
                g.add_edge(NodeId(u), NodeId(v), heavy);
            }
        }
        g.add_edge(NodeId(0), NodeId(4), 0.5);
        g
    }

    #[test]
    fn bisection_finds_the_light_cut() {
        let g = two_clusters();
        let labels = partition_kway(&g, 2);
        assert_eq!(cut_weight(&g, &labels), 0.5);
        // Each cluster is uniform.
        for v in 1..4 {
            assert_eq!(labels[0], labels[v]);
        }
        for v in 5..8 {
            assert_eq!(labels[4], labels[v]);
        }
        assert_ne!(labels[0], labels[4]);
    }

    #[test]
    fn k1_labels_everything_zero() {
        let g = two_clusters();
        let labels = partition_kway(&g, 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn labels_in_range_for_kway() {
        let g = two_clusters();
        for k in 1..=8 {
            let labels = partition_kway(&g, k);
            assert!(labels.iter().all(|&l| l < k), "k={k} labels={labels:?}");
        }
    }

    #[test]
    fn kway_parts_roughly_balanced() {
        let g = two_clusters();
        let labels = partition_kway(&g, 4);
        let mut counts = [0usize; 4];
        for &l in &labels {
            counts[l] += 1;
        }
        for c in counts {
            assert!((1..=3).contains(&c), "unbalanced counts {counts:?}");
        }
    }

    #[test]
    fn cut_weight_zero_for_uniform_labels() {
        let g = two_clusters();
        let labels = vec![0; g.node_count()];
        assert_eq!(cut_weight(&g, &labels), 0.0);
    }

    #[test]
    fn cut_weight_counts_every_cross_edge() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 2.0);
        g.add_edge(NodeId(0), NodeId(2), 4.0);
        let labels = vec![0, 1, 0];
        assert_eq!(cut_weight(&g, &labels), 3.0);
    }

    #[test]
    fn empty_graph_partitions() {
        let g = Graph::new();
        assert!(partition_kway(&g, 3).is_empty());
    }

    #[test]
    fn single_node_partitions() {
        let g = Graph::with_nodes(1);
        assert_eq!(partition_kway(&g, 2), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn k0_rejected() {
        partition_kway(&Graph::with_nodes(2), 0);
    }

    #[test]
    fn k_bigger_than_nodes_degenerates() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        let labels = partition_kway(&g, 10);
        assert!(labels.iter().all(|&l| l < 10));
        // At most one node per part.
        let mut seen = std::collections::HashSet::new();
        for &l in &labels {
            assert!(seen.insert(l), "part {l} reused");
        }
    }

    #[test]
    fn labels_are_always_a_dense_covering() {
        // Over-partitioned inputs used to leave label gaps (e.g. 3 nodes at
        // k = 10 labeled {0, 5, 8}); every label in 0..max+1 must now be
        // non-empty so downstream region extraction can index by label.
        for (nodes, k) in [(3usize, 10usize), (2, 4), (5, 5), (8, 7), (1, 9)] {
            let mut g = Graph::with_nodes(nodes);
            for u in 1..nodes as u32 {
                g.add_edge(NodeId(u - 1), NodeId(u), 1.0);
            }
            let labels = partition_kway(&g, k);
            let parts = labels.iter().copied().max().unwrap() + 1;
            assert!(parts <= k.min(nodes), "k={k} nodes={nodes}: {labels:?}");
            let mut seen = vec![false; parts];
            for &l in &labels {
                seen[l] = true;
            }
            assert!(seen.iter().all(|&s| s), "gap in labels {labels:?}");
        }
    }

    #[test]
    fn compaction_preserves_the_grouping() {
        // Compaction renames parts but never merges or splits them: the
        // two-cluster cut is still found at every k.
        let g = two_clusters();
        let labels = partition_kway(&g, 2);
        assert_eq!(cut_weight(&g, &labels), 0.5);
        assert_eq!(labels[0], 0, "first-seen label must be 0");
    }
}
