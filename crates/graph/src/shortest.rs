//! Shortest-path machinery over per-unit-data delay weights.
//!
//! The edge-cloud model routes every intermediate result along a
//! minimum-transmission-delay path (§2.2 of the paper), so all algorithms
//! consume shortest *delays*. [`Dijkstra`] is the workhorse; the all-pairs
//! [`DelayMatrix`] caches one Dijkstra tree per node and is shared by every
//! placement algorithm. [`bellman_ford`] exists purely as an independent
//! reference implementation for tests.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{Graph, NodeId};

/// A (delay, node) heap entry ordered as a min-heap over the delay.
///
/// Ordered with [`f64::total_cmp`] so NaN link delays (possible when a
/// caller injects poisoned edge weights) degrade into a deterministic
/// ordering instead of a mid-solve panic; NaN tentative distances never
/// relax a neighbour, so they stay inert.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    delay: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap (a max-heap) pops the smallest delay first;
        // tie-break on node id for determinism.
        other
            .delay
            .total_cmp(&self.delay)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The shortest-path tree produced by one Dijkstra run.
#[derive(Debug, Clone)]
pub struct Dijkstra {
    source: NodeId,
    delay: Vec<f64>,
    parent: Vec<Option<NodeId>>,
}

impl Dijkstra {
    /// Runs Dijkstra from `source` over all nodes of `g`.
    pub fn run(g: &Graph, source: NodeId) -> Self {
        assert!(g.contains_node(source), "unknown source {source}");
        let n = g.node_count();
        let mut delay = vec![f64::INFINITY; n];
        let mut parent = vec![None; n];
        let mut settled = vec![false; n];
        let mut heap = BinaryHeap::with_capacity(n);
        delay[source.index()] = 0.0;
        heap.push(HeapEntry {
            delay: 0.0,
            node: source,
        });
        while let Some(HeapEntry { delay: d, node }) = heap.pop() {
            if settled[node.index()] {
                continue;
            }
            settled[node.index()] = true;
            for nb in g.neighbors(node) {
                let cand = d + nb.weight;
                if cand < delay[nb.node.index()] {
                    delay[nb.node.index()] = cand;
                    parent[nb.node.index()] = Some(node);
                    heap.push(HeapEntry {
                        delay: cand,
                        node: nb.node,
                    });
                }
            }
        }
        Self {
            source,
            delay,
            parent,
        }
    }

    /// The source this tree was grown from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Shortest delay from the source to `target`, or `None` if unreachable.
    pub fn delay_to(&self, target: NodeId) -> Option<f64> {
        let d = self.delay[target.index()];
        d.is_finite().then_some(d)
    }

    /// All delays, `INFINITY` marking unreachable nodes.
    pub fn delays(&self) -> &[f64] {
        &self.delay
    }

    /// Reconstructs the node sequence of the shortest path `source → target`.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if !self.delay[target.index()].is_finite() {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        debug_assert_eq!(cur, self.source);
        path.reverse();
        Some(path)
    }
}

/// All-pairs shortest per-unit-data delays.
///
/// Stores an `n × n` row-major matrix; `n` is at most a few hundred in every
/// paper experiment, so the quadratic memory is trivial and the dense layout
/// keeps the hot admission loops cache-friendly.
#[derive(Debug, Clone)]
pub struct DelayMatrix {
    n: usize,
    delays: Vec<f64>,
}

impl DelayMatrix {
    /// Computes the matrix by running Dijkstra from every node.
    pub fn compute(g: &Graph) -> Self {
        let n = g.node_count();
        let mut delays = Vec::with_capacity(n * n);
        for s in g.nodes() {
            delays.extend_from_slice(Dijkstra::run(g, s).delays());
        }
        Self { n, delays }
    }

    /// Number of nodes this matrix covers.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Shortest delay between `u` and `v` (`0.0` when `u == v`), or `None`
    /// when disconnected.
    #[inline]
    pub fn delay(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let d = self.delays[u.index() * self.n + v.index()];
        d.is_finite().then_some(d)
    }

    /// Raw shortest delay, `INFINITY` when disconnected. Hot-path accessor
    /// for the admission loops which treat unreachable as "deadline
    /// violated" anyway.
    #[inline]
    pub fn delay_or_inf(&self, u: NodeId, v: NodeId) -> f64 {
        self.delays[u.index() * self.n + v.index()]
    }

    /// The largest finite delay in the matrix (network "diameter" in delay
    /// terms), or `None` for an empty graph.
    pub fn max_finite_delay(&self) -> Option<f64> {
        self.delays
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(None, |acc, d| Some(acc.map_or(d, |a: f64| a.max(d))))
    }
}

/// Bellman–Ford single-source shortest delays: an independent O(V·E)
/// implementation used by tests to cross-check [`Dijkstra`].
pub fn bellman_ford(g: &Graph, source: NodeId) -> Vec<f64> {
    let n = g.node_count();
    let mut delay = vec![f64::INFINITY; n];
    delay[source.index()] = 0.0;
    for _ in 1..n.max(1) {
        let mut changed = false;
        for e in g.edges() {
            let (ui, vi) = (e.u.index(), e.v.index());
            if delay[ui] + e.weight < delay[vi] {
                delay[vi] = delay[ui] + e.weight;
                changed = true;
            }
            if delay[vi] + e.weight < delay[ui] {
                delay[ui] = delay[vi] + e.weight;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    delay
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small weighted graph with a known shortest-path structure:
    ///
    /// ```text
    ///   0 --1.0-- 1 --1.0-- 2
    ///   |                   |
    ///   +------10.0---------+       3 (isolated)
    /// ```
    fn diamond() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 1.0);
        g.add_edge(NodeId(1), NodeId(2), 1.0);
        g.add_edge(NodeId(0), NodeId(2), 10.0);
        g
    }

    #[test]
    fn dijkstra_prefers_cheap_detour() {
        let g = diamond();
        let sp = Dijkstra::run(&g, NodeId(0));
        assert_eq!(sp.delay_to(NodeId(2)), Some(2.0));
        assert_eq!(
            sp.path_to(NodeId(2)),
            Some(vec![NodeId(0), NodeId(1), NodeId(2)])
        );
    }

    #[test]
    fn dijkstra_source_delay_zero() {
        let g = diamond();
        let sp = Dijkstra::run(&g, NodeId(1));
        assert_eq!(sp.delay_to(NodeId(1)), Some(0.0));
        assert_eq!(sp.path_to(NodeId(1)), Some(vec![NodeId(1)]));
    }

    #[test]
    fn dijkstra_unreachable_is_none() {
        let g = diamond();
        let sp = Dijkstra::run(&g, NodeId(0));
        assert_eq!(sp.delay_to(NodeId(3)), None);
        assert_eq!(sp.path_to(NodeId(3)), None);
    }

    #[test]
    fn dijkstra_zero_weight_edges() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 0.0);
        g.add_edge(NodeId(1), NodeId(2), 0.0);
        let sp = Dijkstra::run(&g, NodeId(0));
        assert_eq!(sp.delay_to(NodeId(2)), Some(0.0));
    }

    #[test]
    fn dijkstra_parallel_edges_use_cheapest() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 9.0);
        g.add_edge(NodeId(0), NodeId(1), 4.0);
        let sp = Dijkstra::run(&g, NodeId(0));
        assert_eq!(sp.delay_to(NodeId(1)), Some(4.0));
    }

    #[test]
    fn delay_matrix_matches_per_source_runs() {
        let g = diamond();
        let m = DelayMatrix::compute(&g);
        for s in g.nodes() {
            let sp = Dijkstra::run(&g, s);
            for t in g.nodes() {
                assert_eq!(m.delay(s, t), sp.delay_to(t), "mismatch {s}->{t}");
            }
        }
    }

    #[test]
    fn delay_matrix_symmetric_for_undirected_graph() {
        let g = diamond();
        let m = DelayMatrix::compute(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(m.delay(u, v), m.delay(v, u));
            }
        }
    }

    #[test]
    fn delay_matrix_max_finite() {
        let g = diamond();
        let m = DelayMatrix::compute(&g);
        assert_eq!(m.max_finite_delay(), Some(2.0));
    }

    #[test]
    fn delay_matrix_empty_graph() {
        let g = Graph::new();
        let m = DelayMatrix::compute(&g);
        assert_eq!(m.node_count(), 0);
        assert_eq!(m.max_finite_delay(), None);
    }

    #[test]
    fn bellman_ford_agrees_on_diamond() {
        let g = diamond();
        let bf = bellman_ford(&g, NodeId(0));
        let dj = Dijkstra::run(&g, NodeId(0));
        for t in g.nodes() {
            let d = dj.delay_to(t).unwrap_or(f64::INFINITY);
            assert!(
                (bf[t.index()] - d).abs() < 1e-12
                    || (bf[t.index()].is_infinite() && d.is_infinite())
            );
        }
    }

    #[test]
    fn path_edges_exist_in_graph() {
        let g = diamond();
        let sp = Dijkstra::run(&g, NodeId(0));
        let path = sp.path_to(NodeId(2)).unwrap();
        for w in path.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn delay_or_inf_matches_option_api() {
        let g = diamond();
        let m = DelayMatrix::compute(&g);
        assert_eq!(m.delay_or_inf(NodeId(0), NodeId(2)), 2.0);
        assert!(m.delay_or_inf(NodeId(0), NodeId(3)).is_infinite());
    }
}
