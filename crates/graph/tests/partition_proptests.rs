//! Property tests for `partition_kway`: every input — including the
//! degenerate ones (k larger than the node count, disconnected graphs,
//! empty sides after bisection) — must yield a valid covering labeling,
//! and the labeling must be deterministic per input.

use edgerep_graph::partition::partition_kway;
use edgerep_graph::{Graph, NodeId};
use proptest::prelude::*;

/// Arbitrary small graph: `n` nodes plus a bag of random edges (parallel
/// edges allowed, self-loops filtered — the graph type rejects them).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        1usize..32,
        proptest::collection::vec((any::<u32>(), any::<u32>(), 0.01f64..10.0), 0..64),
    )
        .prop_map(|(n, edges)| {
            let mut g = Graph::with_nodes(n);
            for (u, v, w) in edges {
                let (u, v) = (u % n as u32, v % n as u32);
                if u != v {
                    g.add_edge(NodeId(u), NodeId(v), w);
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Labels are a dense covering partition: one label per node, labels
    /// dense in `0..r` with `r ≤ min(k, |V|)`, and every label non-empty.
    #[test]
    fn kway_labels_are_a_covering_partition(g in arb_graph(), k in 1usize..40) {
        let labels = partition_kway(&g, k);
        prop_assert_eq!(labels.len(), g.node_count());
        let parts = labels.iter().copied().max().unwrap() + 1;
        prop_assert!(parts <= k.min(g.node_count()));
        let mut seen = vec![false; parts];
        for &l in &labels {
            seen[l] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "label gap in {:?}", labels);
    }

    /// The partition is a pure function of (graph, k) — reruns are
    /// byte-identical, so experiment outputs stay reproducible per seed.
    #[test]
    fn kway_is_deterministic(g in arb_graph(), k in 1usize..40) {
        prop_assert_eq!(partition_kway(&g, k), partition_kway(&g, k));
    }
}
