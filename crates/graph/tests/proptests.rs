//! Property-based tests for the graph substrate.

use edgerep_graph::connectivity::{connect_components, connected_components, is_connected};
use edgerep_graph::partition::{cut_weight, partition_kway};
use edgerep_graph::shortest::bellman_ford;
use edgerep_graph::topology::{flat_random, FlatRandomConfig};
use edgerep_graph::{DelayMatrix, Dijkstra, Graph, NodeId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Strategy: an arbitrary graph as (node count, edge list with weights).
fn arb_graph(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = Graph> {
    (2..=max_nodes).prop_flat_map(move |n| {
        let edge = (0..n, 0..n, 0.0f64..10.0);
        proptest::collection::vec(edge, 0..=max_edges).prop_map(move |edges| {
            let mut g = Graph::with_nodes(n);
            for (u, v, w) in edges {
                if u != v {
                    g.add_edge(NodeId(u as u32), NodeId(v as u32), w);
                }
            }
            g
        })
    })
}

proptest! {
    /// Dijkstra agrees with the independent Bellman–Ford implementation.
    #[test]
    fn dijkstra_matches_bellman_ford(g in arb_graph(12, 30)) {
        for s in g.nodes() {
            let dj = Dijkstra::run(&g, s);
            let bf = bellman_ford(&g, s);
            for t in g.nodes() {
                let d = dj.delay_to(t).unwrap_or(f64::INFINITY);
                let b = bf[t.index()];
                prop_assert!(
                    (d.is_infinite() && b.is_infinite()) || (d - b).abs() < 1e-9,
                    "s={s} t={t} dijkstra={d} bellman_ford={b}"
                );
            }
        }
    }

    /// Shortest delays satisfy the triangle inequality.
    #[test]
    fn delay_matrix_triangle_inequality(g in arb_graph(10, 25)) {
        let m = DelayMatrix::compute(&g);
        for a in g.nodes() {
            for b in g.nodes() {
                for c in g.nodes() {
                    let ab = m.delay_or_inf(a, b);
                    let bc = m.delay_or_inf(b, c);
                    let ac = m.delay_or_inf(a, c);
                    prop_assert!(ac <= ab + bc + 1e-9, "{a}->{c} {ac} > {ab}+{bc}");
                }
            }
        }
    }

    /// Reconstructed shortest paths have the reported total delay.
    #[test]
    fn path_delay_matches_reported(g in arb_graph(10, 25)) {
        for s in g.nodes() {
            let dj = Dijkstra::run(&g, s);
            for t in g.nodes() {
                if let Some(path) = dj.path_to(t) {
                    let mut total = 0.0;
                    for w in path.windows(2) {
                        total += g.edge_weight(w[0], w[1]).expect("path edge exists");
                    }
                    prop_assert!((total - dj.delay_to(t).unwrap()).abs() < 1e-9);
                }
            }
        }
    }

    /// Connectivity repair always yields a connected graph, and component
    /// labels are consistent with reachability.
    #[test]
    fn repair_always_connects(g in arb_graph(15, 20), seed in any::<u64>()) {
        let mut g = g;
        let (labels, k) = connected_components(&g);
        prop_assert_eq!(labels.len(), g.node_count());
        prop_assert!(k >= 1);
        let mut rng = SmallRng::seed_from_u64(seed);
        connect_components(&mut g, &mut rng, (0.1, 1.0));
        prop_assert!(is_connected(&g));
    }

    /// Partition labels are always within range and the cut never exceeds
    /// the total edge weight.
    #[test]
    fn partition_invariants(g in arb_graph(14, 40), k in 1usize..6) {
        let labels = partition_kway(&g, k);
        prop_assert_eq!(labels.len(), g.node_count());
        prop_assert!(labels.iter().all(|&l| l < k));
        let cut = cut_weight(&g, &labels);
        prop_assert!(cut >= -1e-12);
        prop_assert!(cut <= g.total_edge_weight() + 1e-9);
    }

    /// The flat random generator respects its delay range and produces a
    /// connected graph for any seed.
    #[test]
    fn flat_random_contract(seed in any::<u64>(), n in 2usize..40) {
        let cfg = FlatRandomConfig { nodes: n, ..Default::default() };
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = flat_random(&cfg, &mut rng);
        prop_assert_eq!(g.node_count(), n);
        prop_assert!(is_connected(&g));
        let (lo, hi) = cfg.delay_range;
        for e in g.edges() {
            prop_assert!(e.weight >= lo && e.weight < hi);
        }
    }
}
