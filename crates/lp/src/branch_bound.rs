//! Branch-and-bound for 0/1 integer programs.
//!
//! Depth-first search over the binary variables of a [`LinearProgram`],
//! bounding each node with the LP relaxation from [`crate::simplex`] and
//! pruning against the incumbent. Fixings are expressed as equality rows
//! appended to a scratch copy of the program, which keeps the solver simple
//! at a small constant-factor cost — acceptable for the small-instance
//! `Optimal` reference this backs.

use crate::problem::{Cmp, LinearProgram, VarId};
use crate::simplex::{solve, LpError};

/// Result of an ILP solve.
#[derive(Debug, Clone)]
pub enum IlpOutcome {
    /// Proven optimal integer solution.
    Optimal {
        /// Optimal objective value.
        objective: f64,
        /// Optimal values (binaries are exactly 0.0 or 1.0).
        x: Vec<f64>,
    },
    /// No integer-feasible point exists.
    Infeasible,
    /// Node budget exhausted; carries the best incumbent if any was found.
    NodeLimit {
        /// Best integer solution found before the budget ran out, if any.
        incumbent: Option<(f64, Vec<f64>)>,
    },
}

const INT_EPS: f64 = 1e-6;

/// Solves `lp` with all [`LinearProgram::binary_vars`] restricted to
/// {0, 1}, exploring at most `node_limit` branch-and-bound nodes.
pub fn solve_ilp(lp: &LinearProgram, node_limit: usize) -> IlpOutcome {
    let binaries = lp.binary_vars();
    let mut best: Option<(f64, Vec<f64>)> = None;
    let mut nodes_used = 0usize;
    let mut stack: Vec<Vec<(VarId, f64)>> = vec![Vec::new()];

    while let Some(fixings) = stack.pop() {
        if nodes_used >= node_limit {
            return IlpOutcome::NodeLimit { incumbent: best };
        }
        nodes_used += 1;

        // Apply fixings as equality rows on a scratch copy.
        let mut node_lp = lp.clone();
        for &(v, val) in &fixings {
            node_lp.add_constraint(vec![(v, 1.0)], Cmp::Eq, val);
        }
        let relax = match solve(&node_lp) {
            Ok(s) => s,
            Err(LpError::Infeasible) => continue,
            // An unbounded relaxation with all binaries bounded means the
            // continuous part is unbounded; surface it as no-solution.
            Err(LpError::Unbounded) | Err(LpError::IterationLimit) => continue,
        };

        // Bound: prune when even the relaxation cannot beat the incumbent.
        if let Some((inc_obj, _)) = &best {
            if relax.objective <= inc_obj + 1e-9 {
                continue;
            }
        }

        // Find the most fractional binary.
        let mut branch_var: Option<(VarId, f64)> = None;
        let mut best_frac = INT_EPS;
        for &b in &binaries {
            let val = relax.x[b.0];
            let frac = (val - val.round()).abs();
            if frac > best_frac {
                best_frac = frac;
                branch_var = Some((b, val));
            }
        }

        match branch_var {
            None => {
                // Integer feasible: candidate incumbent.
                let mut x = relax.x.clone();
                for &b in &binaries {
                    x[b.0] = x[b.0].round();
                }
                let obj = lp.objective_at(&x);
                if best.as_ref().is_none_or(|(bo, _)| obj > *bo) {
                    best = Some((obj, x));
                }
            }
            Some((v, val)) => {
                // Explore the nearer branch first (DFS finds incumbents
                // faster that way).
                let mut zero = fixings.clone();
                zero.push((v, 0.0));
                let mut one = fixings;
                one.push((v, 1.0));
                if val >= 0.5 {
                    stack.push(zero);
                    stack.push(one);
                } else {
                    stack.push(one);
                    stack.push(zero);
                }
            }
        }
    }

    match best {
        Some((objective, x)) => IlpOutcome::Optimal { objective, x },
        None => IlpOutcome::Infeasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, LinearProgram};

    fn knapsack(values: &[f64], weights: &[f64], cap: f64) -> LinearProgram {
        let mut lp = LinearProgram::new();
        let vars: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| lp.add_binary_var(&format!("x{i}"), v))
            .collect();
        let terms = vars.iter().zip(weights).map(|(&v, &w)| (v, w)).collect();
        lp.add_constraint(terms, Cmp::Le, cap);
        lp
    }

    #[test]
    fn knapsack_optimum() {
        // Items (value, weight): (10,5) (6,4) (4,3), cap 7 -> take {6,4} = 10
        // vs {10} = 10; but (10,5)+(4,3)=8 > 7. Optimal = 10.
        let lp = knapsack(&[10.0, 6.0, 4.0], &[5.0, 4.0, 3.0], 7.0);
        let IlpOutcome::Optimal { objective, x } = solve_ilp(&lp, 1000) else {
            panic!("expected optimal");
        };
        assert!((objective - 10.0).abs() < 1e-6);
        for xi in &x {
            assert!((xi - xi.round()).abs() < 1e-6);
        }
    }

    #[test]
    fn knapsack_beats_lp_rounding() {
        // LP relaxation picks fractional b; ILP must settle on integers.
        let lp = knapsack(&[10.0, 6.0, 4.0], &[5.0, 4.0, 3.0], 7.0);
        let relax = crate::simplex::solve(&lp).unwrap();
        assert!(relax.objective >= 10.0); // 13 fractional
        let IlpOutcome::Optimal { objective, .. } = solve_ilp(&lp, 1000) else {
            panic!();
        };
        assert!(objective <= relax.objective + 1e-9);
    }

    #[test]
    fn infeasible_ilp() {
        let mut lp = LinearProgram::new();
        let a = lp.add_binary_var("a", 1.0);
        let b = lp.add_binary_var("b", 1.0);
        lp.add_constraint(vec![(a, 1.0), (b, 1.0)], Cmp::Ge, 3.0);
        assert!(matches!(solve_ilp(&lp, 100), IlpOutcome::Infeasible));
    }

    #[test]
    fn pure_continuous_passthrough() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", Some(4.0), 2.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 3.0);
        let IlpOutcome::Optimal { objective, x } = solve_ilp(&lp, 10) else {
            panic!();
        };
        assert!((objective - 6.0).abs() < 1e-6);
        assert!((x[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 5b + x st b + x <= 1.5, x <= 1 -> b=1, x=0.5 -> 5.5.
        let mut lp = LinearProgram::new();
        let b = lp.add_binary_var("b", 5.0);
        let x = lp.add_var("x", Some(1.0), 1.0);
        lp.add_constraint(vec![(b, 1.0), (x, 1.0)], Cmp::Le, 1.5);
        let IlpOutcome::Optimal { objective, x: sol } = solve_ilp(&lp, 100) else {
            panic!();
        };
        assert!((objective - 5.5).abs() < 1e-6);
        assert!((sol[0] - 1.0).abs() < 1e-6);
        assert!((sol[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn node_limit_reported() {
        // A 12-item knapsack with a tiny node budget.
        let values: Vec<f64> = (1..=12).map(|i| (i * 7 % 13) as f64 + 1.0).collect();
        let weights: Vec<f64> = (1..=12).map(|i| (i * 5 % 11) as f64 + 1.0).collect();
        let lp = knapsack(&values, &weights, 20.0);
        match solve_ilp(&lp, 2) {
            IlpOutcome::NodeLimit { .. } => {}
            other => panic!("expected node limit, got {other:?}"),
        }
    }

    #[test]
    fn equality_coupled_binaries() {
        // max a + b st a + b = 1 -> exactly one chosen.
        let mut lp = LinearProgram::new();
        let a = lp.add_binary_var("a", 1.0);
        let b = lp.add_binary_var("b", 1.0);
        lp.add_constraint(vec![(a, 1.0), (b, 1.0)], Cmp::Eq, 1.0);
        let IlpOutcome::Optimal { objective, x } = solve_ilp(&lp, 100) else {
            panic!();
        };
        assert!((objective - 1.0).abs() < 1e-6);
        assert!((x[0] + x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn exhaustive_cross_check_small_random() {
        // Brute-force all binary patterns and compare with B&B on a batch
        // of pseudo-random 6-item knapsacks with a side constraint.
        for seed in 0..10u64 {
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s % 97) as f64 / 10.0 + 0.5
            };
            let values: Vec<f64> = (0..6).map(|_| next()).collect();
            let weights: Vec<f64> = (0..6).map(|_| next()).collect();
            let cap = weights.iter().sum::<f64>() * 0.45;
            let mut lp = knapsack(&values, &weights, cap);
            // Side constraint: x0 + x1 <= 1.
            lp.add_constraint(vec![(VarId(0), 1.0), (VarId(1), 1.0)], Cmp::Le, 1.0);

            let mut brute = f64::NEG_INFINITY;
            for mask in 0..64u32 {
                let x: Vec<f64> = (0..6)
                    .map(|i| if mask & (1 << i) != 0 { 1.0 } else { 0.0 })
                    .collect();
                if lp.is_feasible(&x, 1e-9) {
                    brute = brute.max(lp.objective_at(&x));
                }
            }
            let IlpOutcome::Optimal { objective, .. } = solve_ilp(&lp, 100_000) else {
                panic!("seed {seed}: expected optimal");
            };
            assert!(
                (objective - brute).abs() < 1e-6,
                "seed {seed}: bb {objective} vs brute {brute}"
            );
        }
    }
}
