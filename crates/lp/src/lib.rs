#![warn(missing_docs)]

//! Linear and 0/1-integer programming substrate.
//!
//! The paper formulates proactive data replication and placement as the ILP
//! (1)–(7) and reasons about its LP dual (8)–(14). The offline dependency
//! set contains no solver, so this crate implements one from scratch:
//!
//! * [`problem::LinearProgram`] — a small modelling layer (maximize, `≤ / ≥
//!   / =` rows, non-negative variables with optional upper bounds, binary
//!   markers).
//! * [`simplex`] — a dense two-phase primal simplex with Bland's
//!   anti-cycling rule; reports primal values, objective, and dual values
//!   per row.
//! * [`branch_bound`] — depth-first best-bound branch-and-bound over the
//!   binary variables, with incumbent pruning and a node budget.
//!
//! Scale expectations: instances are dense tableaus, fine for the
//! small-instance `Optimal` reference (hundreds of variables) used to
//! validate the approximation algorithms; the production-path algorithms in
//! `edgerep-core` never call into this crate.
//!
//! # Example
//!
//! ```
//! use edgerep_lp::problem::{Cmp, LinearProgram};
//!
//! // max 3x + 2y  s.t.  x + y <= 4,  x <= 2
//! let mut lp = LinearProgram::new();
//! let x = lp.add_var("x", Some(2.0), 3.0);
//! let y = lp.add_var("y", None, 2.0);
//! lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
//! let sol = edgerep_lp::simplex::solve(&lp).unwrap();
//! assert!((sol.objective - 10.0).abs() < 1e-9);
//! ```

pub mod branch_bound;
pub mod problem;
pub mod simplex;

pub use branch_bound::{solve_ilp, IlpOutcome};
pub use problem::{Cmp, LinearProgram, VarId};
pub use simplex::{solve, LpError, LpSolution};
