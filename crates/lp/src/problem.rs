//! Modelling layer: variables, rows, and validation.

/// Handle to a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Row comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// A decision variable: non-negative, optionally upper-bounded, optionally
/// marked binary for the branch-and-bound layer.
#[derive(Debug, Clone)]
pub struct Variable {
    /// Diagnostic name (shows up in panics and debug dumps).
    pub name: String,
    /// Optional upper bound (`None` = unbounded above).
    pub upper: Option<f64>,
    /// Objective coefficient (the LP always maximizes).
    pub objective: f64,
    /// Whether branch-and-bound must drive this variable to {0, 1}.
    pub binary: bool,
}

/// A linear constraint row.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Sparse (variable, coefficient) terms.
    pub terms: Vec<(VarId, f64)>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A maximization linear program over non-negative variables.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    /// All variables, indexed by [`VarId`].
    pub variables: Vec<Variable>,
    /// All constraint rows.
    pub constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a continuous variable `0 ≤ x (≤ upper)` with the given objective
    /// coefficient.
    pub fn add_var(&mut self, name: &str, upper: Option<f64>, objective: f64) -> VarId {
        assert!(objective.is_finite(), "objective for {name} must be finite");
        if let Some(u) = upper {
            assert!(u.is_finite() && u >= 0.0, "upper bound for {name} invalid");
        }
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name: name.to_owned(),
            upper,
            objective,
            binary: false,
        });
        id
    }

    /// Adds a binary variable `x ∈ {0, 1}` (relaxed to `[0, 1]` by the LP).
    pub fn add_binary_var(&mut self, name: &str, objective: f64) -> VarId {
        let id = self.add_var(name, Some(1.0), objective);
        self.variables[id.0].binary = true;
        id
    }

    /// Adds a constraint row. Zero-coefficient terms are dropped; duplicate
    /// variables are merged.
    pub fn add_constraint(&mut self, terms: Vec<(VarId, f64)>, cmp: Cmp, rhs: f64) {
        assert!(rhs.is_finite(), "rhs must be finite");
        let mut merged: Vec<(VarId, f64)> = Vec::with_capacity(terms.len());
        for (v, c) in terms {
            assert!(v.0 < self.variables.len(), "unknown variable in row");
            assert!(c.is_finite(), "coefficient must be finite");
            if c == 0.0 {
                continue;
            }
            if let Some(entry) = merged.iter_mut().find(|(ev, _)| *ev == v) {
                entry.1 += c;
            } else {
                merged.push((v, c));
            }
        }
        self.constraints.push(Constraint {
            terms: merged,
            cmp,
            rhs,
        });
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraint rows (excluding variable bounds).
    pub fn row_count(&self) -> usize {
        self.constraints.len()
    }

    /// Ids of the binary variables.
    pub fn binary_vars(&self) -> Vec<VarId> {
        self.variables
            .iter()
            .enumerate()
            .filter(|(_, v)| v.binary)
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Evaluates the objective at a point.
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.variables.len());
        self.variables
            .iter()
            .zip(x.iter())
            .map(|(v, xi)| v.objective * xi)
            .sum()
    }

    /// Whether `x` satisfies every row and bound to tolerance `eps`.
    pub fn is_feasible(&self, x: &[f64], eps: f64) -> bool {
        if x.len() != self.variables.len() {
            return false;
        }
        for (v, &xi) in self.variables.iter().zip(x.iter()) {
            if xi < -eps {
                return false;
            }
            if let Some(u) = v.upper {
                if xi > u + eps {
                    return false;
                }
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * x[v.0]).sum();
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + eps,
                Cmp::Ge => lhs >= c.rhs - eps,
                Cmp::Eq => (lhs - c.rhs).abs() <= eps,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_small_program() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", Some(2.0), 3.0);
        let y = lp.add_var("y", None, 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        assert_eq!(lp.var_count(), 2);
        assert_eq!(lp.row_count(), 1);
        assert_eq!(lp.objective_at(&[1.0, 2.0]), 7.0);
    }

    #[test]
    fn duplicate_terms_merge() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", None, 1.0);
        lp.add_constraint(vec![(x, 1.0), (x, 2.0)], Cmp::Le, 3.0);
        assert_eq!(lp.constraints[0].terms, vec![(x, 3.0)]);
    }

    #[test]
    fn zero_terms_dropped() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", None, 1.0);
        let y = lp.add_var("y", None, 1.0);
        lp.add_constraint(vec![(x, 0.0), (y, 1.0)], Cmp::Ge, 1.0);
        assert_eq!(lp.constraints[0].terms, vec![(y, 1.0)]);
    }

    #[test]
    fn binary_vars_tracked() {
        let mut lp = LinearProgram::new();
        lp.add_var("x", None, 1.0);
        let b = lp.add_binary_var("b", 1.0);
        assert_eq!(lp.binary_vars(), vec![b]);
        assert_eq!(lp.variables[b.0].upper, Some(1.0));
    }

    #[test]
    fn feasibility_checks_bounds_and_rows() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", Some(2.0), 1.0);
        let y = lp.add_var("y", None, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(vec![(y, 1.0)], Cmp::Ge, 1.0);
        lp.add_constraint(vec![(x, 2.0)], Cmp::Eq, 2.0);
        assert!(lp.is_feasible(&[1.0, 2.0], 1e-9));
        assert!(!lp.is_feasible(&[1.0, 3.5], 1e-9)); // row 1 violated
        assert!(!lp.is_feasible(&[1.0, 0.5], 1e-9)); // row 2 violated
        assert!(!lp.is_feasible(&[0.5, 1.0], 1e-9)); // eq violated
        assert!(!lp.is_feasible(&[-0.1, 1.2], 1e-9)); // lower bound
        assert!(!lp.is_feasible(&[1.0], 1e-9)); // arity
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn unknown_var_in_row_rejected() {
        let mut lp = LinearProgram::new();
        lp.add_constraint(vec![(VarId(3), 1.0)], Cmp::Le, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rhs_rejected() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", None, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, f64::NAN);
    }
}
