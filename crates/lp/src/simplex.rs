//! Dense two-phase primal simplex.
//!
//! Solves `max cᵀx` s.t. the rows of a [`LinearProgram`], `x ≥ 0`, with
//! variable upper bounds rewritten as explicit rows. Bland's rule is used
//! for both pivot choices, which guarantees termination on degenerate
//! tableaus at the cost of some extra pivots — a fine trade for the
//! small-instance `Optimal` reference this crate backs.
//!
//! Dual values are recovered from the final tableau: the columns that
//! started as the identity (slacks and artificials) hold `B⁻¹`, so
//! `y = c_B B⁻¹` is a dot product per row. Signs follow the max-LP
//! convention: `≤` rows get `y ≥ 0`, `≥` rows `y ≤ 0`, `=` rows free.

use crate::problem::{Cmp, LinearProgram};

/// Why the solver could not return an optimum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// No point satisfies all rows.
    Infeasible,
    /// The objective increases without bound.
    Unbounded,
    /// Pivot budget exhausted (numerical trouble; never seen in tests).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "infeasible"),
            LpError::Unbounded => write!(f, "unbounded"),
            LpError::IterationLimit => write!(f, "iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// An optimal solution.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Optimal objective value.
    pub objective: f64,
    /// Optimal primal values, indexed by `VarId`.
    pub x: Vec<f64>,
    /// Dual value per original constraint row (not per bound row).
    pub duals: Vec<f64>,
}

const EPS: f64 = 1e-9;

/// Internal standard-form tableau.
struct Tableau {
    /// `rows × (cols + 1)`; last column is the RHS.
    t: Vec<Vec<f64>>,
    /// Basic variable (column index) per row.
    basis: Vec<usize>,
    /// Total structural + slack + artificial columns.
    cols: usize,
    /// Columns that are artificial (banned from entering in phase 2).
    artificial: Vec<bool>,
    /// Identity column introduced for each standard-form row.
    identity_col: Vec<usize>,
}

impl Tableau {
    /// One pivot: enter `col`, leave via row `row`.
    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.t[row][col];
        debug_assert!(piv.abs() > EPS, "pivot too small: {piv}");
        let inv = 1.0 / piv;
        for x in &mut self.t[row] {
            *x *= inv;
        }
        let pivot_row = self.t[row].clone();
        for (r, trow) in self.t.iter_mut().enumerate() {
            if r == row {
                continue;
            }
            let factor = trow[col];
            if factor.abs() <= EPS {
                trow[col] = 0.0;
                continue;
            }
            for (x, p) in trow.iter_mut().zip(pivot_row.iter()) {
                *x -= factor * p;
            }
            trow[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Runs the simplex loop maximizing `obj` (a cost per column), with
    /// artificial columns excluded from entering when `ban_artificials`.
    /// Returns the optimal objective value or an error.
    ///
    /// Reduced costs `z_j − c_j` are kept in an explicit objective row that
    /// is recomputed once at entry (the basis changed between phases) and
    /// then updated incrementally by each pivot, so an iteration costs one
    /// O(cols) scan plus one O(rows·cols) pivot.
    fn optimize(&mut self, obj: &[f64], ban_artificials: bool) -> Result<f64, LpError> {
        let rows = self.t.len();
        // Build the objective row from scratch for the current basis:
        // zrow[j] = c_B B^{-1} A_j - c_j, zrow[cols] = c_B B^{-1} b.
        let cb: Vec<f64> = self.basis.iter().map(|&b| obj[b]).collect();
        let mut zrow = vec![0.0; self.cols + 1];
        for (j, z) in zrow.iter_mut().enumerate() {
            let zj: f64 = (0..rows).map(|r| cb[r] * self.t[r][j]).sum();
            *z = if j < self.cols { zj - obj[j] } else { zj };
        }
        let max_iters = 50_000 + 200 * (rows + self.cols);
        for _ in 0..max_iters {
            // Entering column: Bland — smallest index with negative
            // reduced cost (i.e. increasing it improves the objective).
            let mut entering = None;
            for (j, &z) in zrow.iter().take(self.cols).enumerate() {
                if ban_artificials && self.artificial[j] {
                    continue;
                }
                if z < -EPS && !self.basis.contains(&j) {
                    entering = Some(j);
                    break;
                }
            }
            let Some(col) = entering else {
                return Ok(zrow[self.cols]);
            };
            // Leaving row: min ratio; Bland tie-break on basis index.
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..rows {
                let a = self.t[r][col];
                if a > EPS {
                    let ratio = self.t[r][self.cols] / a;
                    let better = match leave {
                        None => true,
                        Some((lr, lratio)) => {
                            ratio < lratio - EPS
                                || (ratio < lratio + EPS && self.basis[r] < self.basis[lr])
                        }
                    };
                    if better {
                        leave = Some((r, ratio));
                    }
                }
            }
            let Some((row, _)) = leave else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
            // Update the objective row against the (now unit) pivot row.
            let factor = zrow[col];
            if factor.abs() > EPS {
                for (z, p) in zrow.iter_mut().zip(self.t[row].iter()) {
                    *z -= factor * p;
                }
            }
            zrow[col] = 0.0;
        }
        Err(LpError::IterationLimit)
    }
}

/// Solves the program to optimality.
pub fn solve(lp: &LinearProgram) -> Result<LpSolution, LpError> {
    let n = lp.var_count();
    let original_rows = lp.row_count();

    // Assemble standard-form rows: (dense coeffs, cmp, rhs), with variable
    // upper bounds appended as `x_i <= u` rows.
    let mut rows: Vec<(Vec<f64>, Cmp, f64)> = Vec::with_capacity(original_rows);
    for c in &lp.constraints {
        let mut coeffs = vec![0.0; n];
        for &(v, a) in &c.terms {
            coeffs[v.0] = a;
        }
        rows.push((coeffs, c.cmp, c.rhs));
    }
    for (i, v) in lp.variables.iter().enumerate() {
        if let Some(u) = v.upper {
            let mut coeffs = vec![0.0; n];
            coeffs[i] = 1.0;
            rows.push((coeffs, Cmp::Le, u));
        }
    }

    // Normalize RHS >= 0.
    for (coeffs, cmp, rhs) in &mut rows {
        if *rhs < 0.0 {
            for c in coeffs.iter_mut() {
                *c = -*c;
            }
            *rhs = -*rhs;
            *cmp = match *cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
    }

    // Column layout: structurals | slacks/surpluses | artificials.
    let m = rows.len();
    let mut slack_count = 0;
    let mut art_count = 0;
    for (_, cmp, _) in &rows {
        match cmp {
            Cmp::Le => slack_count += 1,
            Cmp::Ge => {
                slack_count += 1;
                art_count += 1;
            }
            Cmp::Eq => art_count += 1,
        }
    }
    let cols = n + slack_count + art_count;
    let mut t = vec![vec![0.0; cols + 1]; m];
    let mut basis = vec![0usize; m];
    let mut artificial = vec![false; cols];
    let mut identity_col = vec![0usize; m];
    let mut next_slack = n;
    let mut next_art = n + slack_count;
    for (r, (coeffs, cmp, rhs)) in rows.iter().enumerate() {
        t[r][..n].copy_from_slice(coeffs);
        t[r][cols] = *rhs;
        match cmp {
            Cmp::Le => {
                t[r][next_slack] = 1.0;
                basis[r] = next_slack;
                identity_col[r] = next_slack;
                next_slack += 1;
            }
            Cmp::Ge => {
                t[r][next_slack] = -1.0;
                next_slack += 1;
                t[r][next_art] = 1.0;
                artificial[next_art] = true;
                basis[r] = next_art;
                identity_col[r] = next_art;
                next_art += 1;
            }
            Cmp::Eq => {
                t[r][next_art] = 1.0;
                artificial[next_art] = true;
                basis[r] = next_art;
                identity_col[r] = next_art;
                next_art += 1;
            }
        }
    }

    let mut tab = Tableau {
        t,
        basis,
        cols,
        artificial,
        identity_col,
    };

    // Phase 1: maximize -Σ artificials; feasible iff optimum is ~0.
    if art_count > 0 {
        let mut phase1 = vec![0.0; cols];
        for (j, is_art) in tab.artificial.iter().enumerate() {
            if *is_art {
                phase1[j] = -1.0;
            }
        }
        let v = tab.optimize(&phase1, false)?;
        if v < -1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive lingering artificial basics out where a structural pivot
        // exists; rows that stay artificial are redundant (RHS ~ 0).
        for r in 0..m {
            if tab.artificial[tab.basis[r]] {
                if let Some(col) =
                    (0..cols).find(|&j| !tab.artificial[j] && tab.t[r][j].abs() > EPS)
                {
                    tab.pivot(r, col);
                }
            }
        }
    }

    // Phase 2: the real objective; artificials banned from entering.
    let mut obj = vec![0.0; cols];
    for (i, v) in lp.variables.iter().enumerate() {
        obj[i] = v.objective;
    }
    let objective = tab.optimize(&obj, true)?;

    // Extract primal values.
    let mut x = vec![0.0; n];
    for (r, &b) in tab.basis.iter().enumerate() {
        if b < n {
            x[b] = tab.t[r][tab.cols];
        }
    }
    // Clamp -0.0 / tiny negatives from roundoff.
    for xi in &mut x {
        if xi.abs() < EPS {
            *xi = 0.0;
        }
    }

    // Duals for the original rows: y = c_B B^{-1}, where B^{-1}'s columns
    // sit at each row's initial identity column.
    let cb: Vec<f64> = tab.basis.iter().map(|&b| obj[b]).collect();
    let mut duals = Vec::with_capacity(original_rows);
    for r0 in 0..original_rows {
        let col = tab.identity_col[r0];
        let mut y: f64 = (0..m).map(|r| cb[r] * tab.t[r][col]).sum();
        // A `≥` row's identity column is its artificial (+1); the surplus
        // column is -1·identity, and the conventional dual for the original
        // (un-normalized) row keeps the artificial's sign, so no flip here.
        // Rows normalized by ×(-1) flip their dual sign back.
        if lp.constraints[r0].rhs < 0.0 {
            y = -y;
        }
        duals.push(y);
    }

    Ok(LpSolution {
        objective,
        x,
        duals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, LinearProgram};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_two_vars() {
        // max 3x + 5y st x <= 4, 2y <= 12, 3x + 2y <= 18 -> 36 at (2, 6).
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", None, 3.0);
        let y = lp.add_var("y", None, 5.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn upper_bounds_respected() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", Some(2.0), 3.0);
        let y = lp.add_var("y", None, 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 10.0); // x=2, y=2
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 2.0);
    }

    #[test]
    fn ge_and_eq_rows() {
        // max x + y st x + y = 5, x >= 2 -> 5, any split with x >= 2.
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", None, 1.0);
        let y = lp.add_var("y", None, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 5.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 5.0);
        assert!(s.x[0] >= 2.0 - 1e-9);
        assert_close(s.x[0] + s.x[1], 5.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", None, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(solve(&lp).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", None, 1.0);
        let y = lp.add_var("y", None, 0.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Cmp::Le, 1.0);
        assert_eq!(solve(&lp).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalized() {
        // max -x st -x >= -3  (i.e. x <= 3) -> objective 0 at x = 0.
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", None, -1.0);
        lp.add_constraint(vec![(x, -1.0)], Cmp::Ge, -3.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 0.0);
        // And forcing x >= 1 via negative-rhs Le: -x <= -1.
        lp.add_constraint(vec![(x, -1.0)], Cmp::Le, -1.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, -1.0);
        assert_close(s.x[0], 1.0);
    }

    #[test]
    fn degenerate_program_terminates() {
        // Classic degeneracy: multiple rows tight at the optimum.
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", None, 1.0);
        let y = lp.add_var("y", None, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 0.0)], Cmp::Le, 1.0);
        lp.add_constraint(vec![(y, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 2.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn duals_of_le_program() {
        // max 3x + 5y; duals of the tight rows from the textbook case:
        // y2 = 3/2, y3 = 1, y1 = 0.
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", None, 3.0);
        let y = lp.add_var("y", None, 5.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(vec![(y, 2.0)], Cmp::Le, 12.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let s = solve(&lp).unwrap();
        assert_close(s.duals[0], 0.0);
        assert_close(s.duals[1], 1.5);
        assert_close(s.duals[2], 1.0);
        // Strong duality: b^T y == objective.
        let dual_obj = 4.0 * s.duals[0] + 12.0 * s.duals[1] + 18.0 * s.duals[2];
        assert_close(dual_obj, s.objective);
    }

    #[test]
    fn equality_only_system() {
        // max x st x = 2.5 (plus y to keep it interesting).
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", None, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Eq, 2.5);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 2.5);
        assert_close(s.x[0], 2.5);
    }

    #[test]
    fn redundant_equalities_ok() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", None, 1.0);
        let y = lp.add_var("y", None, 0.5);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Eq, 4.0);
        lp.add_constraint(vec![(x, 2.0), (y, 2.0)], Cmp::Eq, 8.0); // redundant
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 4.0); // all weight on x
        assert_close(s.x[0], 4.0);
    }

    #[test]
    fn zero_rhs_feasible_origin() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", None, -1.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, 0.0);
        let s = solve(&lp).unwrap();
        assert_close(s.objective, 0.0);
    }

    #[test]
    fn fractional_lp_relaxation_of_knapsack() {
        // max 10a + 6b + 4c st 5a + 4b + 3c <= 7, binaries relaxed.
        let mut lp = LinearProgram::new();
        let a = lp.add_binary_var("a", 10.0);
        let b = lp.add_binary_var("b", 6.0);
        let c = lp.add_binary_var("c", 4.0);
        lp.add_constraint(vec![(a, 5.0), (b, 4.0), (c, 3.0)], Cmp::Le, 7.0);
        let s = solve(&lp).unwrap();
        // LP optimum: a = 1, b = 0.5, c = 0 -> 13.
        assert_close(s.objective, 13.0);
        assert_close(s.x[0], 1.0);
        assert_close(s.x[1], 0.5);
    }
}
