//! Degeneracy regression tests: classic LPs that cycle under naive pivot
//! rules must terminate under Bland's rule.

use edgerep_lp::problem::{Cmp, LinearProgram};
use edgerep_lp::solve;

/// Beale's classic cycling example (1955): cycles forever under the
/// most-negative-reduced-cost rule without anti-cycling.
///
/// min −0.75x₄ + 150x₅ − 0.02x₆ + 6x₇   (as max of the negation)
/// s.t. 0.25x₄ − 60x₅ − 0.04x₆ + 9x₇ ≤ 0
///      0.5x₄ − 90x₅ − 0.02x₆ + 3x₇ ≤ 0
///      x₆ ≤ 1
/// Optimum: 0.05 (for the max form) at x₄ = 0.04·25 = 1, x₆ = 1.
#[test]
fn beale_cycling_example_terminates() {
    let mut lp = LinearProgram::new();
    let x4 = lp.add_var("x4", None, 0.75);
    let x5 = lp.add_var("x5", None, -150.0);
    let x6 = lp.add_var("x6", None, 0.02);
    let x7 = lp.add_var("x7", None, -6.0);
    lp.add_constraint(
        vec![(x4, 0.25), (x5, -60.0), (x6, -0.04), (x7, 9.0)],
        Cmp::Le,
        0.0,
    );
    lp.add_constraint(
        vec![(x4, 0.5), (x5, -90.0), (x6, -0.02), (x7, 3.0)],
        Cmp::Le,
        0.0,
    );
    lp.add_constraint(vec![(x6, 1.0)], Cmp::Le, 1.0);
    let sol = solve(&lp).expect("Beale's example is solvable");
    assert!(
        (sol.objective - 0.05).abs() < 1e-6,
        "objective {}",
        sol.objective
    );
    assert!(lp.is_feasible(&sol.x, 1e-9));
}

/// Kuhn's degenerate example — another classic cycler.
#[test]
fn kuhn_degenerate_example_terminates() {
    // max 2x1 + 3x2 - x3 - 12x4
    // s.t. -2x1 - 9x2 + x3 + 9x4 <= 0
    //       x1/3 + x2 - x3/3 - 2x4 <= 0
    // Unbounded in exact arithmetic (x2 direction with compensation) or
    // bounded at 0 — what matters here is termination, not the optimum.
    let mut lp = LinearProgram::new();
    let x1 = lp.add_var("x1", None, 2.0);
    let x2 = lp.add_var("x2", None, 3.0);
    let x3 = lp.add_var("x3", None, -1.0);
    let x4 = lp.add_var("x4", None, -12.0);
    lp.add_constraint(
        vec![(x1, -2.0), (x2, -9.0), (x3, 1.0), (x4, 9.0)],
        Cmp::Le,
        0.0,
    );
    lp.add_constraint(
        vec![(x1, 1.0 / 3.0), (x2, 1.0), (x3, -1.0 / 3.0), (x4, -2.0)],
        Cmp::Le,
        0.0,
    );
    // Either outcome is legitimate; the test is that we return at all.
    let _ = solve(&lp);
}

/// Fully degenerate square system: many rows tight at the origin.
#[test]
fn origin_degenerate_pile_terminates() {
    let mut lp = LinearProgram::new();
    let x = lp.add_var("x", None, 1.0);
    let y = lp.add_var("y", None, 1.0);
    for i in 0..12 {
        let a = 1.0 + i as f64 * 0.1;
        lp.add_constraint(vec![(x, a), (y, 1.0)], Cmp::Le, 0.0);
    }
    let sol = solve(&lp).expect("feasible at the origin");
    assert!(sol.objective.abs() < 1e-9);
}

/// Duals of `≥` rows are non-positive in a max LP.
#[test]
fn ge_row_duals_have_correct_sign() {
    // max -x st x >= 2 -> optimum -2, dual of the >= row should be <= 0
    // (tight, value -1 by strong duality: -2 = 2*y => y = -1).
    let mut lp = LinearProgram::new();
    let x = lp.add_var("x", None, -1.0);
    lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 2.0);
    let sol = solve(&lp).unwrap();
    assert!((sol.objective + 2.0).abs() < 1e-6);
    assert!(sol.duals[0] <= 1e-9, "dual {} should be <= 0", sol.duals[0]);
    assert!((sol.duals[0] + 1.0).abs() < 1e-6);
}
