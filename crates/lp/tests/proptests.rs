//! Property-based tests for the LP/ILP substrate.

use edgerep_lp::problem::{Cmp, LinearProgram};
use edgerep_lp::{solve, solve_ilp, IlpOutcome, LpError};
use proptest::prelude::*;

/// A random bounded-feasible maximization LP: every variable gets an upper
/// bound and all rows are `≤` with non-negative coefficients, so the origin
/// is always feasible and the optimum is finite.
fn arb_bounded_lp() -> impl Strategy<Value = LinearProgram> {
    let var = (0.5f64..5.0, -3.0f64..5.0); // (upper bound, objective)
    let vars = proptest::collection::vec(var, 1..6);
    vars.prop_flat_map(|vars| {
        let n = vars.len();
        let row = (proptest::collection::vec(0.0f64..3.0, n), 0.5f64..8.0);
        let rows = proptest::collection::vec(row, 0..5);
        rows.prop_map(move |rows| {
            let mut lp = LinearProgram::new();
            let ids: Vec<_> = vars
                .iter()
                .enumerate()
                .map(|(i, &(u, c))| lp.add_var(&format!("x{i}"), Some(u), c))
                .collect();
            for (coeffs, rhs) in rows {
                let terms = ids.iter().zip(&coeffs).map(|(&v, &c)| (v, c)).collect();
                lp.add_constraint(terms, Cmp::Le, rhs);
            }
            lp
        })
    })
}

proptest! {
    /// The simplex solution is primal-feasible and at least as good as the
    /// origin and every coordinate extreme we can cheaply enumerate.
    #[test]
    fn simplex_feasible_and_dominant(lp in arb_bounded_lp()) {
        let sol = solve(&lp).expect("bounded-feasible by construction");
        prop_assert!(lp.is_feasible(&sol.x, 1e-6), "x = {:?}", sol.x);
        prop_assert!((lp.objective_at(&sol.x) - sol.objective).abs() < 1e-6);
        // Origin is feasible, so the optimum is >= 0 whenever all objective
        // coefficients of some feasible direction are... just check origin.
        prop_assert!(sol.objective >= -1e-9);
    }

    /// Weak duality holds for `≤`-only programs: `bᵀy ≥ cᵀx*` at optimum
    /// (equality by strong duality, checked with slack for roundoff), and
    /// `≤`-row duals are non-negative.
    #[test]
    fn strong_duality_on_le_programs(lp in arb_bounded_lp()) {
        let sol = solve(&lp).expect("solvable");
        for (&y, c) in sol.duals.iter().zip(lp.constraints.iter()) {
            prop_assert!(y >= -1e-7, "negative dual {y} on a <= row");
            let _ = c;
        }
        // Strong duality over rows + variable bounds: reconstruct the bound
        // duals via complementary slackness is overkill; instead verify the
        // Lagrangian bound: for any y >= 0,
        //   obj <= b^T y + sum_i max(0, c_i - (A^T y)_i) * u_i.
        let n = lp.var_count();
        let mut aty = vec![0.0; n];
        for (c, &y) in lp.constraints.iter().zip(sol.duals.iter()) {
            for &(v, a) in &c.terms {
                aty[v.0] += a * y;
            }
        }
        let mut bound: f64 = lp
            .constraints
            .iter()
            .zip(sol.duals.iter())
            .map(|(c, &y)| c.rhs * y)
            .sum();
        for (i, var) in lp.variables.iter().enumerate() {
            let slack = var.objective - aty[i];
            if slack > 0.0 {
                bound += slack * var.upper.expect("all vars bounded");
            }
        }
        prop_assert!(
            sol.objective <= bound + 1e-6,
            "objective {} exceeds Lagrangian bound {}",
            sol.objective,
            bound
        );
    }

    /// The ILP optimum never exceeds the LP relaxation and is attained by a
    /// fully integral point.
    #[test]
    fn ilp_below_relaxation(values in proptest::collection::vec(0.5f64..10.0, 1..7),
                            cap_frac in 0.2f64..0.9) {
        let mut lp = LinearProgram::new();
        let n = values.len();
        let ids: Vec<_> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| lp.add_binary_var(&format!("b{i}"), v))
            .collect();
        let weights: Vec<f64> = values.iter().map(|v| v * 0.7 + 1.0).collect();
        let cap = weights.iter().sum::<f64>() * cap_frac;
        lp.add_constraint(
            ids.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect(),
            Cmp::Le,
            cap,
        );
        let relax = solve(&lp).expect("knapsack LP solvable");
        match solve_ilp(&lp, 200_000) {
            IlpOutcome::Optimal { objective, x } => {
                prop_assert!(objective <= relax.objective + 1e-6);
                prop_assert!(lp.is_feasible(&x, 1e-6));
                for i in 0..n {
                    let xi = x[ids[i].0];
                    prop_assert!((xi - xi.round()).abs() < 1e-6);
                }
            }
            other => prop_assert!(false, "unexpected outcome {other:?}"),
        }
    }

    /// Infeasibility is symmetric: adding contradictory rows always yields
    /// `Infeasible`, never a bogus optimum.
    #[test]
    fn contradictory_rows_detected(rhs in 0.5f64..5.0) {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", None, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Le, rhs);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, rhs + 1.0);
        prop_assert_eq!(solve(&lp).unwrap_err(), LpError::Infeasible);
    }
}
