//! Cached deadline-feasible candidate lists for the solver hot path.
//!
//! Every constructive solver repeatedly asks the same question: *which
//! compute nodes can serve demand `i` of query `q` within its deadline,
//! and at what base delay?* The answer depends only on the instance
//! (topology, dataset sizes, query homes/selectivities/deadlines), never
//! on solver state, so it is computed once per [`Instance`] and stored
//! here as a flat struct-of-arrays matrix:
//!
//! ```text
//! query_start:  [q0, q1, ...]          query → first flat demand index
//! demand_start: [d0, d1, ...]          flat demand → candidate range
//! cand_nodes:   [v, v, v, ...]         candidate node ids, ascending
//! cand_delays:  [D, D, D, ...]         matching base assignment delays
//! ```
//!
//! The candidate list for a demand holds exactly the nodes whose **base**
//! delay [`assignment_delay`] passes the shared deadline filter
//! `D ≤ deadline + FEASIBILITY_EPS`, in ascending node-id order — the
//! same order a naive `compute_ids()` probe visits, so tie-breaks (and
//! therefore solver output) are bit-for-bit unchanged. Erasure-coding
//! read overhead is *not* baked in (it depends on the evolving holder
//! set); it is non-negative, so any node failing the base filter would
//! fail the full check too, and pre-filtering is output-safe for every
//! redundancy scheme.
//!
//! NaN base delays (possible when a caller injects poisoned link
//! weights) fail the `≤` filter and are excluded, which also makes the
//! cached scan NaN-inert.

use crate::delay::assignment_delay;
use crate::instance::Instance;
use crate::network::ComputeNodeId;
use crate::query::QueryId;
use crate::solution::FEASIBILITY_EPS;

/// Flat per-(query, demand) deadline-feasible candidate matrix.
///
/// Built lazily via [`Instance::solver_cache`]; immutable afterwards
/// (an [`Instance`] is itself immutable, so topology changes mean a new
/// instance and thus a fresh cache).
#[derive(Debug, Clone)]
pub struct SolverCache {
    /// `query_start[q] .. query_start[q + 1]` spans query `q`'s demands
    /// in `demand_start`.
    query_start: Vec<u32>,
    /// `demand_start[f] .. demand_start[f + 1]` spans flat demand `f`'s
    /// candidates in `cand_nodes` / `cand_delays`.
    demand_start: Vec<u32>,
    /// Candidate compute nodes, ascending id within each demand.
    cand_nodes: Vec<u32>,
    /// Base assignment delay of the matching candidate.
    cand_delays: Vec<f64>,
}

impl SolverCache {
    /// Builds the cache by probing every (query, demand, node) triple
    /// once through the canonical delay law.
    pub fn build(inst: &Instance) -> Self {
        let n_queries = inst.queries().len();
        let mut query_start = Vec::with_capacity(n_queries + 1);
        let mut demand_start = Vec::new();
        let mut cand_nodes = Vec::new();
        let mut cand_delays = Vec::new();
        query_start.push(0u32);
        demand_start.push(0u32);
        for q in inst.query_ids() {
            let query = inst.query(q);
            for idx in 0..query.demands.len() {
                for v in inst.cloud().compute_ids() {
                    let base = assignment_delay(inst, q, idx, v);
                    if base <= query.deadline + FEASIBILITY_EPS {
                        cand_nodes.push(v.0);
                        cand_delays.push(base);
                    }
                }
                demand_start.push(cand_nodes.len() as u32);
            }
            query_start.push((demand_start.len() - 1) as u32);
        }
        Self {
            query_start,
            demand_start,
            cand_nodes,
            cand_delays,
        }
    }

    /// Deadline-feasible candidates for demand `idx` of query `q`, as
    /// `(node, base_delay)` pairs in ascending node-id order.
    #[inline]
    pub fn candidates(
        &self,
        q: QueryId,
        idx: usize,
    ) -> impl ExactSizeIterator<Item = (ComputeNodeId, f64)> + '_ {
        let flat = self.query_start[q.index()] as usize + idx;
        let lo = self.demand_start[flat] as usize;
        let hi = self.demand_start[flat + 1] as usize;
        self.cand_nodes[lo..hi]
            .iter()
            .zip(&self.cand_delays[lo..hi])
            .map(|(&v, &d)| (ComputeNodeId(v), d))
    }

    /// Number of feasible candidates for demand `idx` of query `q`.
    #[inline]
    pub fn candidate_count(&self, q: QueryId, idx: usize) -> usize {
        let flat = self.query_start[q.index()] as usize + idx;
        (self.demand_start[flat + 1] - self.demand_start[flat]) as usize
    }

    /// Total candidate entries across all demands (diagnostics: how much
    /// the pre-filter shrank the naive |demands| × |V| probe space).
    pub fn total_candidates(&self) -> usize {
        self.cand_nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::is_deadline_feasible;
    use crate::network::EdgeCloudBuilder;
    use crate::query::Demand;
    use crate::InstanceBuilder;

    fn instance() -> Instance {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let c0 = b.add_cloudlet(8.0, 0.01);
        let c1 = b.add_cloudlet(8.0, 0.02);
        b.link(dc, c0, 0.05);
        b.link(c0, c1, 0.1);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d0 = ib.add_dataset(4.0, dc);
        let d1 = ib.add_dataset(2.0, dc);
        ib.add_query(c0, vec![Demand::new(d0, 0.5)], 1.0, 1.0);
        ib.add_query(c1, vec![Demand::new(d0, 1.0), Demand::new(d1, 0.5)], 1.0, 0.3);
        ib.add_query(c0, vec![Demand::new(d1, 1.0)], 1.0, 0.005); // infeasible everywhere
        ib.build().unwrap()
    }

    #[test]
    fn matches_naive_feasibility_filter() {
        let inst = instance();
        let cache = SolverCache::build(&inst);
        for q in inst.query_ids() {
            for idx in 0..inst.query(q).demands.len() {
                let naive: Vec<(ComputeNodeId, f64)> = inst
                    .cloud()
                    .compute_ids()
                    .filter(|&v| is_deadline_feasible(&inst, q, idx, v))
                    .map(|v| (v, assignment_delay(&inst, q, idx, v)))
                    .collect();
                let cached: Vec<(ComputeNodeId, f64)> = cache.candidates(q, idx).collect();
                assert_eq!(cached.len(), cache.candidate_count(q, idx));
                assert_eq!(naive.len(), cached.len(), "q={q:?} idx={idx}");
                for ((nv, nd), (cv, cd)) in naive.iter().zip(&cached) {
                    assert_eq!(nv, cv);
                    assert_eq!(nd.to_bits(), cd.to_bits(), "delays must be bit-identical");
                }
            }
        }
    }

    #[test]
    fn infeasible_demand_has_empty_candidates() {
        let inst = instance();
        let cache = SolverCache::build(&inst);
        assert_eq!(cache.candidate_count(QueryId(2), 0), 0);
    }

    #[test]
    fn lazy_accessor_builds_once_and_survives_clone() {
        let inst = instance();
        let a = inst.solver_cache() as *const SolverCache;
        let b = inst.solver_cache() as *const SolverCache;
        assert_eq!(a, b, "second access must reuse the built cache");
        let cloned = inst.clone();
        assert_eq!(
            cloned.solver_cache().total_candidates(),
            inst.solver_cache().total_candidates()
        );
    }
}
