//! The paper's delay law and deadline feasibility (§2.3, constraint (4)).
//!
//! Evaluating query `q_m`'s demand on dataset `S_n` at node `v_l` costs
//!
//! ```text
//! D(m, n, l) = d(v_l)·|S_n|  +  dt(p(v_l, h_m))·α_nm·|S_n|
//! ```
//!
//! — processing the whole dataset at `v_l`, then shipping the
//! `α_nm`-fraction intermediate result along the minimum-delay path to the
//! query's home. Demands of one query are evaluated in parallel, so the
//! query experiences the **max** over its demands.

use crate::instance::Instance;
use crate::network::ComputeNodeId;
use crate::query::QueryId;

/// Delay of serving demand index `demand_idx` of query `q` at node `v`.
///
/// Returns `INFINITY` when `v` cannot reach the query's home, which the
/// admission logic treats as a deadline violation.
#[inline]
pub fn assignment_delay(inst: &Instance, q: QueryId, demand_idx: usize, v: ComputeNodeId) -> f64 {
    let query = inst.query(q);
    let dem = &query.demands[demand_idx];
    let size = inst.size(dem.dataset);
    let proc = inst.cloud().proc_delay(v) * size;
    let trans = inst.cloud().min_delay(v, query.home) * dem.selectivity * size;
    proc + trans
}

/// Whether serving demand `demand_idx` of `q` at `v` meets the deadline
/// `d_qm` (constraint (4)).
#[inline]
pub fn is_deadline_feasible(
    inst: &Instance,
    q: QueryId,
    demand_idx: usize,
    v: ComputeNodeId,
) -> bool {
    assignment_delay(inst, q, demand_idx, v) <= inst.query(q).deadline + 1e-12
}

/// End-to-end delay of a fully assigned query: the max over its demands
/// (per-dataset processing and result shipping run in parallel, §2.3).
///
/// `nodes` must align with `query.demands`.
pub fn query_delay(inst: &Instance, q: QueryId, nodes: &[ComputeNodeId]) -> f64 {
    let query = inst.query(q);
    assert_eq!(
        nodes.len(),
        query.demands.len(),
        "assignment arity mismatch for {q}"
    );
    (0..nodes.len())
        .map(|i| assignment_delay(inst, q, i, nodes[i]))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::network::EdgeCloudBuilder;
    use crate::query::Demand;

    /// dc(proc 0.001) --0.05-- cl(proc 0.01); dataset of 4 GB at dc;
    /// query at cl with α = 0.5, deadline 1.0.
    fn toy() -> Instance {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(10.0, 0.01);
        b.link(dc, cl, 0.05);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 1);
        let d = ib.add_dataset(4.0, dc);
        ib.add_query(cl, vec![Demand::new(d, 0.5)], 1.0, 1.0);
        ib.build().unwrap()
    }

    #[test]
    fn delay_at_remote_node_includes_transfer() {
        let inst = toy();
        // At the DC: proc = 0.001·4, transfer = 0.05·0.5·4 = 0.1.
        let d = assignment_delay(&inst, QueryId(0), 0, ComputeNodeId(0));
        assert!((d - (0.004 + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn delay_at_home_node_has_no_transfer() {
        let inst = toy();
        let d = assignment_delay(&inst, QueryId(0), 0, ComputeNodeId(1));
        assert!((d - 0.04).abs() < 1e-12);
    }

    #[test]
    fn feasibility_respects_deadline() {
        let inst = toy();
        assert!(is_deadline_feasible(&inst, QueryId(0), 0, ComputeNodeId(0)));
        assert!(is_deadline_feasible(&inst, QueryId(0), 0, ComputeNodeId(1)));
    }

    #[test]
    fn infeasible_when_deadline_tiny() {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(10.0, 0.01);
        b.link(dc, cl, 0.05);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 1);
        let d = ib.add_dataset(4.0, dc);
        ib.add_query(cl, vec![Demand::new(d, 0.5)], 1.0, 0.01);
        let inst = ib.build().unwrap();
        assert!(!is_deadline_feasible(
            &inst,
            QueryId(0),
            0,
            ComputeNodeId(0)
        ));
        // Processing at home costs 0.04 > 0.01: also infeasible.
        assert!(!is_deadline_feasible(
            &inst,
            QueryId(0),
            0,
            ComputeNodeId(1)
        ));
    }

    #[test]
    fn unreachable_node_is_infinite() {
        let mut b = EdgeCloudBuilder::new();
        let a = b.add_cloudlet(8.0, 0.01);
        let c = b.add_cloudlet(8.0, 0.01);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 1);
        let d = ib.add_dataset(1.0, a);
        ib.add_query(a, vec![Demand::new(d, 1.0)], 1.0, 100.0);
        let inst = ib.build().unwrap();
        assert!(assignment_delay(&inst, QueryId(0), 0, c).is_infinite());
        assert!(!is_deadline_feasible(&inst, QueryId(0), 0, c));
    }

    #[test]
    fn query_delay_is_max_over_demands() {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(10.0, 0.01);
        b.link(dc, cl, 0.05);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d0 = ib.add_dataset(4.0, dc);
        let d1 = ib.add_dataset(1.0, dc);
        ib.add_query(
            cl,
            vec![Demand::new(d0, 0.5), Demand::new(d1, 1.0)],
            1.0,
            1.0,
        );
        let inst = ib.build().unwrap();
        let d_both = query_delay(&inst, QueryId(0), &[ComputeNodeId(0), ComputeNodeId(1)]);
        let d_first = assignment_delay(&inst, QueryId(0), 0, ComputeNodeId(0));
        assert_eq!(d_both, d_first);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn query_delay_rejects_wrong_arity() {
        let inst = toy();
        query_delay(&inst, QueryId(0), &[]);
    }
}
