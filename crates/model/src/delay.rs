//! The paper's delay law and deadline feasibility (§2.3, constraint (4)).
//!
//! Evaluating query `q_m`'s demand on dataset `S_n` at node `v_l` costs
//!
//! ```text
//! D(m, n, l) = d(v_l)·|S_n|  +  dt(p(v_l, h_m))·α_nm·|S_n|
//! ```
//!
//! — processing the whole dataset at `v_l`, then shipping the
//! `α_nm`-fraction intermediate result along the minimum-delay path to the
//! query's home. Demands of one query are evaluated in parallel, so the
//! query experiences the **max** over its demands.
//!
//! Erasure-coded datasets pay an extra *reconstruction* term before
//! processing can start ([`read_overhead`]): the serving node holds one
//! shard and gathers the `k − 1` nearest other shards in parallel
//! (`max_h dt(p(h, v_l)) · |S_n|/k`), then decodes the full dataset at
//! `decode_s_per_gb · |S_n|` compute cost. Replication and `k = 1`
//! schemes contribute exactly `0.0`, keeping the paper's law bit-for-bit.

use crate::data::DatasetId;
use crate::instance::Instance;
use crate::network::ComputeNodeId;
use crate::query::QueryId;
use crate::solution::FEASIBILITY_EPS;

/// Delay of serving demand index `demand_idx` of query `q` at node `v`.
///
/// Returns `INFINITY` when `v` cannot reach the query's home, which the
/// admission logic treats as a deadline violation.
#[inline]
pub fn assignment_delay(inst: &Instance, q: QueryId, demand_idx: usize, v: ComputeNodeId) -> f64 {
    let query = inst.query(q);
    let dem = &query.demands[demand_idx];
    let size = inst.size(dem.dataset);
    let proc = inst.cloud().proc_delay(v) * size;
    let trans = inst.cloud().min_delay(v, query.home) * dem.selectivity * size;
    proc + trans
}

/// Reconstruction overhead of reading dataset `d` at holder `v`, given
/// the full live holder set `holders` (which must include `v` for a
/// legal read; other entries are gather candidates).
///
/// * Replication / `k = 1` schemes: exactly `0.0`.
/// * Erasure coding with `k ≥ 2`: the parallel gather of the `k − 1`
///   nearest other shards (`max` over chosen holders of
///   `dt(p(h, v)) · |S|/k`) plus `decode_s_per_gb · |S|` decode compute.
/// * `INFINITY` when fewer than `k` holders are live — the dataset is
///   unreadable at `v` until repair, which admission treats as a
///   deadline violation.
pub fn read_overhead(inst: &Instance, d: DatasetId, v: ComputeNodeId, holders: &[ComputeNodeId]) -> f64 {
    let scheme = inst.scheme(d);
    if !scheme.needs_decode() {
        return 0.0;
    }
    let need = scheme.min_read() - 1; // v's own shard covers one stripe
    let cloud = inst.cloud();
    let mut gather: Vec<f64> = holders
        .iter()
        .filter(|&&h| h != v)
        .map(|&h| cloud.min_delay(h, v))
        .collect();
    if gather.len() < need {
        return f64::INFINITY;
    }
    gather.sort_by(f64::total_cmp);
    let shard = inst.shard_gb(d);
    let slowest = gather[need - 1]; // need ≥ 1 because k ≥ 2
    slowest * shard + inst.decode_s_per_gb() * inst.size(d)
}

/// [`assignment_delay`] plus the [`read_overhead`] of reconstructing the
/// demanded dataset from `holders` at `v`. This is the full delay an
/// erasure-coded read experiences; for replication it equals
/// `assignment_delay` bit-for-bit (`x + 0.0 = x`).
#[inline]
pub fn assignment_delay_with_holders(
    inst: &Instance,
    q: QueryId,
    demand_idx: usize,
    v: ComputeNodeId,
    holders: &[ComputeNodeId],
) -> f64 {
    let d = inst.query(q).demands[demand_idx].dataset;
    assignment_delay(inst, q, demand_idx, v) + read_overhead(inst, d, v, holders)
}

/// Whether serving demand `demand_idx` of `q` at `v` meets the deadline
/// `d_qm` (constraint (4)).
#[inline]
pub fn is_deadline_feasible(
    inst: &Instance,
    q: QueryId,
    demand_idx: usize,
    v: ComputeNodeId,
) -> bool {
    assignment_delay(inst, q, demand_idx, v) <= inst.query(q).deadline + FEASIBILITY_EPS
}

/// End-to-end delay of a fully assigned query: the max over its demands
/// (per-dataset processing and result shipping run in parallel, §2.3).
///
/// `nodes` must align with `query.demands`.
pub fn query_delay(inst: &Instance, q: QueryId, nodes: &[ComputeNodeId]) -> f64 {
    let query = inst.query(q);
    assert_eq!(
        nodes.len(),
        query.demands.len(),
        "assignment arity mismatch for {q}"
    );
    (0..nodes.len())
        .map(|i| assignment_delay(inst, q, i, nodes[i]))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::network::EdgeCloudBuilder;
    use crate::query::Demand;

    /// dc(proc 0.001) --0.05-- cl(proc 0.01); dataset of 4 GB at dc;
    /// query at cl with α = 0.5, deadline 1.0.
    fn toy() -> Instance {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(10.0, 0.01);
        b.link(dc, cl, 0.05);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 1);
        let d = ib.add_dataset(4.0, dc);
        ib.add_query(cl, vec![Demand::new(d, 0.5)], 1.0, 1.0);
        ib.build().unwrap()
    }

    #[test]
    fn delay_at_remote_node_includes_transfer() {
        let inst = toy();
        // At the DC: proc = 0.001·4, transfer = 0.05·0.5·4 = 0.1.
        let d = assignment_delay(&inst, QueryId(0), 0, ComputeNodeId(0));
        assert!((d - (0.004 + 0.1)).abs() < 1e-12);
    }

    #[test]
    fn delay_at_home_node_has_no_transfer() {
        let inst = toy();
        let d = assignment_delay(&inst, QueryId(0), 0, ComputeNodeId(1));
        assert!((d - 0.04).abs() < 1e-12);
    }

    #[test]
    fn feasibility_respects_deadline() {
        let inst = toy();
        assert!(is_deadline_feasible(&inst, QueryId(0), 0, ComputeNodeId(0)));
        assert!(is_deadline_feasible(&inst, QueryId(0), 0, ComputeNodeId(1)));
    }

    #[test]
    fn infeasible_when_deadline_tiny() {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(10.0, 0.01);
        b.link(dc, cl, 0.05);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 1);
        let d = ib.add_dataset(4.0, dc);
        ib.add_query(cl, vec![Demand::new(d, 0.5)], 1.0, 0.01);
        let inst = ib.build().unwrap();
        assert!(!is_deadline_feasible(
            &inst,
            QueryId(0),
            0,
            ComputeNodeId(0)
        ));
        // Processing at home costs 0.04 > 0.01: also infeasible.
        assert!(!is_deadline_feasible(
            &inst,
            QueryId(0),
            0,
            ComputeNodeId(1)
        ));
    }

    #[test]
    fn unreachable_node_is_infinite() {
        let mut b = EdgeCloudBuilder::new();
        let a = b.add_cloudlet(8.0, 0.01);
        let c = b.add_cloudlet(8.0, 0.01);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 1);
        let d = ib.add_dataset(1.0, a);
        ib.add_query(a, vec![Demand::new(d, 1.0)], 1.0, 100.0);
        let inst = ib.build().unwrap();
        assert!(assignment_delay(&inst, QueryId(0), 0, c).is_infinite());
        assert!(!is_deadline_feasible(&inst, QueryId(0), 0, c));
    }

    #[test]
    fn query_delay_is_max_over_demands() {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(10.0, 0.01);
        b.link(dc, cl, 0.05);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d0 = ib.add_dataset(4.0, dc);
        let d1 = ib.add_dataset(1.0, dc);
        ib.add_query(
            cl,
            vec![Demand::new(d0, 0.5), Demand::new(d1, 1.0)],
            1.0,
            1.0,
        );
        let inst = ib.build().unwrap();
        let d_both = query_delay(&inst, QueryId(0), &[ComputeNodeId(0), ComputeNodeId(1)]);
        let d_first = assignment_delay(&inst, QueryId(0), 0, ComputeNodeId(0));
        assert_eq!(d_both, d_first);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn query_delay_rejects_wrong_arity() {
        let inst = toy();
        query_delay(&inst, QueryId(0), &[]);
    }

    use crate::data::DatasetId;
    use edgerep_ec::RedundancyScheme;

    /// Line of three cloudlets a --0.1-- b --0.2-- c, one 4 GB dataset,
    /// one query at `a` with a loose deadline.
    fn line_instance(scheme: RedundancyScheme) -> Instance {
        let mut b = EdgeCloudBuilder::new();
        let na = b.add_cloudlet(50.0, 0.01);
        let nb = b.add_cloudlet(50.0, 0.01);
        let nc = b.add_cloudlet(50.0, 0.01);
        b.link(na, nb, 0.1);
        b.link(nb, nc, 0.2);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 3);
        let d = ib.add_dataset(4.0, na);
        ib.set_scheme(d, scheme);
        ib.set_ec_costs(0.05, 0.1);
        ib.add_query(na, vec![Demand::new(d, 0.5)], 1.0, 100.0);
        ib.build().unwrap()
    }

    #[test]
    fn replication_read_overhead_is_exactly_zero() {
        let inst = line_instance(RedundancyScheme::Replication { k: 3 });
        let holders = [ComputeNodeId(0), ComputeNodeId(1)];
        let ov = read_overhead(&inst, DatasetId(0), ComputeNodeId(0), &holders);
        assert_eq!(ov.to_bits(), 0.0f64.to_bits());
        let with = assignment_delay_with_holders(&inst, QueryId(0), 0, ComputeNodeId(0), &holders);
        let base = assignment_delay(&inst, QueryId(0), 0, ComputeNodeId(0));
        assert_eq!(with.to_bits(), base.to_bits());
    }

    #[test]
    fn k1_erasure_overhead_matches_replication_bitwise() {
        let ec = line_instance(RedundancyScheme::ErasureCoded { k: 1, m: 2 });
        let rep = line_instance(RedundancyScheme::Replication { k: 3 });
        let holders = [ComputeNodeId(0), ComputeNodeId(2)];
        for v in [ComputeNodeId(0), ComputeNodeId(2)] {
            let a = assignment_delay_with_holders(&ec, QueryId(0), 0, v, &holders);
            let b = assignment_delay_with_holders(&rep, QueryId(0), 0, v, &holders);
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn ec_overhead_gathers_from_nearest_and_decodes() {
        let inst = line_instance(RedundancyScheme::ErasureCoded { k: 2, m: 1 });
        // Read at b (node 1), holders a, b, c. shard = 2 GB. Nearest other
        // holder is a at 0.1 s/GB → gather 0.2 s; decode 0.05 × 4 = 0.2 s.
        let holders = [ComputeNodeId(0), ComputeNodeId(1), ComputeNodeId(2)];
        let ov = read_overhead(&inst, DatasetId(0), ComputeNodeId(1), &holders);
        assert!((ov - 0.4).abs() < 1e-12);
        // With only c as co-holder the gather runs at 0.2 s/GB.
        let ov = read_overhead(
            &inst,
            DatasetId(0),
            ComputeNodeId(1),
            &[ComputeNodeId(1), ComputeNodeId(2)],
        );
        assert!((ov - (0.4 + 0.2)).abs() < 1e-12);
    }

    #[test]
    fn ec_overhead_infinite_below_quorum() {
        let inst = line_instance(RedundancyScheme::ErasureCoded { k: 2, m: 1 });
        // Only v itself holds a shard: 1 < k = 2.
        let ov = read_overhead(&inst, DatasetId(0), ComputeNodeId(1), &[ComputeNodeId(1)]);
        assert!(ov.is_infinite());
        assert!(assignment_delay_with_holders(
            &inst,
            QueryId(0),
            0,
            ComputeNodeId(1),
            &[ComputeNodeId(1)]
        )
        .is_infinite());
    }
}
