//! Validated problem instances.
//!
//! An [`Instance`] bundles the edge cloud, the dataset collection `S`, the
//! query set `Q`, and the per-dataset replica budget `K`, after checking all
//! cross-references and numeric ranges. Every placement algorithm takes an
//! `&Instance`, which guarantees it never sees a dangling dataset id, a
//! non-positive size, or a selectivity outside `(0, 1]`.

use std::sync::OnceLock;

use edgerep_ec::{RedundancyScheme, SchemeError};

use crate::cache::SolverCache;
use crate::data::{Dataset, DatasetId};
use crate::network::{ComputeNodeId, EdgeCloud};
use crate::query::{Demand, Query, QueryId};

/// Default decode compute cost, seconds per reconstructed GB, charged on
/// every read of an erasure-coded (`k ≥ 2`) dataset.
pub const DEFAULT_DECODE_S_PER_GB: f64 = 0.02;

/// Default encode compute cost, seconds per GB run through the encoder,
/// charged when shards are first produced and on scrub re-encodes.
pub const DEFAULT_ENCODE_S_PER_GB: f64 = 0.04;

/// Errors detected while building an [`Instance`].
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// `K` must be ≥ 1 (the paper assumes `K ∈ Z+`).
    ZeroReplicaBudget,
    /// A dataset size was non-positive or non-finite.
    InvalidDatasetSize(DatasetId, f64),
    /// A dataset's origin node does not exist.
    UnknownOrigin(DatasetId, ComputeNodeId),
    /// A query's home node does not exist.
    UnknownHome(QueryId, ComputeNodeId),
    /// A query references a dataset that does not exist.
    UnknownDataset(QueryId, DatasetId),
    /// A query demands the same dataset twice.
    DuplicateDemand(QueryId, DatasetId),
    /// A selectivity was outside `(0, 1]`.
    InvalidSelectivity(QueryId, DatasetId, f64),
    /// A compute rate was non-positive or non-finite.
    InvalidComputeRate(QueryId, f64),
    /// A deadline was non-positive or non-finite.
    InvalidDeadline(QueryId, f64),
    /// A query demands no datasets at all.
    EmptyDemands(QueryId),
    /// A dataset's redundancy scheme has unusable shard counts.
    InvalidScheme(DatasetId, SchemeError),
    /// A decode/encode compute cost was negative or non-finite.
    InvalidEcCost(f64),
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::ZeroReplicaBudget => write!(f, "replica budget K must be >= 1"),
            InstanceError::InvalidDatasetSize(d, s) => {
                write!(f, "dataset {d} has invalid size {s}")
            }
            InstanceError::UnknownOrigin(d, v) => {
                write!(f, "dataset {d} originates at unknown node {v}")
            }
            InstanceError::UnknownHome(q, v) => write!(f, "query {q} has unknown home {v}"),
            InstanceError::UnknownDataset(q, d) => {
                write!(f, "query {q} demands unknown dataset {d}")
            }
            InstanceError::DuplicateDemand(q, d) => {
                write!(f, "query {q} demands dataset {d} more than once")
            }
            InstanceError::InvalidSelectivity(q, d, a) => {
                write!(f, "query {q} has selectivity {a} on {d}, outside (0, 1]")
            }
            InstanceError::InvalidComputeRate(q, r) => {
                write!(f, "query {q} has invalid compute rate {r}")
            }
            InstanceError::InvalidDeadline(q, d) => {
                write!(f, "query {q} has invalid deadline {d}")
            }
            InstanceError::EmptyDemands(q) => write!(f, "query {q} demands no datasets"),
            InstanceError::InvalidScheme(d, e) => {
                write!(f, "dataset {d} has invalid redundancy scheme: {e}")
            }
            InstanceError::InvalidEcCost(c) => {
                write!(f, "erasure-coding compute cost {c} must be finite and >= 0")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// A validated proactive data replication and placement instance.
#[derive(Debug, Clone)]
pub struct Instance {
    cloud: EdgeCloud,
    datasets: Vec<Dataset>,
    queries: Vec<Query>,
    max_replicas: usize,
    /// Per-dataset redundancy scheme, aligned with `datasets`. Defaults
    /// to `Replication { k: max_replicas }`, reproducing the paper's
    /// uniform budget exactly.
    schemes: Vec<RedundancyScheme>,
    decode_s_per_gb: f64,
    encode_s_per_gb: f64,
    /// Lazily-built per-(query, demand) deadline-feasible candidate
    /// matrix (see [`crate::cache`]). An `Instance` is immutable after
    /// `build()`, so the cache can never go stale; a topology change
    /// means a new `Instance` and thus a fresh (empty) cell.
    solver_cache: OnceLock<SolverCache>,
}

impl Instance {
    /// The edge cloud.
    pub fn cloud(&self) -> &EdgeCloud {
        &self.cloud
    }

    /// The deadline-feasible candidate matrix, built on first access and
    /// reused for the instance's lifetime (clones carry the built cache
    /// along).
    pub fn solver_cache(&self) -> &SolverCache {
        self.solver_cache.get_or_init(|| SolverCache::build(self))
    }

    /// The dataset collection `S`, indexed by [`DatasetId`].
    pub fn datasets(&self) -> &[Dataset] {
        &self.datasets
    }

    /// The query set `Q`, indexed by [`QueryId`].
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// The replica budget `K`. With per-dataset redundancy schemes this
    /// is the *default* budget; constraint checks should use
    /// [`Self::slots`] instead.
    pub fn max_replicas(&self) -> usize {
        self.max_replicas
    }

    /// The redundancy scheme of a dataset.
    #[inline]
    pub fn scheme(&self, d: DatasetId) -> RedundancyScheme {
        self.schemes[d.index()]
    }

    /// Maximum distinct holder nodes for `d` under its scheme — the
    /// per-dataset generalization of the paper's `K` (constraint (5)).
    #[inline]
    pub fn slots(&self, d: DatasetId) -> usize {
        self.schemes[d.index()].slots()
    }

    /// GB one holder of `d` stores: `|S_n|` for replication, `|S_n|/k`
    /// per erasure-coded shard.
    #[inline]
    pub fn shard_gb(&self, d: DatasetId) -> f64 {
        self.schemes[d.index()].shard_gb(self.size(d))
    }

    /// Decode compute cost, seconds per reconstructed GB.
    #[inline]
    pub fn decode_s_per_gb(&self) -> f64 {
        self.decode_s_per_gb
    }

    /// Encode compute cost, seconds per GB encoded.
    #[inline]
    pub fn encode_s_per_gb(&self) -> f64 {
        self.encode_s_per_gb
    }

    /// One dataset by id.
    #[inline]
    pub fn dataset(&self, d: DatasetId) -> &Dataset {
        &self.datasets[d.index()]
    }

    /// One query by id.
    #[inline]
    pub fn query(&self, q: QueryId) -> &Query {
        &self.queries[q.index()]
    }

    /// Size `|S_n|` of a dataset.
    #[inline]
    pub fn size(&self, d: DatasetId) -> f64 {
        self.datasets[d.index()].size_gb
    }

    /// Total volume demanded by a query: `Σ_{S_n ∈ S(q_m)} |S_n|`.
    pub fn demanded_volume(&self, q: QueryId) -> f64 {
        self.queries[q.index()]
            .demands
            .iter()
            .map(|dem| self.size(dem.dataset))
            .sum()
    }

    /// Total volume demanded over all queries (upper bound on the
    /// objective).
    pub fn total_demanded_volume(&self) -> f64 {
        self.queries
            .iter()
            .map(|q| self.demanded_volume(q.id))
            .sum()
    }

    /// Iterator over query ids.
    pub fn query_ids(&self) -> impl ExactSizeIterator<Item = QueryId> + '_ {
        (0..self.queries.len() as u32).map(QueryId)
    }

    /// Iterator over dataset ids.
    pub fn dataset_ids(&self) -> impl ExactSizeIterator<Item = DatasetId> + '_ {
        (0..self.datasets.len() as u32).map(DatasetId)
    }

    /// Queries demanding a given dataset.
    pub fn consumers_of(&self, d: DatasetId) -> impl Iterator<Item = &Query> + '_ {
        self.queries.iter().filter(move |q| q.demands_dataset(d))
    }
}

/// Builder that accumulates datasets and queries, then validates.
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    cloud: EdgeCloud,
    datasets: Vec<Dataset>,
    queries: Vec<Query>,
    max_replicas: usize,
    /// Explicit per-dataset schemes; `None` falls back to
    /// `default_scheme`, then `Replication { k: max_replicas }`.
    schemes: Vec<Option<RedundancyScheme>>,
    default_scheme: Option<RedundancyScheme>,
    decode_s_per_gb: f64,
    encode_s_per_gb: f64,
}

impl InstanceBuilder {
    /// Starts an instance over `cloud` with replica budget `max_replicas`.
    pub fn new(cloud: EdgeCloud, max_replicas: usize) -> Self {
        Self {
            cloud,
            datasets: Vec::new(),
            queries: Vec::new(),
            max_replicas,
            schemes: Vec::new(),
            default_scheme: None,
            decode_s_per_gb: DEFAULT_DECODE_S_PER_GB,
            encode_s_per_gb: DEFAULT_ENCODE_S_PER_GB,
        }
    }

    /// Sets the redundancy scheme of one already-added dataset.
    pub fn set_scheme(&mut self, d: DatasetId, scheme: RedundancyScheme) {
        self.schemes[d.index()] = Some(scheme);
    }

    /// Sets the scheme applied to every dataset without an explicit
    /// [`Self::set_scheme`] override (defaults to
    /// `Replication { k: max_replicas }`).
    pub fn set_default_scheme(&mut self, scheme: RedundancyScheme) {
        self.default_scheme = Some(scheme);
    }

    /// Overrides the erasure-coding compute costs (seconds per GB
    /// decoded / encoded).
    pub fn set_ec_costs(&mut self, decode_s_per_gb: f64, encode_s_per_gb: f64) {
        self.decode_s_per_gb = decode_s_per_gb;
        self.encode_s_per_gb = encode_s_per_gb;
    }

    /// Adds a dataset and returns its id.
    pub fn add_dataset(&mut self, size_gb: f64, origin: ComputeNodeId) -> DatasetId {
        let id = DatasetId(self.datasets.len() as u32);
        self.datasets.push(Dataset::new(id, size_gb, origin));
        self.schemes.push(None);
        id
    }

    /// Adds a query and returns its id.
    pub fn add_query(
        &mut self,
        home: ComputeNodeId,
        demands: Vec<Demand>,
        compute_rate: f64,
        deadline: f64,
    ) -> QueryId {
        let id = QueryId(self.queries.len() as u32);
        self.queries
            .push(Query::new(id, home, demands, compute_rate, deadline));
        id
    }

    /// Number of datasets added so far.
    pub fn dataset_count(&self) -> usize {
        self.datasets.len()
    }

    /// Size of an already-added dataset (generators size deadlines off the
    /// demands they just drew).
    pub fn dataset_size(&self, d: DatasetId) -> f64 {
        self.datasets[d.index()].size_gb
    }

    /// Validates all cross-references and numeric ranges.
    pub fn build(self) -> Result<Instance, InstanceError> {
        if self.max_replicas == 0 {
            return Err(InstanceError::ZeroReplicaBudget);
        }
        let v = self.cloud.compute_count() as u32;
        let s = self.datasets.len() as u32;
        for d in &self.datasets {
            if !(d.size_gb.is_finite() && d.size_gb > 0.0) {
                return Err(InstanceError::InvalidDatasetSize(d.id, d.size_gb));
            }
            if d.origin.0 >= v {
                return Err(InstanceError::UnknownOrigin(d.id, d.origin));
            }
        }
        for q in &self.queries {
            if q.home.0 >= v {
                return Err(InstanceError::UnknownHome(q.id, q.home));
            }
            if q.demands.is_empty() {
                return Err(InstanceError::EmptyDemands(q.id));
            }
            let mut seen = std::collections::HashSet::new();
            for dem in &q.demands {
                if dem.dataset.0 >= s {
                    return Err(InstanceError::UnknownDataset(q.id, dem.dataset));
                }
                if !seen.insert(dem.dataset) {
                    return Err(InstanceError::DuplicateDemand(q.id, dem.dataset));
                }
                if !(dem.selectivity.is_finite() && dem.selectivity > 0.0 && dem.selectivity <= 1.0)
                {
                    return Err(InstanceError::InvalidSelectivity(
                        q.id,
                        dem.dataset,
                        dem.selectivity,
                    ));
                }
            }
            if !(q.compute_rate.is_finite() && q.compute_rate > 0.0) {
                return Err(InstanceError::InvalidComputeRate(q.id, q.compute_rate));
            }
            if !(q.deadline.is_finite() && q.deadline > 0.0) {
                return Err(InstanceError::InvalidDeadline(q.id, q.deadline));
            }
        }
        for cost in [self.decode_s_per_gb, self.encode_s_per_gb] {
            if !(cost.is_finite() && cost >= 0.0) {
                return Err(InstanceError::InvalidEcCost(cost));
            }
        }
        let fallback = self
            .default_scheme
            .unwrap_or(RedundancyScheme::Replication {
                k: self.max_replicas,
            });
        let mut schemes = Vec::with_capacity(self.datasets.len());
        for (di, explicit) in self.schemes.iter().enumerate() {
            let scheme = explicit.unwrap_or(fallback);
            scheme
                .validate()
                .map_err(|e| InstanceError::InvalidScheme(DatasetId(di as u32), e))?;
            schemes.push(scheme);
        }
        Ok(Instance {
            cloud: self.cloud,
            datasets: self.datasets,
            queries: self.queries,
            max_replicas: self.max_replicas,
            schemes,
            decode_s_per_gb: self.decode_s_per_gb,
            encode_s_per_gb: self.encode_s_per_gb,
            solver_cache: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::EdgeCloudBuilder;

    fn cloud() -> EdgeCloud {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(10.0, 0.01);
        b.link(dc, cl, 0.05);
        b.build().unwrap()
    }

    fn valid_builder() -> InstanceBuilder {
        let mut ib = InstanceBuilder::new(cloud(), 2);
        let d0 = ib.add_dataset(2.0, ComputeNodeId(0));
        let d1 = ib.add_dataset(5.0, ComputeNodeId(1));
        ib.add_query(ComputeNodeId(1), vec![Demand::new(d0, 0.5)], 1.0, 3.0);
        ib.add_query(
            ComputeNodeId(0),
            vec![Demand::new(d0, 1.0), Demand::new(d1, 0.25)],
            0.8,
            6.0,
        );
        ib
    }

    #[test]
    fn valid_instance_builds() {
        let inst = valid_builder().build().unwrap();
        assert_eq!(inst.datasets().len(), 2);
        assert_eq!(inst.queries().len(), 2);
        assert_eq!(inst.max_replicas(), 2);
        assert_eq!(inst.size(DatasetId(1)), 5.0);
    }

    #[test]
    fn demanded_volume_sums_demands() {
        let inst = valid_builder().build().unwrap();
        assert_eq!(inst.demanded_volume(QueryId(0)), 2.0);
        assert_eq!(inst.demanded_volume(QueryId(1)), 7.0);
        assert_eq!(inst.total_demanded_volume(), 9.0);
    }

    #[test]
    fn consumers_of_filters_queries() {
        let inst = valid_builder().build().unwrap();
        let consumers: Vec<QueryId> = inst.consumers_of(DatasetId(0)).map(|q| q.id).collect();
        assert_eq!(consumers, vec![QueryId(0), QueryId(1)]);
        let consumers: Vec<QueryId> = inst.consumers_of(DatasetId(1)).map(|q| q.id).collect();
        assert_eq!(consumers, vec![QueryId(1)]);
    }

    #[test]
    fn zero_replica_budget_rejected() {
        let ib = InstanceBuilder::new(cloud(), 0);
        assert_eq!(ib.build().unwrap_err(), InstanceError::ZeroReplicaBudget);
    }

    #[test]
    fn bad_dataset_size_rejected() {
        let mut ib = InstanceBuilder::new(cloud(), 1);
        ib.add_dataset(0.0, ComputeNodeId(0));
        assert!(matches!(
            ib.build().unwrap_err(),
            InstanceError::InvalidDatasetSize(_, _)
        ));
    }

    #[test]
    fn unknown_origin_rejected() {
        let mut ib = InstanceBuilder::new(cloud(), 1);
        ib.add_dataset(1.0, ComputeNodeId(9));
        assert_eq!(
            ib.build().unwrap_err(),
            InstanceError::UnknownOrigin(DatasetId(0), ComputeNodeId(9))
        );
    }

    #[test]
    fn unknown_home_rejected() {
        let mut ib = InstanceBuilder::new(cloud(), 1);
        let d = ib.add_dataset(1.0, ComputeNodeId(0));
        ib.add_query(ComputeNodeId(5), vec![Demand::new(d, 1.0)], 1.0, 1.0);
        assert!(matches!(
            ib.build().unwrap_err(),
            InstanceError::UnknownHome(_, _)
        ));
    }

    #[test]
    fn unknown_dataset_rejected() {
        let mut ib = InstanceBuilder::new(cloud(), 1);
        ib.add_query(
            ComputeNodeId(0),
            vec![Demand::new(DatasetId(3), 1.0)],
            1.0,
            1.0,
        );
        assert!(matches!(
            ib.build().unwrap_err(),
            InstanceError::UnknownDataset(_, _)
        ));
    }

    #[test]
    fn duplicate_demand_rejected() {
        let mut ib = InstanceBuilder::new(cloud(), 1);
        let d = ib.add_dataset(1.0, ComputeNodeId(0));
        ib.add_query(
            ComputeNodeId(0),
            vec![Demand::new(d, 1.0), Demand::new(d, 0.5)],
            1.0,
            1.0,
        );
        assert!(matches!(
            ib.build().unwrap_err(),
            InstanceError::DuplicateDemand(_, _)
        ));
    }

    #[test]
    fn selectivity_range_enforced() {
        for alpha in [0.0, -0.5, 1.5, f64::NAN] {
            let mut ib = InstanceBuilder::new(cloud(), 1);
            let d = ib.add_dataset(1.0, ComputeNodeId(0));
            ib.add_query(ComputeNodeId(0), vec![Demand::new(d, alpha)], 1.0, 1.0);
            assert!(
                matches!(
                    ib.build().unwrap_err(),
                    InstanceError::InvalidSelectivity(_, _, _)
                ),
                "alpha = {alpha}"
            );
        }
        // Exactly 1.0 is allowed.
        let mut ib = InstanceBuilder::new(cloud(), 1);
        let d = ib.add_dataset(1.0, ComputeNodeId(0));
        ib.add_query(ComputeNodeId(0), vec![Demand::new(d, 1.0)], 1.0, 1.0);
        assert!(ib.build().is_ok());
    }

    #[test]
    fn empty_demands_rejected() {
        let mut ib = InstanceBuilder::new(cloud(), 1);
        ib.add_query(ComputeNodeId(0), vec![], 1.0, 1.0);
        assert!(matches!(
            ib.build().unwrap_err(),
            InstanceError::EmptyDemands(_)
        ));
    }

    #[test]
    fn bad_rate_and_deadline_rejected() {
        let mut ib = InstanceBuilder::new(cloud(), 1);
        let d = ib.add_dataset(1.0, ComputeNodeId(0));
        ib.add_query(ComputeNodeId(0), vec![Demand::new(d, 1.0)], 0.0, 1.0);
        assert!(matches!(
            ib.build().unwrap_err(),
            InstanceError::InvalidComputeRate(_, _)
        ));

        let mut ib = InstanceBuilder::new(cloud(), 1);
        let d = ib.add_dataset(1.0, ComputeNodeId(0));
        ib.add_query(ComputeNodeId(0), vec![Demand::new(d, 1.0)], 1.0, -2.0);
        assert!(matches!(
            ib.build().unwrap_err(),
            InstanceError::InvalidDeadline(_, _)
        ));
    }

    #[test]
    fn error_messages_name_the_offender() {
        let err = InstanceError::UnknownDataset(QueryId(3), DatasetId(7));
        assert!(err.to_string().contains("q3"));
        assert!(err.to_string().contains("S7"));
    }

    #[test]
    fn default_scheme_is_uniform_replication() {
        let inst = valid_builder().build().unwrap();
        for d in inst.dataset_ids() {
            assert_eq!(inst.scheme(d), RedundancyScheme::Replication { k: 2 });
            assert_eq!(inst.slots(d), inst.max_replicas());
            assert_eq!(inst.shard_gb(d).to_bits(), inst.size(d).to_bits());
        }
        assert_eq!(inst.decode_s_per_gb(), DEFAULT_DECODE_S_PER_GB);
        assert_eq!(inst.encode_s_per_gb(), DEFAULT_ENCODE_S_PER_GB);
    }

    #[test]
    fn per_dataset_schemes_override_the_default() {
        let mut ib = valid_builder();
        ib.set_default_scheme(RedundancyScheme::ErasureCoded { k: 4, m: 2 });
        ib.set_scheme(DatasetId(1), RedundancyScheme::Replication { k: 1 });
        ib.set_ec_costs(0.1, 0.2);
        let inst = ib.build().unwrap();
        assert_eq!(
            inst.scheme(DatasetId(0)),
            RedundancyScheme::ErasureCoded { k: 4, m: 2 }
        );
        assert_eq!(inst.slots(DatasetId(0)), 6);
        assert_eq!(inst.shard_gb(DatasetId(0)), 0.5); // 2 GB / 4
        assert_eq!(inst.scheme(DatasetId(1)), RedundancyScheme::Replication { k: 1 });
        assert_eq!(inst.slots(DatasetId(1)), 1);
        assert_eq!(inst.decode_s_per_gb(), 0.1);
        assert_eq!(inst.encode_s_per_gb(), 0.2);
    }

    #[test]
    fn invalid_scheme_rejected() {
        let mut ib = valid_builder();
        ib.set_scheme(DatasetId(0), RedundancyScheme::ErasureCoded { k: 0, m: 2 });
        assert!(matches!(
            ib.build().unwrap_err(),
            InstanceError::InvalidScheme(DatasetId(0), _)
        ));
    }

    #[test]
    fn invalid_ec_cost_rejected() {
        for bad in [-0.1, f64::NAN, f64::INFINITY] {
            let mut ib = valid_builder();
            ib.set_ec_costs(bad, 0.0);
            assert!(
                matches!(ib.build().unwrap_err(), InstanceError::InvalidEcCost(_)),
                "cost = {bad}"
            );
        }
        // Zero costs are allowed (free codec, still shard-placed).
        let mut ib = valid_builder();
        ib.set_ec_costs(0.0, 0.0);
        assert!(ib.build().is_ok());
    }
}
