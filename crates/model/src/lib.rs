#![warn(missing_docs)]

//! Domain model for QoS-aware proactive data replication in two-tier edge
//! clouds (Xia et al., ICPP 2019).
//!
//! This crate defines the vocabulary every other `edgerep` crate speaks:
//!
//! * [`network`] — the two-tier edge cloud `G = (BS ∪ SW ∪ CL ∪ DC, E)`:
//!   node roles, compute capacities `B(v)` / availabilities `A(v)`,
//!   per-unit processing delays `d(v)`, and cached minimum-transmission-delay
//!   paths between compute nodes.
//! * [`data`] / [`query`] — datasets `S_n` with sizes, and analytics queries
//!   `q_m` with home locations, demanded dataset collections `S(q_m)`,
//!   selectivities `α_nm`, compute rates `r_m`, and QoS deadlines `d_qm`.
//! * [`instance`] — a validated problem instance bundling the above with the
//!   replica budget `K`.
//! * [`delay`] — the paper's delay law
//!   `D = d(v)·|S_n| + dt(p(v, h_m))·α_nm·|S_n|` and deadline feasibility,
//!   plus the erasure-coding gather + decode overhead
//!   ([`delay::read_overhead`]) charged when a dataset is striped.
//! * [`solution`] — placements (≤ `slots(d)` holders per dataset, where
//!   the per-dataset [`RedundancyScheme`] generalizes the paper's `K`),
//!   assignments, admission semantics, and a full feasibility validator
//!   enforcing ILP constraints (2)–(7) plus the EC shard-quorum rule.
//! * [`metrics`] — the paper's two evaluation metrics (admitted demanded
//!   volume and system throughput) plus utilization diagnostics.
//!
//! # Example
//!
//! ```
//! use edgerep_model::prelude::*;
//!
//! // A 1-cloudlet, 1-datacenter toy cloud with one dataset and one query.
//! let mut b = EdgeCloudBuilder::new();
//! let dc = b.add_data_center(500.0, 0.001);
//! let cl = b.add_cloudlet(12.0, 0.01);
//! b.link(dc, cl, 0.02);
//! let cloud = b.build().unwrap();
//!
//! let mut inst = InstanceBuilder::new(cloud, 2);
//! let ds = inst.add_dataset(4.0, dc);
//! inst.add_query(cl, vec![Demand::new(ds, 0.5)], 1.0, 10.0);
//! let instance = inst.build().unwrap();
//! assert_eq!(instance.datasets().len(), 1);
//! assert_eq!(instance.queries().len(), 1);
//! ```

pub mod cache;
pub mod data;
pub mod delay;
pub mod instance;
pub mod metrics;
pub mod network;
pub mod query;
pub mod solution;
pub mod spec;

pub use cache::SolverCache;
pub use data::{Dataset, DatasetId};
pub use edgerep_ec::RedundancyScheme;
pub use instance::{Instance, InstanceBuilder, InstanceError};
pub use metrics::Metrics;
pub use network::{ComputeNodeId, EdgeCloud, EdgeCloudBuilder, NetworkError, NodeKind};
pub use query::{Demand, Query, QueryId};
pub use solution::{Solution, SolutionError, FEASIBILITY_EPS};
pub use spec::InstanceSpec;

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::cache::SolverCache;
    pub use crate::data::{Dataset, DatasetId};
    pub use crate::delay::{
        assignment_delay, assignment_delay_with_holders, is_deadline_feasible, query_delay,
        read_overhead,
    };
    pub use edgerep_ec::RedundancyScheme;
    pub use crate::instance::{Instance, InstanceBuilder, InstanceError};
    pub use crate::metrics::Metrics;
    pub use crate::network::{ComputeNodeId, EdgeCloud, EdgeCloudBuilder, NetworkError, NodeKind};
    pub use crate::query::{Demand, Query, QueryId};
    pub use crate::solution::{Solution, SolutionError, FEASIBILITY_EPS};
}
