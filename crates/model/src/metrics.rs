//! Evaluation metrics.
//!
//! The paper reports two metrics per experiment (§4.2): the **volume of
//! datasets demanded by admitted queries** (the objective, equation (1)) and
//! the **system throughput** (admitted queries / total queries). [`Metrics`]
//! additionally records utilization diagnostics used by the ablation benches
//! and the testbed reports.

use serde::{Deserialize, Serialize};

use crate::delay::query_delay;
use crate::instance::Instance;
use crate::solution::Solution;

/// Aggregated quality measures of one solution on one instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Objective (1): total demanded volume over admitted queries, GB.
    pub admitted_volume: f64,
    /// Number of admitted queries.
    pub admitted_queries: usize,
    /// Total queries in the instance.
    pub total_queries: usize,
    /// `admitted_queries / total_queries` (0 when no queries).
    pub throughput: f64,
    /// Total replicas placed.
    pub replicas_placed: usize,
    /// Mean end-to-end delay over admitted queries (seconds; 0 when none).
    pub mean_admitted_delay: f64,
    /// Mean fraction of per-node available compute consumed.
    pub mean_utilization: f64,
    /// Highest per-node consumed fraction.
    pub peak_utilization: f64,
}

impl Metrics {
    /// Computes all metrics of `sol` on `inst`.
    pub fn of(inst: &Instance, sol: &Solution) -> Self {
        let admitted: Vec<_> = sol.admitted_queries().collect();
        let mean_admitted_delay = if admitted.is_empty() {
            0.0
        } else {
            admitted
                .iter()
                .map(|&q| query_delay(inst, q, sol.assignment_of(q).expect("admitted")))
                .sum::<f64>()
                / admitted.len() as f64
        };
        let loads = sol.node_loads(inst);
        let mut util_sum = 0.0;
        let mut util_peak: f64 = 0.0;
        let mut counted = 0usize;
        for (vi, &used) in loads.iter().enumerate() {
            let avail = inst
                .cloud()
                .available(crate::network::ComputeNodeId(vi as u32));
            if avail > 0.0 {
                let u = used / avail;
                util_sum += u;
                util_peak = util_peak.max(u);
                counted += 1;
            }
        }
        Self {
            admitted_volume: sol.admitted_volume(inst),
            admitted_queries: admitted.len(),
            total_queries: inst.queries().len(),
            throughput: sol.throughput(inst),
            replicas_placed: sol.total_replicas(),
            mean_admitted_delay,
            mean_utilization: if counted == 0 {
                0.0
            } else {
                util_sum / counted as f64
            },
            peak_utilization: util_peak,
        }
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "volume {:.2} GB | throughput {:.1}% ({}/{}) | {} replicas | mean delay {:.3}s | util mean {:.1}% peak {:.1}%",
            self.admitted_volume,
            self.throughput * 100.0,
            self.admitted_queries,
            self.total_queries,
            self.replicas_placed,
            self.mean_admitted_delay,
            self.mean_utilization * 100.0,
            self.peak_utilization * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DatasetId;
    use crate::instance::InstanceBuilder;
    use crate::network::EdgeCloudBuilder;
    use crate::query::Demand;
    use crate::query::QueryId;

    fn setup() -> (Instance, Solution) {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(10.0, 0.01);
        b.link(dc, cl, 0.05);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d0 = ib.add_dataset(4.0, dc);
        ib.add_query(cl, vec![Demand::new(d0, 0.5)], 1.0, 1.0);
        ib.add_query(cl, vec![Demand::new(d0, 0.5)], 1.0, 1.0);
        let inst = ib.build().unwrap();
        let mut sol = Solution::empty(&inst);
        sol.place_replica(DatasetId(0), dc);
        sol.assign_query(QueryId(0), vec![dc]);
        (inst, sol)
    }

    #[test]
    fn metrics_reflect_partial_admission() {
        let (inst, sol) = setup();
        let m = Metrics::of(&inst, &sol);
        assert_eq!(m.admitted_volume, 4.0);
        assert_eq!(m.admitted_queries, 1);
        assert_eq!(m.total_queries, 2);
        assert_eq!(m.throughput, 0.5);
        assert_eq!(m.replicas_placed, 1);
        // Delay at dc: 0.001·4 + 0.05·0.5·4 = 0.104.
        assert!((m.mean_admitted_delay - 0.104).abs() < 1e-12);
        // Load 4 GHz of 100 at dc, 0 at cl.
        assert!((m.peak_utilization - 0.04).abs() < 1e-12);
        assert!((m.mean_utilization - 0.02).abs() < 1e-12);
    }

    #[test]
    fn metrics_of_empty_solution() {
        let (inst, _) = setup();
        let m = Metrics::of(&inst, &Solution::empty(&inst));
        assert_eq!(m.admitted_volume, 0.0);
        assert_eq!(m.throughput, 0.0);
        assert_eq!(m.mean_admitted_delay, 0.0);
        assert_eq!(m.peak_utilization, 0.0);
    }

    #[test]
    fn display_is_humane() {
        let (inst, sol) = setup();
        let text = Metrics::of(&inst, &sol).to_string();
        assert!(text.contains("volume 4.00 GB"));
        assert!(text.contains("(1/2)"));
    }

    #[test]
    fn serde_round_trip() {
        if std::env::var_os("EDGEREP_STUB_HARNESS").is_some() {
            return; // the registry-free harness stubs serde_json
        }
        let (inst, sol) = setup();
        let m = Metrics::of(&inst, &sol);
        let json = serde_json::to_string(&m).unwrap();
        let back: Metrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m.admitted_queries, back.admitted_queries);
        assert_eq!(m.total_queries, back.total_queries);
        assert_eq!(m.replicas_placed, back.replicas_placed);
        assert!((m.admitted_volume - back.admitted_volume).abs() < 1e-9);
        assert!((m.mean_admitted_delay - back.mean_admitted_delay).abs() < 1e-9);
    }
}
