//! The two-tier edge cloud `G = (BS ∪ SW ∪ CL ∪ DC, E)`.
//!
//! Base stations and switches only route traffic; the *compute nodes*
//! `V = CL ∪ DC` additionally process queries and host replicas. Compute
//! nodes get dense [`ComputeNodeId`]s so the placement algorithms can use
//! plain arrays; the underlying transport graph keeps its own
//! [`edgerep_graph::NodeId`]s, and minimum-transmission-delay distances
//! between all graph nodes are cached in a [`edgerep_graph::DelayMatrix`]
//! at build time (the algorithms are pure lookups afterwards).

use edgerep_graph::{DelayMatrix, Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Role of a node in the two-tier edge cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Access point through which users connect; routing only.
    BaseStation,
    /// WMAN switch (possibly a gateway to remote data centers); routing only.
    Switch,
    /// Edge cloudlet co-located with a switch: small compute + storage.
    Cloudlet,
    /// Remote data center: large compute + storage.
    DataCenter,
}

impl NodeKind {
    /// Whether nodes of this kind evaluate queries and host replicas.
    pub fn is_compute(self) -> bool {
        matches!(self, NodeKind::Cloudlet | NodeKind::DataCenter)
    }
}

/// Dense index over the compute nodes `V = CL ∪ DC` (the paper's `v_l`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ComputeNodeId(pub u32);

impl ComputeNodeId {
    /// The index as `usize` for slice access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ComputeNodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "V{}", self.0)
    }
}

/// Attributes of one compute node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeNode {
    /// Role, always `Cloudlet` or `DataCenter`.
    pub kind: NodeKind,
    /// Graph node this compute node lives at.
    pub graph_node: NodeId,
    /// Computing capacity `B(v)` in GHz.
    pub capacity: f64,
    /// Currently available compute `A(v)` in GHz (`≤ capacity`).
    pub available: f64,
    /// Processing delay `d(v)`: seconds to process one GB per allocated GHz.
    pub proc_delay: f64,
}

/// Errors detected while constructing an [`EdgeCloud`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// No cloudlet or data center exists; nothing can host a replica.
    NoComputeNodes,
    /// A capacity, availability, or delay was negative or non-finite.
    InvalidAttribute(String),
    /// Available compute exceeded capacity at a node.
    AvailableExceedsCapacity(ComputeNodeId),
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::NoComputeNodes => {
                write!(f, "edge cloud has no cloudlets or data centers")
            }
            NetworkError::InvalidAttribute(msg) => write!(f, "invalid attribute: {msg}"),
            NetworkError::AvailableExceedsCapacity(v) => {
                write!(f, "available compute exceeds capacity at {v}")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// A validated two-tier edge cloud.
///
/// Construct with [`EdgeCloudBuilder`]. All minimum transmission delays are
/// precomputed; `min_delay` lookups are O(1).
#[derive(Debug, Clone)]
pub struct EdgeCloud {
    graph: Graph,
    kinds: Vec<NodeKind>,
    compute: Vec<ComputeNode>,
    delays: DelayMatrix,
}

impl EdgeCloud {
    /// The underlying transport graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Role of a graph node.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.kinds[n.index()]
    }

    /// All compute nodes, indexed by [`ComputeNodeId`].
    pub fn compute_nodes(&self) -> &[ComputeNode] {
        &self.compute
    }

    /// Number of compute nodes `|V|`.
    pub fn compute_count(&self) -> usize {
        self.compute.len()
    }

    /// Iterator over compute node ids.
    pub fn compute_ids(&self) -> impl ExactSizeIterator<Item = ComputeNodeId> + '_ {
        (0..self.compute.len() as u32).map(ComputeNodeId)
    }

    /// Attributes of one compute node.
    #[inline]
    pub fn node(&self, v: ComputeNodeId) -> &ComputeNode {
        &self.compute[v.index()]
    }

    /// Computing capacity `B(v)`.
    pub fn capacity(&self, v: ComputeNodeId) -> f64 {
        self.compute[v.index()].capacity
    }

    /// Available compute `A(v)`.
    pub fn available(&self, v: ComputeNodeId) -> f64 {
        self.compute[v.index()].available
    }

    /// Per-unit processing delay `d(v)`.
    pub fn proc_delay(&self, v: ComputeNodeId) -> f64 {
        self.compute[v.index()].proc_delay
    }

    /// Minimum transmission delay `dt(p(u, v))` between two compute nodes,
    /// `INFINITY` when disconnected.
    #[inline]
    pub fn min_delay(&self, u: ComputeNodeId, v: ComputeNodeId) -> f64 {
        self.delays.delay_or_inf(
            self.compute[u.index()].graph_node,
            self.compute[v.index()].graph_node,
        )
    }

    /// Minimum transmission delay between arbitrary graph nodes.
    pub fn min_delay_graph(&self, u: NodeId, v: NodeId) -> f64 {
        self.delays.delay_or_inf(u, v)
    }

    /// The cached all-pairs delay matrix.
    pub fn delay_matrix(&self) -> &DelayMatrix {
        &self.delays
    }

    /// Cloudlet count.
    pub fn cloudlet_count(&self) -> usize {
        self.compute
            .iter()
            .filter(|c| c.kind == NodeKind::Cloudlet)
            .count()
    }

    /// Data center count.
    pub fn data_center_count(&self) -> usize {
        self.compute
            .iter()
            .filter(|c| c.kind == NodeKind::DataCenter)
            .count()
    }

    /// Total available compute over all nodes (used by workload scaling).
    pub fn total_available(&self) -> f64 {
        self.compute.iter().map(|c| c.available).sum()
    }

    /// A clone of this cloud with available compute zeroed at every
    /// compute node `keep` rejects.
    ///
    /// The cached all-pairs delay matrix is carried over verbatim —
    /// availability never affects routing — so a regional sub-cloud costs
    /// O(|V|) instead of a fresh all-pairs shortest-path sweep, and its
    /// delays stay bit-identical to the parent's. Admission treats a
    /// zero-available node as serving nothing, which is what confines a
    /// regional solver to the kept nodes.
    pub fn with_masked_availability(&self, mut keep: impl FnMut(ComputeNodeId) -> bool) -> Self {
        let mut masked = self.clone();
        for (i, node) in masked.compute.iter_mut().enumerate() {
            if !keep(ComputeNodeId(i as u32)) {
                node.available = 0.0;
            }
        }
        masked
    }
}

/// Builder assembling an [`EdgeCloud`] from roles, attributes and links.
#[derive(Debug, Clone, Default)]
pub struct EdgeCloudBuilder {
    graph: Graph,
    kinds: Vec<NodeKind>,
    compute: Vec<ComputeNode>,
}

impl EdgeCloudBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn add_compute(&mut self, kind: NodeKind, capacity: f64, proc_delay: f64) -> ComputeNodeId {
        let graph_node = self.graph.add_node();
        self.kinds.push(kind);
        let id = ComputeNodeId(self.compute.len() as u32);
        self.compute.push(ComputeNode {
            kind,
            graph_node,
            capacity,
            available: capacity,
            proc_delay,
        });
        id
    }

    /// Adds a data center with the given capacity (GHz) and per-unit
    /// processing delay; all capacity starts available.
    pub fn add_data_center(&mut self, capacity: f64, proc_delay: f64) -> ComputeNodeId {
        self.add_compute(NodeKind::DataCenter, capacity, proc_delay)
    }

    /// Adds an edge cloudlet with the given capacity and processing delay.
    pub fn add_cloudlet(&mut self, capacity: f64, proc_delay: f64) -> ComputeNodeId {
        self.add_compute(NodeKind::Cloudlet, capacity, proc_delay)
    }

    /// Adds a routing-only switch and returns its graph node.
    pub fn add_switch(&mut self) -> NodeId {
        let n = self.graph.add_node();
        self.kinds.push(NodeKind::Switch);
        n
    }

    /// Adds a routing-only base station and returns its graph node.
    pub fn add_base_station(&mut self) -> NodeId {
        let n = self.graph.add_node();
        self.kinds.push(NodeKind::BaseStation);
        n
    }

    /// Reduces the available compute at `v` (models pre-existing load).
    pub fn set_available(&mut self, v: ComputeNodeId, available: f64) {
        self.compute[v.index()].available = available;
    }

    /// Graph node backing a compute node (for linking).
    pub fn graph_node(&self, v: ComputeNodeId) -> NodeId {
        self.compute[v.index()].graph_node
    }

    /// Links two compute nodes with a per-unit-data transmission delay.
    pub fn link(&mut self, u: ComputeNodeId, v: ComputeNodeId, delay: f64) {
        let (gu, gv) = (self.graph_node(u), self.graph_node(v));
        self.graph.add_edge(gu, gv, delay);
    }

    /// Links two arbitrary graph nodes (switches, base stations, …).
    pub fn link_graph(&mut self, u: NodeId, v: NodeId, delay: f64) {
        self.graph.add_edge(u, v, delay);
    }

    /// Number of compute nodes added so far.
    pub fn compute_count(&self) -> usize {
        self.compute.len()
    }

    /// Validates and freezes the edge cloud, computing all-pairs delays.
    pub fn build(self) -> Result<EdgeCloud, NetworkError> {
        if self.compute.is_empty() {
            return Err(NetworkError::NoComputeNodes);
        }
        for (i, c) in self.compute.iter().enumerate() {
            let id = ComputeNodeId(i as u32);
            if !(c.capacity.is_finite() && c.capacity >= 0.0) {
                return Err(NetworkError::InvalidAttribute(format!(
                    "capacity {} at {id}",
                    c.capacity
                )));
            }
            if !(c.proc_delay.is_finite() && c.proc_delay >= 0.0) {
                return Err(NetworkError::InvalidAttribute(format!(
                    "processing delay {} at {id}",
                    c.proc_delay
                )));
            }
            if !(c.available.is_finite() && c.available >= 0.0) {
                return Err(NetworkError::InvalidAttribute(format!(
                    "available {} at {id}",
                    c.available
                )));
            }
            if c.available > c.capacity {
                return Err(NetworkError::AvailableExceedsCapacity(id));
            }
        }
        let delays = DelayMatrix::compute(&self.graph);
        Ok(EdgeCloud {
            graph: self.graph,
            kinds: self.kinds,
            compute: self.compute,
            delays,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cloud() -> EdgeCloud {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(400.0, 0.001);
        let cl1 = b.add_cloudlet(10.0, 0.01);
        let cl2 = b.add_cloudlet(16.0, 0.02);
        let sw = b.add_switch();
        b.link(dc, cl1, 0.05);
        b.link_graph(b.graph_node(cl1), sw, 0.01);
        b.link_graph(b.graph_node(cl2), sw, 0.01);
        b.build().unwrap()
    }

    #[test]
    fn builder_assigns_roles_and_ids() {
        let c = small_cloud();
        assert_eq!(c.compute_count(), 3);
        assert_eq!(c.data_center_count(), 1);
        assert_eq!(c.cloudlet_count(), 2);
        assert_eq!(c.node(ComputeNodeId(0)).kind, NodeKind::DataCenter);
        assert_eq!(
            c.kind(c.node(ComputeNodeId(1)).graph_node),
            NodeKind::Cloudlet
        );
        assert_eq!(c.graph().node_count(), 4);
    }

    #[test]
    fn capacities_start_fully_available() {
        let c = small_cloud();
        for v in c.compute_ids() {
            assert_eq!(c.available(v), c.capacity(v));
        }
        assert_eq!(c.capacity(ComputeNodeId(0)), 400.0);
        assert_eq!(c.total_available(), 426.0);
    }

    #[test]
    fn min_delay_uses_shortest_path() {
        let c = small_cloud();
        // cl1 -> cl2 via the switch: 0.01 + 0.01.
        let d = c.min_delay(ComputeNodeId(1), ComputeNodeId(2));
        assert!((d - 0.02).abs() < 1e-12);
        // dc -> cl2: direct dc-cl1 (0.05) then via switch (0.02) = 0.07.
        let d = c.min_delay(ComputeNodeId(0), ComputeNodeId(2));
        assert!((d - 0.07).abs() < 1e-12);
        assert_eq!(c.min_delay(ComputeNodeId(1), ComputeNodeId(1)), 0.0);
    }

    #[test]
    fn masked_availability_zeroes_rejected_nodes_only() {
        let c = small_cloud();
        let masked = c.with_masked_availability(|v| v == ComputeNodeId(1));
        assert_eq!(masked.available(ComputeNodeId(0)), 0.0);
        assert_eq!(masked.available(ComputeNodeId(1)), 10.0);
        assert_eq!(masked.available(ComputeNodeId(2)), 0.0);
        // Capacities and roles are untouched; only availability changes.
        for v in c.compute_ids() {
            assert_eq!(masked.capacity(v), c.capacity(v));
            assert_eq!(masked.node(v).kind, c.node(v).kind);
        }
        // Routing is availability-independent: the cached delay matrix is
        // reused and stays bit-identical to the parent's.
        for u in c.compute_ids() {
            for v in c.compute_ids() {
                assert_eq!(
                    masked.min_delay(u, v).to_bits(),
                    c.min_delay(u, v).to_bits()
                );
            }
        }
    }

    #[test]
    fn node_kind_compute_predicate() {
        assert!(NodeKind::Cloudlet.is_compute());
        assert!(NodeKind::DataCenter.is_compute());
        assert!(!NodeKind::Switch.is_compute());
        assert!(!NodeKind::BaseStation.is_compute());
    }

    #[test]
    fn empty_cloud_rejected() {
        let b = EdgeCloudBuilder::new();
        assert_eq!(b.build().unwrap_err(), NetworkError::NoComputeNodes);
        let mut b = EdgeCloudBuilder::new();
        b.add_switch();
        assert_eq!(b.build().unwrap_err(), NetworkError::NoComputeNodes);
    }

    #[test]
    fn invalid_capacity_rejected() {
        let mut b = EdgeCloudBuilder::new();
        b.add_cloudlet(f64::NAN, 0.01);
        assert!(matches!(
            b.build().unwrap_err(),
            NetworkError::InvalidAttribute(_)
        ));
        let mut b = EdgeCloudBuilder::new();
        b.add_cloudlet(-5.0, 0.01);
        assert!(matches!(
            b.build().unwrap_err(),
            NetworkError::InvalidAttribute(_)
        ));
    }

    #[test]
    fn invalid_proc_delay_rejected() {
        let mut b = EdgeCloudBuilder::new();
        b.add_data_center(10.0, -1.0);
        assert!(matches!(
            b.build().unwrap_err(),
            NetworkError::InvalidAttribute(_)
        ));
    }

    #[test]
    fn available_above_capacity_rejected() {
        let mut b = EdgeCloudBuilder::new();
        let v = b.add_cloudlet(10.0, 0.01);
        b.set_available(v, 11.0);
        assert_eq!(
            b.build().unwrap_err(),
            NetworkError::AvailableExceedsCapacity(v)
        );
    }

    #[test]
    fn set_available_models_preexisting_load() {
        let mut b = EdgeCloudBuilder::new();
        let v = b.add_cloudlet(10.0, 0.01);
        b.set_available(v, 4.0);
        let c = b.build().unwrap();
        assert_eq!(c.available(v), 4.0);
        assert_eq!(c.capacity(v), 10.0);
    }

    #[test]
    fn disconnected_compute_nodes_have_infinite_delay() {
        let mut b = EdgeCloudBuilder::new();
        let a = b.add_cloudlet(8.0, 0.01);
        let c = b.add_cloudlet(8.0, 0.01);
        let cloud = b.build().unwrap();
        assert!(cloud.min_delay(a, c).is_infinite());
    }

    #[test]
    fn error_display_messages() {
        assert!(NetworkError::NoComputeNodes
            .to_string()
            .contains("no cloudlets"));
        assert!(NetworkError::AvailableExceedsCapacity(ComputeNodeId(2))
            .to_string()
            .contains("V2"));
    }
}
