//! Big-data analytics queries `q_m` and their QoS requirements.

use serde::{Deserialize, Serialize};

use crate::data::DatasetId;
use crate::network::ComputeNodeId;

/// Dense query index (the paper's `m`, `1 ≤ m ≤ M`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryId(pub u32);

impl QueryId {
    /// The index as `usize` for slice access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// One demanded dataset of a query, with the query-specific selectivity
/// `α_nm ∈ (0, 1]`: the intermediate result shipped back to the query's home
/// has size `α_nm · |S_n|` (§2.2, after Rao et al., SoCC'12).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    /// The demanded dataset.
    pub dataset: DatasetId,
    /// Intermediate-result fraction `α_nm`.
    pub selectivity: f64,
}

impl Demand {
    /// Creates a demand record.
    pub fn new(dataset: DatasetId, selectivity: f64) -> Self {
        Self {
            dataset,
            selectivity,
        }
    }
}

/// An analytics query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// This query's id.
    pub id: QueryId,
    /// Home location `h_m` where intermediate results are aggregated.
    pub home: ComputeNodeId,
    /// Demanded dataset collection `S(q_m)` with per-dataset selectivities.
    pub demands: Vec<Demand>,
    /// Compute rate `r_m`: GHz allocated per GB of processed data.
    pub compute_rate: f64,
    /// QoS deadline `d_qm` in seconds.
    pub deadline: f64,
}

impl Query {
    /// Creates a query record.
    pub fn new(
        id: QueryId,
        home: ComputeNodeId,
        demands: Vec<Demand>,
        compute_rate: f64,
        deadline: f64,
    ) -> Self {
        Self {
            id,
            home,
            demands,
            compute_rate,
            deadline,
        }
    }

    /// Number of demanded datasets.
    pub fn demand_count(&self) -> usize {
        self.demands.len()
    }

    /// Whether this query demands `dataset`.
    pub fn demands_dataset(&self, dataset: DatasetId) -> bool {
        self.demands.iter().any(|d| d.dataset == dataset)
    }

    /// Selectivity of this query on `dataset`, if demanded.
    pub fn selectivity_on(&self, dataset: DatasetId) -> Option<f64> {
        self.demands
            .iter()
            .find(|d| d.dataset == dataset)
            .map(|d| d.selectivity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q() -> Query {
        Query::new(
            QueryId(0),
            ComputeNodeId(1),
            vec![
                Demand::new(DatasetId(0), 0.3),
                Demand::new(DatasetId(2), 1.0),
            ],
            1.0,
            5.0,
        )
    }

    #[test]
    fn demand_queries() {
        let q = q();
        assert_eq!(q.demand_count(), 2);
        assert!(q.demands_dataset(DatasetId(0)));
        assert!(q.demands_dataset(DatasetId(2)));
        assert!(!q.demands_dataset(DatasetId(1)));
        assert_eq!(q.selectivity_on(DatasetId(0)), Some(0.3));
        assert_eq!(q.selectivity_on(DatasetId(1)), None);
    }

    #[test]
    fn display() {
        assert_eq!(QueryId(7).to_string(), "q7");
    }

    #[test]
    fn serde_round_trip() {
        if std::env::var_os("EDGEREP_STUB_HARNESS").is_some() {
            return; // the registry-free harness stubs serde_json
        }
        let q = q();
        let json = serde_json::to_string(&q).unwrap();
        let back: Query = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }
}
