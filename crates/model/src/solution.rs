//! Placements, assignments, admission semantics, and feasibility validation.
//!
//! A [`Solution`] carries the two ILP decision families of §3.2:
//!
//! * `x_nl` — which nodes host a replica of dataset `S_n` (≤ `K` each,
//!   constraint (5));
//! * `π_ml` — which node serves each demand of each query (constraint (3):
//!   only nodes holding the replica; constraint (4): within the deadline;
//!   constraint (2): within node compute availability).
//!
//! A query is **admitted** iff *all* of its demands are assigned; the
//! objective is the total demanded volume over admitted queries
//! (equation (1)). [`Solution::validate`] re-checks every constraint from
//! scratch, so tests can hold all algorithms to the same contract.

use serde::{Deserialize, Serialize};

use crate::data::DatasetId;
use crate::delay::assignment_delay_with_holders;
use crate::instance::Instance;
use crate::network::ComputeNodeId;
use crate::query::QueryId;

/// Numerical slack for capacity / deadline comparisons; placements are built
/// from sums of `f64` products and must not fail validation on 1-ulp noise.
///
/// This is the **one** feasibility epsilon: admission
/// (`edgerep-core`), the delay law ([`crate::delay::is_deadline_feasible`]),
/// and this validator all compare against the same constant, so a plan
/// accepted by admission can never be rejected by validation (or vice
/// versa) over epsilon disagreement.
pub const FEASIBILITY_EPS: f64 = 1e-9;

/// One feasibility violation found by [`Solution::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum SolutionError {
    /// A replica was placed on a node id outside the cloud.
    UnknownReplicaNode(DatasetId, ComputeNodeId),
    /// A dataset has more than `K` replicas (constraint (5)).
    ReplicaBudgetExceeded(DatasetId, usize),
    /// The same node appears twice in a dataset's replica list.
    DuplicateReplica(DatasetId, ComputeNodeId),
    /// An assignment's node list arity differs from the query's demands.
    ArityMismatch(QueryId),
    /// A demand was assigned to a node without the dataset's replica
    /// (constraint (3)).
    NoReplicaAtAssignment(QueryId, DatasetId, ComputeNodeId),
    /// A demand's delay exceeds the query deadline (constraint (4)),
    /// including any erasure-coding gather + decode overhead.
    DeadlineViolated(QueryId, DatasetId, ComputeNodeId),
    /// An assigned erasure-coded dataset has fewer placed shards than its
    /// read quorum `k` — unreadable regardless of the deadline.
    ShardQuorumUnmet(QueryId, DatasetId, usize, usize),
    /// A node's assigned compute exceeds its availability (constraint (2)).
    CapacityExceeded(ComputeNodeId, f64, f64),
}

impl std::fmt::Display for SolutionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolutionError::UnknownReplicaNode(d, v) => {
                write!(f, "replica of {d} on unknown node {v}")
            }
            SolutionError::ReplicaBudgetExceeded(d, k) => {
                write!(f, "dataset {d} has {k} replicas, over budget")
            }
            SolutionError::DuplicateReplica(d, v) => {
                write!(f, "dataset {d} lists node {v} twice")
            }
            SolutionError::ArityMismatch(q) => {
                write!(f, "assignment arity mismatch for {q}")
            }
            SolutionError::NoReplicaAtAssignment(q, d, v) => {
                write!(f, "{q} served {d} at {v} which holds no replica")
            }
            SolutionError::DeadlineViolated(q, d, v) => {
                write!(f, "{q} misses its deadline serving {d} at {v}")
            }
            SolutionError::ShardQuorumUnmet(q, d, have, need) => {
                write!(f, "{q} reads {d} with {have} shards placed, quorum {need}")
            }
            SolutionError::CapacityExceeded(v, used, avail) => {
                write!(f, "node {v} assigned {used} GHz of {avail} available")
            }
        }
    }
}

impl std::error::Error for SolutionError {}

/// A replication-and-placement solution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Replica locations per dataset (indexed by `DatasetId`).
    replicas: Vec<Vec<ComputeNodeId>>,
    /// Per query: `None` = rejected; `Some(nodes)` = admitted with `nodes`
    /// aligned to the query's demand list.
    assignments: Vec<Option<Vec<ComputeNodeId>>>,
}

impl Solution {
    /// An empty solution (no replicas, every query rejected) shaped for
    /// `inst`.
    pub fn empty(inst: &Instance) -> Self {
        Self {
            replicas: vec![Vec::new(); inst.datasets().len()],
            assignments: vec![None; inst.queries().len()],
        }
    }

    /// Places a replica of `d` on `v`; returns `false` if already present.
    pub fn place_replica(&mut self, d: DatasetId, v: ComputeNodeId) -> bool {
        let list = &mut self.replicas[d.index()];
        if list.contains(&v) {
            false
        } else {
            list.push(v);
            true
        }
    }

    /// Replica locations of `d`.
    pub fn replicas_of(&self, d: DatasetId) -> &[ComputeNodeId] {
        &self.replicas[d.index()]
    }

    /// Removes the replica of `d` at `v`; returns `false` if it was not
    /// there. Callers are responsible for not stranding assignments — the
    /// validator flags any assignment left without its replica.
    pub fn remove_replica(&mut self, d: DatasetId, v: ComputeNodeId) -> bool {
        let list = &mut self.replicas[d.index()];
        match list.iter().position(|&x| x == v) {
            Some(i) => {
                list.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Datasets currently replicated on `v`.
    pub fn replicas_on(&self, v: ComputeNodeId) -> Vec<DatasetId> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, list)| list.contains(&v))
            .map(|(di, _)| DatasetId(di as u32))
            .collect()
    }

    /// Removes every replica hosted on `v` (a node loss); returns the
    /// datasets orphaned, in dataset-id order. As with
    /// [`remove_replica`](Self::remove_replica), assignments pointing at
    /// `v` are left for the caller to repair or fail over.
    pub fn remove_node_replicas(&mut self, v: ComputeNodeId) -> Vec<DatasetId> {
        let mut orphaned = Vec::new();
        for (di, list) in self.replicas.iter_mut().enumerate() {
            if let Some(i) = list.iter().position(|&x| x == v) {
                list.swap_remove(i);
                orphaned.push(DatasetId(di as u32));
            }
        }
        orphaned
    }

    /// Whether any admitted query's demand on `d` is served at `v`.
    pub fn replica_in_use(&self, inst: &Instance, d: DatasetId, v: ComputeNodeId) -> bool {
        for (qi, assignment) in self.assignments.iter().enumerate() {
            let Some(nodes) = assignment else { continue };
            let query = inst.query(QueryId(qi as u32));
            for (dem, &node) in query.demands.iter().zip(nodes.iter()) {
                if dem.dataset == d && node == v {
                    return true;
                }
            }
        }
        false
    }

    /// Number of replicas of `d`.
    pub fn replica_count(&self, d: DatasetId) -> usize {
        self.replicas[d.index()].len()
    }

    /// Whether `v` holds a replica of `d`.
    pub fn has_replica(&self, d: DatasetId, v: ComputeNodeId) -> bool {
        self.replicas[d.index()].contains(&v)
    }

    /// Total replicas placed over all datasets.
    pub fn total_replicas(&self) -> usize {
        self.replicas.iter().map(Vec::len).sum()
    }

    /// Admits `q` with `nodes` aligned to its demand list (overwrites a
    /// previous assignment).
    pub fn assign_query(&mut self, q: QueryId, nodes: Vec<ComputeNodeId>) {
        self.assignments[q.index()] = Some(nodes);
    }

    /// Rejects `q` (removes its assignment if present).
    pub fn unassign_query(&mut self, q: QueryId) {
        self.assignments[q.index()] = None;
    }

    /// The serving nodes of `q`, if admitted.
    pub fn assignment_of(&self, q: QueryId) -> Option<&[ComputeNodeId]> {
        self.assignments[q.index()].as_deref()
    }

    /// Whether `q` is admitted.
    pub fn is_admitted(&self, q: QueryId) -> bool {
        self.assignments[q.index()].is_some()
    }

    /// Ids of all admitted queries.
    pub fn admitted_queries(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_some())
            .map(|(i, _)| QueryId(i as u32))
    }

    /// Number of admitted queries.
    pub fn admitted_count(&self) -> usize {
        self.assignments.iter().filter(|a| a.is_some()).count()
    }

    /// Objective (1): total volume of datasets demanded by admitted queries.
    pub fn admitted_volume(&self, inst: &Instance) -> f64 {
        self.admitted_queries()
            .map(|q| inst.demanded_volume(q))
            .sum()
    }

    /// System throughput: admitted queries / total queries (§4.2).
    pub fn throughput(&self, inst: &Instance) -> f64 {
        if inst.queries().is_empty() {
            return 0.0;
        }
        self.admitted_count() as f64 / inst.queries().len() as f64
    }

    /// Compute load per node implied by the assignments
    /// (`Σ |S_n|·r_m` per constraint (2)).
    pub fn node_loads(&self, inst: &Instance) -> Vec<f64> {
        let mut load = vec![0.0; inst.cloud().compute_count()];
        for (qi, assignment) in self.assignments.iter().enumerate() {
            let Some(nodes) = assignment else { continue };
            let query = inst.query(QueryId(qi as u32));
            for (dem, &v) in query.demands.iter().zip(nodes.iter()) {
                load[v.index()] += inst.size(dem.dataset) * query.compute_rate;
            }
        }
        load
    }

    /// Total GB stored across all placed replicas/shards — the storage
    /// cost axis of the EC-vs-replication tradeoff. Each holder of `d`
    /// stores [`Instance::shard_gb`] (`|S_n|` per copy, `|S_n|/k` per
    /// shard).
    pub fn storage_gb(&self, inst: &Instance) -> f64 {
        inst.dataset_ids()
            .map(|d| self.replica_count(d) as f64 * inst.shard_gb(d))
            .sum()
    }

    /// Re-checks every ILP constraint; returns all violations found.
    pub fn validate(&self, inst: &Instance) -> Result<(), Vec<SolutionError>> {
        let mut errors = Vec::new();
        let v_count = inst.cloud().compute_count() as u32;

        for (di, nodes) in self.replicas.iter().enumerate() {
            let d = DatasetId(di as u32);
            if nodes.len() > inst.slots(d) {
                errors.push(SolutionError::ReplicaBudgetExceeded(d, nodes.len()));
            }
            let mut seen = std::collections::HashSet::new();
            for &v in nodes {
                if v.0 >= v_count {
                    errors.push(SolutionError::UnknownReplicaNode(d, v));
                } else if !seen.insert(v) {
                    errors.push(SolutionError::DuplicateReplica(d, v));
                }
            }
        }

        for (qi, assignment) in self.assignments.iter().enumerate() {
            let q = QueryId(qi as u32);
            let Some(nodes) = assignment else { continue };
            let query = inst.query(q);
            if nodes.len() != query.demands.len() {
                errors.push(SolutionError::ArityMismatch(q));
                continue;
            }
            for (idx, (dem, &v)) in query.demands.iter().zip(nodes.iter()).enumerate() {
                if v.0 >= v_count || !self.has_replica(dem.dataset, v) {
                    errors.push(SolutionError::NoReplicaAtAssignment(q, dem.dataset, v));
                    continue;
                }
                let holders = self.replicas_of(dem.dataset);
                let quorum = inst.scheme(dem.dataset).min_read();
                if holders.len() < quorum {
                    errors.push(SolutionError::ShardQuorumUnmet(
                        q,
                        dem.dataset,
                        holders.len(),
                        quorum,
                    ));
                    continue;
                }
                if assignment_delay_with_holders(inst, q, idx, v, holders)
                    > query.deadline + FEASIBILITY_EPS
                {
                    errors.push(SolutionError::DeadlineViolated(q, dem.dataset, v));
                }
            }
        }

        for (vi, &used) in self.node_loads(inst).iter().enumerate() {
            let v = ComputeNodeId(vi as u32);
            let avail = inst.cloud().available(v);
            if used > avail + FEASIBILITY_EPS {
                errors.push(SolutionError::CapacityExceeded(v, used, avail));
            }
        }

        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::network::EdgeCloudBuilder;
    use crate::query::Demand;

    /// dc (cap 100) --0.05-- cl (cap 10); dataset S0 (4 GB) and S1 (2 GB);
    /// q0 at cl demands S0 (α .5); q1 at cl demands both.
    fn inst() -> Instance {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(10.0, 0.01);
        b.link(dc, cl, 0.05);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d0 = ib.add_dataset(4.0, dc);
        let d1 = ib.add_dataset(2.0, dc);
        ib.add_query(cl, vec![Demand::new(d0, 0.5)], 1.0, 1.0);
        ib.add_query(
            cl,
            vec![Demand::new(d0, 1.0), Demand::new(d1, 0.5)],
            1.0,
            1.0,
        );
        ib.build().unwrap()
    }

    const DC: ComputeNodeId = ComputeNodeId(0);
    const CL: ComputeNodeId = ComputeNodeId(1);

    #[test]
    fn empty_solution_is_feasible_and_worthless() {
        let inst = inst();
        let sol = Solution::empty(&inst);
        assert!(sol.validate(&inst).is_ok());
        assert_eq!(sol.admitted_volume(&inst), 0.0);
        assert_eq!(sol.throughput(&inst), 0.0);
        assert_eq!(sol.total_replicas(), 0);
    }

    #[test]
    fn place_replica_dedupes() {
        let inst = inst();
        let mut sol = Solution::empty(&inst);
        assert!(sol.place_replica(DatasetId(0), DC));
        assert!(!sol.place_replica(DatasetId(0), DC));
        assert!(sol.place_replica(DatasetId(0), CL));
        assert_eq!(sol.replica_count(DatasetId(0)), 2);
        assert!(sol.has_replica(DatasetId(0), DC));
        assert!(!sol.has_replica(DatasetId(1), DC));
    }

    #[test]
    fn admission_accounting() {
        let inst = inst();
        let mut sol = Solution::empty(&inst);
        sol.place_replica(DatasetId(0), DC);
        sol.place_replica(DatasetId(1), DC);
        sol.assign_query(QueryId(1), vec![DC, DC]);
        assert!(sol.is_admitted(QueryId(1)));
        assert!(!sol.is_admitted(QueryId(0)));
        assert_eq!(sol.admitted_count(), 1);
        assert_eq!(sol.admitted_volume(&inst), 6.0);
        assert_eq!(sol.throughput(&inst), 0.5);
        assert_eq!(sol.admitted_queries().collect::<Vec<_>>(), vec![QueryId(1)]);
        sol.unassign_query(QueryId(1));
        assert_eq!(sol.admitted_count(), 0);
    }

    #[test]
    fn valid_full_solution_passes() {
        let inst = inst();
        let mut sol = Solution::empty(&inst);
        sol.place_replica(DatasetId(0), DC);
        sol.place_replica(DatasetId(1), DC);
        sol.assign_query(QueryId(0), vec![DC]);
        sol.assign_query(QueryId(1), vec![DC, DC]);
        assert!(sol.validate(&inst).is_ok());
        let loads = sol.node_loads(&inst);
        assert!((loads[DC.index()] - (4.0 + 4.0 + 2.0)).abs() < 1e-12);
        assert_eq!(loads[CL.index()], 0.0);
    }

    #[test]
    fn missing_replica_detected() {
        let inst = inst();
        let mut sol = Solution::empty(&inst);
        sol.assign_query(QueryId(0), vec![DC]);
        let errs = sol.validate(&inst).unwrap_err();
        assert!(matches!(
            errs[0],
            SolutionError::NoReplicaAtAssignment(QueryId(0), DatasetId(0), DC)
        ));
    }

    #[test]
    fn replica_budget_enforced() {
        let inst = inst(); // K = 2
        let mut sol = Solution::empty(&inst);
        sol.place_replica(DatasetId(0), DC);
        sol.place_replica(DatasetId(0), CL);
        assert!(sol.validate(&inst).is_ok());
        // Force a third replica via a node id that exists? Only 2 nodes.
        // Exceed via duplicate push through internal state instead:
        sol.place_replica(DatasetId(0), ComputeNodeId(5));
        let errs = sol.validate(&inst).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, SolutionError::ReplicaBudgetExceeded(DatasetId(0), 3))));
        assert!(errs
            .iter()
            .any(|e| matches!(e, SolutionError::UnknownReplicaNode(DatasetId(0), _))));
    }

    #[test]
    fn capacity_violation_detected() {
        let inst = inst();
        let mut sol = Solution::empty(&inst);
        sol.place_replica(DatasetId(0), CL);
        sol.place_replica(DatasetId(1), CL);
        // q0: 4 GHz at cl; q1: 4 + 2 GHz at cl = 10 total; cap 10 ok.
        sol.assign_query(QueryId(0), vec![CL]);
        sol.assign_query(QueryId(1), vec![CL, CL]);
        assert!(sol.validate(&inst).is_ok());
        // Second copy of q1's S0 demand onto cl blows the budget.
        let mut over = sol.clone();
        over.assign_query(QueryId(1), vec![CL, CL]);
        // Already at cap; add a fake extra query load by reassigning q0
        // twice is impossible, so shrink availability instead:
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(10.0, 0.01);
        b.set_available(cl, 5.0);
        b.link(dc, cl, 0.05);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d0 = ib.add_dataset(4.0, dc);
        ib.add_query(cl, vec![Demand::new(d0, 0.5)], 1.0, 1.0);
        ib.add_query(cl, vec![Demand::new(d0, 0.5)], 1.0, 1.0);
        let tight = ib.build().unwrap();
        let mut sol = Solution::empty(&tight);
        sol.place_replica(DatasetId(0), cl);
        sol.assign_query(QueryId(0), vec![cl]);
        sol.assign_query(QueryId(1), vec![cl]);
        let errs = sol.validate(&tight).unwrap_err();
        assert!(matches!(errs[0], SolutionError::CapacityExceeded(v, _, _) if v == cl));
    }

    #[test]
    fn deadline_violation_detected() {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(10.0, 0.01);
        b.link(dc, cl, 10.0); // very slow link
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 1);
        let d0 = ib.add_dataset(4.0, dc);
        ib.add_query(cl, vec![Demand::new(d0, 1.0)], 1.0, 0.5);
        let inst = ib.build().unwrap();
        let mut sol = Solution::empty(&inst);
        sol.place_replica(DatasetId(0), dc);
        sol.assign_query(QueryId(0), vec![dc]);
        let errs = sol.validate(&inst).unwrap_err();
        assert!(matches!(errs[0], SolutionError::DeadlineViolated(..)));
    }

    #[test]
    fn arity_mismatch_detected() {
        let inst = inst();
        let mut sol = Solution::empty(&inst);
        sol.place_replica(DatasetId(0), DC);
        sol.assign_query(QueryId(1), vec![DC]);
        let errs = sol.validate(&inst).unwrap_err();
        assert!(matches!(errs[0], SolutionError::ArityMismatch(QueryId(1))));
    }

    #[test]
    fn remove_replica_and_usage_queries() {
        let inst = inst();
        let mut sol = Solution::empty(&inst);
        sol.place_replica(DatasetId(0), DC);
        sol.place_replica(DatasetId(0), CL);
        assert!(!sol.replica_in_use(&inst, DatasetId(0), DC));
        sol.assign_query(QueryId(0), vec![DC]);
        assert!(sol.replica_in_use(&inst, DatasetId(0), DC));
        assert!(!sol.replica_in_use(&inst, DatasetId(0), CL));
        // Removing the unused replica keeps the solution valid.
        assert!(sol.remove_replica(DatasetId(0), CL));
        assert!(!sol.remove_replica(DatasetId(0), CL));
        assert!(sol.validate(&inst).is_ok());
        // Removing the used one breaks it.
        assert!(sol.remove_replica(DatasetId(0), DC));
        assert!(sol.validate(&inst).is_err());
    }

    #[test]
    fn remove_node_replicas_orphans_every_dataset_on_the_node() {
        let inst = inst();
        let mut sol = Solution::empty(&inst);
        sol.place_replica(DatasetId(0), DC);
        sol.place_replica(DatasetId(0), CL);
        sol.place_replica(DatasetId(1), DC);
        assert_eq!(sol.replicas_on(DC), vec![DatasetId(0), DatasetId(1)]);
        let orphaned = sol.remove_node_replicas(DC);
        assert_eq!(orphaned, vec![DatasetId(0), DatasetId(1)]);
        assert!(!sol.has_replica(DatasetId(0), DC));
        assert!(sol.has_replica(DatasetId(0), CL));
        assert_eq!(sol.replica_count(DatasetId(1)), 0);
        assert!(sol.replicas_on(DC).is_empty());
        assert!(sol.remove_node_replicas(DC).is_empty());
    }

    #[test]
    fn storage_gb_accounts_shard_sizes() {
        use edgerep_ec::RedundancyScheme;
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl = b.add_cloudlet(10.0, 0.01);
        b.link(dc, cl, 0.05);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 6);
        let d0 = ib.add_dataset(4.0, dc); // default rep(6)
        let d1 = ib.add_dataset(4.0, dc);
        ib.set_scheme(d1, RedundancyScheme::ErasureCoded { k: 4, m: 2 });
        ib.add_query(cl, vec![Demand::new(d0, 0.5)], 1.0, 10.0);
        let inst = ib.build().unwrap();
        let mut sol = Solution::empty(&inst);
        sol.place_replica(d0, DC);
        sol.place_replica(d0, CL);
        sol.place_replica(d1, DC);
        sol.place_replica(d1, CL);
        // Two full 4 GB copies + two 1 GB shards.
        assert!((sol.storage_gb(&inst) - 10.0).abs() < 1e-12);
        assert_eq!(Solution::empty(&inst).storage_gb(&inst), 0.0);
    }

    #[test]
    fn ec_validation_checks_quorum_budget_and_decode_deadline() {
        use edgerep_ec::RedundancyScheme;
        let mut b = EdgeCloudBuilder::new();
        let n0 = b.add_cloudlet(50.0, 0.001);
        let n1 = b.add_cloudlet(50.0, 0.001);
        let n2 = b.add_cloudlet(50.0, 0.001);
        let n3 = b.add_cloudlet(50.0, 0.001);
        b.link(n0, n1, 0.01);
        b.link(n1, n2, 0.01);
        b.link(n2, n3, 0.01);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 3);
        let d = ib.add_dataset(4.0, n0);
        ib.set_scheme(d, RedundancyScheme::ErasureCoded { k: 2, m: 1 });
        ib.set_ec_costs(0.05, 0.1);
        ib.add_query(n0, vec![Demand::new(d, 0.5)], 1.0, 1.0);
        let inst = ib.build().unwrap();

        // One shard placed + assigned: quorum unmet.
        let mut sol = Solution::empty(&inst);
        sol.place_replica(d, n0);
        sol.assign_query(QueryId(0), vec![n0]);
        let errs = sol.validate(&inst).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, SolutionError::ShardQuorumUnmet(_, _, 1, 2))));

        // Two shards: readable, decode overhead fits the 1 s deadline
        // (proc 0.004 + gather 0.01·2 + decode 0.05·4 = 0.224).
        sol.place_replica(d, n1);
        assert!(sol.validate(&inst).is_ok());

        // Budget: slots = k + m = 3; a fourth holder is over budget.
        sol.place_replica(d, n2);
        assert!(sol.validate(&inst).is_ok());
        sol.place_replica(d, n3);
        let errs = sol.validate(&inst).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, SolutionError::ReplicaBudgetExceeded(_, 4))));
    }

    #[test]
    fn ec_decode_overhead_can_violate_deadline() {
        use edgerep_ec::RedundancyScheme;
        let mut b = EdgeCloudBuilder::new();
        let n0 = b.add_cloudlet(50.0, 0.001);
        let n1 = b.add_cloudlet(50.0, 0.001);
        b.link(n0, n1, 0.01);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d = ib.add_dataset(4.0, n0);
        ib.set_scheme(d, RedundancyScheme::ErasureCoded { k: 2, m: 0 });
        // Decode alone costs 1 s/GB × 4 GB = 4 s > the 1 s deadline.
        ib.set_ec_costs(1.0, 0.1);
        ib.add_query(n0, vec![Demand::new(d, 0.5)], 1.0, 1.0);
        let inst = ib.build().unwrap();
        let mut sol = Solution::empty(&inst);
        sol.place_replica(d, n0);
        sol.place_replica(d, n1);
        sol.assign_query(QueryId(0), vec![n0]);
        let errs = sol.validate(&inst).unwrap_err();
        assert!(matches!(errs[0], SolutionError::DeadlineViolated(..)));
    }

    #[test]
    fn serde_round_trip() {
        if std::env::var_os("EDGEREP_STUB_HARNESS").is_some() {
            return; // the registry-free harness stubs serde_json
        }
        let inst = inst();
        let mut sol = Solution::empty(&inst);
        sol.place_replica(DatasetId(0), DC);
        sol.assign_query(QueryId(0), vec![DC]);
        let json = serde_json::to_string(&sol).unwrap();
        let back: Solution = serde_json::from_str(&json).unwrap();
        assert_eq!(sol, back);
    }
}
