//! Serializable instance specifications.
//!
//! [`Instance`] itself is not serializable — it caches an all-pairs delay
//! matrix and enforces invariants through its builder. [`InstanceSpec`] is
//! its plain-data mirror: every node, link, dataset and query, exactly as a
//! user would write them in a JSON file. Round-tripping re-runs the full
//! validation, so a loaded instance is as trustworthy as a built one.
//!
//! ```
//! use edgerep_model::prelude::*;
//! use edgerep_model::spec::InstanceSpec;
//!
//! let mut b = EdgeCloudBuilder::new();
//! let dc = b.add_data_center(100.0, 0.001);
//! let cl = b.add_cloudlet(8.0, 0.01);
//! b.link(dc, cl, 0.05);
//! let mut ib = InstanceBuilder::new(b.build().unwrap(), 2);
//! let d = ib.add_dataset(4.0, dc);
//! ib.add_query(cl, vec![Demand::new(d, 0.5)], 1.0, 1.0);
//! let inst = ib.build().unwrap();
//!
//! let spec = InstanceSpec::from_instance(&inst);
//! let rebuilt = spec.to_instance().unwrap();
//! assert_eq!(rebuilt.queries(), inst.queries());
//! ```

use serde::{Deserialize, Serialize};

use crate::data::Dataset;
use crate::instance::{Instance, InstanceBuilder, InstanceError};
use crate::network::{ComputeNodeId, EdgeCloudBuilder, NetworkError, NodeKind};
use crate::query::Query;

/// One node of the transport graph in plain-data form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Role of the node.
    pub kind: NodeKind,
    /// Computing capacity `B(v)` in GHz (ignored for routing-only nodes;
    /// must be absent for them).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub capacity: Option<f64>,
    /// Available compute `A(v)`; defaults to the full capacity.
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub available: Option<f64>,
    /// Per-unit processing delay `d(v)` in s/GB (compute nodes only).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub proc_delay: Option<f64>,
}

/// One undirected link with its per-unit-data delay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// First endpoint: index into [`InstanceSpec::nodes`].
    pub a: u32,
    /// Second endpoint.
    pub b: u32,
    /// Transmission delay, s/GB.
    pub delay: f64,
}

/// A whole problem instance in plain-data form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// All graph nodes; compute nodes must carry capacity and proc delay.
    pub nodes: Vec<NodeSpec>,
    /// All links (indices into `nodes`).
    pub links: Vec<LinkSpec>,
    /// Datasets (origins are *compute-node* indices, i.e. positions among
    /// the compute nodes in `nodes` order, matching [`ComputeNodeId`]).
    pub datasets: Vec<Dataset>,
    /// Queries (homes and demands use the same id spaces as [`Instance`]).
    pub queries: Vec<Query>,
    /// Replica budget `K`.
    pub max_replicas: usize,
}

/// Errors raised while converting a spec into an [`Instance`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// A compute node is missing capacity or processing delay, or a
    /// routing node carries them.
    NodeAttributeMismatch(usize),
    /// A link references a node index outside `nodes`.
    DanglingLink(usize),
    /// The edge cloud failed validation.
    Network(NetworkError),
    /// Datasets/queries failed instance validation.
    Instance(InstanceError),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::NodeAttributeMismatch(i) => {
                write!(f, "node {i}: attributes inconsistent with its kind")
            }
            SpecError::DanglingLink(i) => write!(f, "link {i} references an unknown node"),
            SpecError::Network(e) => write!(f, "network: {e}"),
            SpecError::Instance(e) => write!(f, "instance: {e}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl InstanceSpec {
    /// Captures an existing instance as a plain-data spec.
    pub fn from_instance(inst: &Instance) -> Self {
        let cloud = inst.cloud();
        let graph = cloud.graph();
        // Compute nodes know their graph node; build the reverse map so we
        // can emit nodes in graph order.
        let mut compute_of_graph: Vec<Option<ComputeNodeId>> = vec![None; graph.node_count()];
        for v in cloud.compute_ids() {
            compute_of_graph[cloud.node(v).graph_node.index()] = Some(v);
        }
        let nodes = graph
            .nodes()
            .map(|n| match compute_of_graph[n.index()] {
                Some(v) => {
                    let c = cloud.node(v);
                    NodeSpec {
                        kind: c.kind,
                        capacity: Some(c.capacity),
                        available: Some(c.available),
                        proc_delay: Some(c.proc_delay),
                    }
                }
                None => NodeSpec {
                    kind: cloud.kind(n),
                    capacity: None,
                    available: None,
                    proc_delay: None,
                },
            })
            .collect();
        let links = graph
            .edges()
            .iter()
            .map(|e| LinkSpec {
                a: e.u.0,
                b: e.v.0,
                delay: e.weight,
            })
            .collect();
        Self {
            nodes,
            links,
            datasets: inst.datasets().to_vec(),
            queries: inst.queries().to_vec(),
            max_replicas: inst.max_replicas(),
        }
    }

    /// Validates and builds a full [`Instance`].
    ///
    /// Compute-node ids are assigned in `nodes` order over the compute
    /// nodes, which is exactly how [`Self::from_instance`] emits them, so
    /// round-trips preserve every id.
    pub fn to_instance(&self) -> Result<Instance, SpecError> {
        let mut builder = EdgeCloudBuilder::new();
        let mut graph_ids = Vec::with_capacity(self.nodes.len());
        for (i, n) in self.nodes.iter().enumerate() {
            if n.kind.is_compute() {
                let (Some(capacity), Some(proc_delay)) = (n.capacity, n.proc_delay) else {
                    return Err(SpecError::NodeAttributeMismatch(i));
                };
                let v = match n.kind {
                    NodeKind::DataCenter => builder.add_data_center(capacity, proc_delay),
                    NodeKind::Cloudlet => builder.add_cloudlet(capacity, proc_delay),
                    _ => unreachable!("is_compute covers exactly these"),
                };
                if let Some(avail) = n.available {
                    builder.set_available(v, avail);
                }
                graph_ids.push(builder.graph_node(v));
            } else {
                if n.capacity.is_some() || n.proc_delay.is_some() || n.available.is_some() {
                    return Err(SpecError::NodeAttributeMismatch(i));
                }
                let g = match n.kind {
                    NodeKind::Switch => builder.add_switch(),
                    NodeKind::BaseStation => builder.add_base_station(),
                    _ => unreachable!("non-compute kinds"),
                };
                graph_ids.push(g);
            }
        }
        for (i, l) in self.links.iter().enumerate() {
            let (Some(&ga), Some(&gb)) = (graph_ids.get(l.a as usize), graph_ids.get(l.b as usize))
            else {
                return Err(SpecError::DanglingLink(i));
            };
            builder.link_graph(ga, gb, l.delay);
        }
        let cloud = builder.build().map_err(SpecError::Network)?;
        let mut ib = InstanceBuilder::new(cloud, self.max_replicas);
        for d in &self.datasets {
            ib.add_dataset(d.size_gb, d.origin);
        }
        for q in &self.queries {
            ib.add_query(q.home, q.demands.clone(), q.compute_rate, q.deadline);
        }
        ib.build().map_err(SpecError::Instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Demand;

    fn sample_instance() -> Instance {
        let mut b = EdgeCloudBuilder::new();
        let dc = b.add_data_center(100.0, 0.001);
        let cl1 = b.add_cloudlet(8.0, 0.01);
        let cl2 = b.add_cloudlet(12.0, 0.02);
        b.set_available(cl2, 9.0);
        let sw = b.add_switch();
        let bs = b.add_base_station();
        b.link(dc, cl1, 0.3);
        b.link_graph(b.graph_node(cl1), sw, 0.02);
        b.link_graph(b.graph_node(cl2), sw, 0.03);
        b.link_graph(bs, b.graph_node(cl1), 0.001);
        let cloud = b.build().unwrap();
        let mut ib = InstanceBuilder::new(cloud, 2);
        let d0 = ib.add_dataset(4.0, dc);
        let d1 = ib.add_dataset(2.0, cl1);
        ib.add_query(cl1, vec![Demand::new(d0, 0.5)], 1.0, 0.5);
        ib.add_query(
            cl2,
            vec![Demand::new(d0, 1.0), Demand::new(d1, 0.3)],
            0.9,
            0.8,
        );
        ib.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let inst = sample_instance();
        let spec = InstanceSpec::from_instance(&inst);
        let back = spec.to_instance().unwrap();
        assert_eq!(back.datasets(), inst.datasets());
        assert_eq!(back.queries(), inst.queries());
        assert_eq!(back.max_replicas(), inst.max_replicas());
        assert_eq!(back.cloud().graph(), inst.cloud().graph());
        assert_eq!(back.cloud().compute_nodes(), inst.cloud().compute_nodes());
        // Delay lookups survive (the matrix is recomputed, not copied).
        for u in inst.cloud().compute_ids() {
            for v in inst.cloud().compute_ids() {
                assert_eq!(back.cloud().min_delay(u, v), inst.cloud().min_delay(u, v));
            }
        }
    }

    #[test]
    fn json_round_trip() {
        if std::env::var_os("EDGEREP_STUB_HARNESS").is_some() {
            return; // the registry-free harness stubs serde_json
        }
        let inst = sample_instance();
        let spec = InstanceSpec::from_instance(&inst);
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let parsed: InstanceSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, spec);
        let back = parsed.to_instance().unwrap();
        assert_eq!(back.queries(), inst.queries());
    }

    #[test]
    fn routing_nodes_serialize_without_compute_fields() {
        if std::env::var_os("EDGEREP_STUB_HARNESS").is_some() {
            return; // the registry-free harness stubs serde_json
        }
        let inst = sample_instance();
        let spec = InstanceSpec::from_instance(&inst);
        let json = serde_json::to_string(&spec).unwrap();
        // Exactly three compute nodes carry "capacity".
        assert_eq!(json.matches("\"capacity\"").count(), 3);
    }

    #[test]
    fn compute_node_without_capacity_rejected() {
        let mut spec = InstanceSpec::from_instance(&sample_instance());
        spec.nodes[0].capacity = None;
        assert_eq!(
            spec.to_instance().unwrap_err(),
            SpecError::NodeAttributeMismatch(0)
        );
    }

    #[test]
    fn switch_with_capacity_rejected() {
        let mut spec = InstanceSpec::from_instance(&sample_instance());
        // Node 3 is the switch in sample order (dc, cl1, cl2, sw, bs).
        spec.nodes[3].capacity = Some(5.0);
        assert_eq!(
            spec.to_instance().unwrap_err(),
            SpecError::NodeAttributeMismatch(3)
        );
    }

    #[test]
    fn dangling_link_rejected() {
        let mut spec = InstanceSpec::from_instance(&sample_instance());
        spec.links.push(LinkSpec {
            a: 0,
            b: 99,
            delay: 0.1,
        });
        let idx = spec.links.len() - 1;
        assert_eq!(
            spec.to_instance().unwrap_err(),
            SpecError::DanglingLink(idx)
        );
    }

    #[test]
    fn invalid_payload_surfaces_instance_error() {
        let mut spec = InstanceSpec::from_instance(&sample_instance());
        spec.max_replicas = 0;
        assert!(matches!(
            spec.to_instance().unwrap_err(),
            SpecError::Instance(InstanceError::ZeroReplicaBudget)
        ));
    }

    #[test]
    fn error_messages_render() {
        let e = SpecError::DanglingLink(4);
        assert!(e.to_string().contains("link 4"));
        let e = SpecError::Network(NetworkError::NoComputeNodes);
        assert!(e.to_string().contains("network"));
    }
}
