#![warn(missing_docs)]

//! Zero-dependency observability for the `edgerep` workspace.
//!
//! Three layers, cheapest first:
//!
//! 1. **Metric registry** ([`registry`]) — process-wide named
//!    [`Counter`]s, [`Gauge`]s, and log2-bucketed [`Histogram`]s. Handles
//!    are `Arc`-backed and updates are relaxed atomics, so recording is
//!    wait-free; only the *first* lookup of a name takes a lock.
//! 2. **Span timers** ([`span`]) — RAII scopes that record wall time into
//!    a histogram named after the span and emit a `span.close` trace
//!    event. When the span's target is disabled, [`span()`] returns an
//!    inert guard after a single relaxed atomic load.
//! 3. **Trace events** ([`trace`]) — structured NDJSON records
//!    (`{"ts_us":..,"target":..,"span":..,"event":..,"fields":{..}}`)
//!    written to a caller-installed sink ([`set_trace_writer`]).
//! 4. **Span-tree profiler** ([`profile`], opt-in via
//!    [`enable_profiling`]) — threads parent/child context through the
//!    same RAII spans into a call tree with cumulative vs. self wall
//!    time, renderable as a self-time table or folded stacks
//!    ([`report`]). The `edgerep solve --profile` / `repro --profile`
//!    flags drive it.
//!
//! # Enabling
//!
//! Everything is **off by default**: spans do not read the clock and
//! events are dropped after one relaxed atomic load. Enable via the
//! `EDGEREP_OBS` environment variable or programmatically:
//!
//! ```text
//! EDGEREP_OBS=all                    # every target, debug verbosity
//! EDGEREP_OBS=admission,appro=debug  # admission at info, appro at debug
//! ```
//!
//! The filter grammar is a comma-separated list of `target[=level]`
//! entries where `level` is `info` (default) or `debug`; the pseudo-target
//! `all` (or `*`) matches everything. [`enable_all`] / [`disable`]
//! override the environment (the `edgerep solve --trace/--stats` flags use
//! them).
//!
//! Registry *counters* are deliberately not gated: solver hot paths tally
//! locally in plain integers and flush once per run, so the registry cost
//! is a handful of atomic adds per solve regardless of the filter.
//!
//! # Example
//!
//! ```
//! use edgerep_obs as obs;
//!
//! obs::enable_all();
//! let sink = obs::MemWriter::default();
//! obs::set_trace_writer(Box::new(sink.clone()));
//!
//! {
//!     let _span = obs::span("demo", "demo.phase");
//!     obs::counter("demo.widgets").add(3);
//!     obs::emit("demo", "demo.phase", "widget", &[("id", 7u64.into())]);
//! } // span drop records `span.demo.phase_us` and a `span.close` event
//!
//! obs::take_trace_writer();
//! assert!(sink.contents().lines().all(|l| l.starts_with('{')));
//! assert_eq!(obs::counter("demo.widgets").get(), 3);
//! obs::disable();
//! ```

pub mod profile;
pub mod registry;
pub mod report;
pub mod span;
pub mod trace;

pub use profile::{
    disable_profiling, enable_profiling, profiling_enabled, record_span, reset_profile,
    take_profile, Profile, ProfileNode,
};
pub use registry::{
    counter, gauge, histogram, render_summary, reset_registry, snapshot, Counter, Gauge, Histogram,
    HistogramSnapshot, Snapshot,
};
pub use report::{render_folded, render_self_table};
pub use span::{span, SpanTimer};
pub use trace::{
    dump_registry, emit, emit_debug, set_trace_writer, take_trace_writer, MemWriter, Value,
};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::RwLock;

/// Verbosity of a trace event or filter entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Coarse events: phase boundaries, per-run summaries.
    Info,
    /// Fine-grained events: per-query, per-seed, per-sim-event records.
    Debug,
}

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ALL: u8 = 2;
const STATE_FILTERED: u8 = 3;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
static FILTER: RwLock<Option<Filter>> = RwLock::new(None);

/// A parsed `EDGEREP_OBS` filter: `target[=level]` entries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Filter {
    entries: Vec<(String, Level)>,
}

impl Filter {
    fn parse(spec: &str) -> Filter {
        let entries = spec
            .split(',')
            .map(str::trim)
            .filter(|e| !e.is_empty())
            .map(|entry| {
                let (target, level) = match entry.split_once('=') {
                    Some((t, l)) => (t.trim(), l.trim()),
                    None => (entry, "info"),
                };
                let level = if level.eq_ignore_ascii_case("debug") {
                    Level::Debug
                } else {
                    Level::Info
                };
                (target.to_owned(), level)
            })
            .collect();
        Filter { entries }
    }

    fn allows(&self, target: &str, level: Level) -> bool {
        self.entries
            .iter()
            .any(|(t, max)| (t == "all" || t == "*" || t == target) && level <= *max)
    }

    /// Whether the spec is a pure blanket enable (`all`, `*`, `1`), which
    /// short-circuits to the everything-at-debug fast state.
    fn is_blanket(&self) -> bool {
        !self.entries.is_empty()
            && self
                .entries
                .iter()
                .all(|(t, _)| t == "all" || t == "*" || t == "1")
    }
}

fn init_from_env() {
    let spec = std::env::var("EDGEREP_OBS").unwrap_or_default();
    if spec.trim().is_empty() {
        // Keep a possible concurrent `enable_all`/`set_filter` result.
        let _ = STATE.compare_exchange(STATE_UNINIT, STATE_OFF, Ordering::SeqCst, Ordering::SeqCst);
    } else {
        set_filter(&spec);
    }
}

/// Installs a filter from the `EDGEREP_OBS` grammar, replacing any previous
/// state. `"all"` (or `"*"` or `"1"`) enables every target.
pub fn set_filter(spec: &str) {
    let filter = Filter::parse(spec);
    if filter.entries.is_empty() {
        disable();
        return;
    }
    if filter.is_blanket() {
        *FILTER.write().expect("obs filter lock") = None;
        STATE.store(STATE_ALL, Ordering::SeqCst);
    } else {
        *FILTER.write().expect("obs filter lock") = Some(filter);
        STATE.store(STATE_FILTERED, Ordering::SeqCst);
    }
}

/// Enables every target at debug verbosity (what `--trace`/`--stats` use).
pub fn enable_all() {
    STATE.store(STATE_ALL, Ordering::SeqCst);
}

/// Disables all spans and trace events (counters keep working — they are
/// flushed unconditionally by the instrumented code).
pub fn disable() {
    STATE.store(STATE_OFF, Ordering::SeqCst);
}

/// Whether `target` is enabled at info verbosity. The disabled fast path
/// is a single relaxed atomic load.
#[inline]
pub fn enabled(target: &str) -> bool {
    enabled_at(target, Level::Info)
}

/// Whether `target` is enabled at `level`.
#[inline]
pub fn enabled_at(target: &str, level: Level) -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_OFF => false,
        STATE_ALL => true,
        STATE_FILTERED => FILTER
            .read()
            .expect("obs filter lock")
            .as_ref()
            .is_some_and(|f| f.allows(target, level)),
        _ => {
            init_from_env();
            enabled_at(target, level)
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard};

    /// Global-state tests must not interleave; every test that touches the
    /// enable state, the registry, or the trace sink holds this lock.
    static LOCK: Mutex<()> = Mutex::new(());

    pub fn lock() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_parses_targets_and_levels() {
        let f = Filter::parse("admission, appro=debug ,sim=info");
        assert_eq!(f.entries.len(), 3);
        assert!(f.allows("admission", Level::Info));
        assert!(!f.allows("admission", Level::Debug));
        assert!(f.allows("appro", Level::Debug));
        assert!(f.allows("sim", Level::Info));
        assert!(!f.allows("runner", Level::Info));
    }

    #[test]
    fn filter_wildcards_match_everything() {
        for spec in ["all", "*", "all=debug", "*=debug"] {
            let f = Filter::parse(spec);
            assert!(f.allows("anything", Level::Info), "{spec}");
            assert!(f.is_blanket(), "{spec}");
        }
        assert!(!Filter::parse("appro=debug").is_blanket());
        assert!(!Filter::parse("all,appro=debug").is_blanket());
    }

    #[test]
    fn empty_filter_allows_nothing() {
        let f = Filter::parse("  ,  ");
        assert!(f.entries.is_empty());
        assert!(!f.allows("x", Level::Info));
    }

    #[test]
    fn state_transitions() {
        let _g = test_support::lock();
        disable();
        assert!(!enabled("appro"));
        enable_all();
        assert!(enabled_at("appro", Level::Debug));
        set_filter("appro");
        assert!(enabled("appro"));
        assert!(!enabled_at("appro", Level::Debug));
        assert!(!enabled("sim"));
        set_filter("");
        assert!(!enabled("appro"));
        disable();
    }

    #[test]
    fn set_filter_all_short_circuits() {
        let _g = test_support::lock();
        set_filter("all");
        assert_eq!(STATE.load(Ordering::Relaxed), STATE_ALL);
        set_filter("1");
        assert_eq!(STATE.load(Ordering::Relaxed), STATE_ALL);
        disable();
    }
}
