//! Hierarchical span-tree profiler (`edgerep-prof`).
//!
//! When profiling is enabled ([`enable_profiling`]) every [`crate::span`]
//! guard threads parent/child context through a thread-local stack of
//! span paths: a span opened while `appro.run` is live on the same thread
//! becomes its child, keyed by the folded path `appro.run;appro.select`.
//! On close, the span's wall time is merged into a process-wide call
//! tree, per path:
//!
//! * **invocation count** and **cumulative** wall time (whole scope),
//! * **child** wall time (sum of directly nested spans), from which
//!   **self** time is derived (`cum − child`, saturating),
//! * a log2 [`Histogram`] of per-invocation durations for interpolated
//!   p50/p95 readouts (same quantile machinery as the registry).
//!
//! Spans on different threads never nest into each other: a span opened
//! on a worker thread roots its own subtree, which is what you want for
//! `par_map` fan-out (each `runner.task` stack stands alone).
//!
//! [`take_profile`] drains the tree into an immutable [`Profile`] that
//! the [`crate::report`] renderers turn into a sorted self-time table or
//! folded-stacks text for flamegraph tooling. The hot-path cost when
//! profiling is disabled is one relaxed atomic load per span open.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::registry::Histogram;

/// Separator between frames in a folded span path (`a;b;c`), matching
/// the folded-stacks convention of standard flamegraph tooling.
pub const PATH_SEPARATOR: char = ';';

static PROFILING: AtomicBool = AtomicBool::new(false);

/// Accumulated stats for one call-tree node, keyed by folded path.
#[derive(Debug, Default)]
struct NodeStats {
    count: u64,
    cum_us: u64,
    child_us: u64,
    hist: Histogram,
}

static NODES: Mutex<BTreeMap<String, NodeStats>> = Mutex::new(BTreeMap::new());

thread_local! {
    /// Stack of folded paths for the spans currently open on this thread.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Turns span-tree profiling on (the `--profile FILE` flags use this).
/// Spans read the clock while profiling even when their trace target is
/// disabled, so a profile never needs `--trace` to be meaningful.
pub fn enable_profiling() {
    PROFILING.store(true, Ordering::SeqCst);
}

/// Turns span-tree profiling off. Already-open spans still record their
/// close into the tree, keeping it well formed.
pub fn disable_profiling() {
    PROFILING.store(false, Ordering::SeqCst);
}

/// Whether profiling is currently enabled (one relaxed load).
#[inline]
pub fn profiling_enabled() -> bool {
    PROFILING.load(Ordering::Relaxed)
}

/// Opens a profiled frame named `name` under the innermost open frame of
/// this thread. Returns the frame's stack depth, which [`close_frame`]
/// uses to self-heal if an inner guard leaked. Called by [`crate::span`].
pub(crate) fn open_frame(name: &str) -> usize {
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => {
                let mut p = String::with_capacity(parent.len() + 1 + name.len());
                p.push_str(parent);
                p.push(PATH_SEPARATOR);
                p.push_str(name);
                p
            }
            None => name.to_owned(),
        };
        stack.push(path);
        stack.len() - 1
    })
}

/// Closes the frame opened at `depth`, folding `us` of wall time into the
/// call tree (and into the parent's child-time tally).
pub(crate) fn close_frame(depth: usize, us: u64) {
    let (path, parent) = match STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        if stack.len() <= depth {
            return None; // stack was reset under us; drop the sample
        }
        stack.truncate(depth + 1); // shed frames an inner leak left behind
        let path = stack.pop().expect("frame present at depth");
        let parent = stack.last().cloned();
        Some((path, parent))
    }) {
        Some(found) => found,
        None => return,
    };
    record_closed(&path, parent.as_deref(), us);
}

fn record_closed(path: &str, parent: Option<&str>, us: u64) {
    let mut nodes = NODES.lock().unwrap_or_else(|e| e.into_inner());
    let node = nodes.entry(path.to_owned()).or_default();
    node.count += 1;
    node.cum_us += us;
    node.hist.record(us);
    if let Some(parent) = parent {
        nodes.entry(parent.to_owned()).or_default().child_us += us;
    }
}

/// Folds one hand-built span occurrence into the tree: `frames` is the
/// stack root-first (e.g. `&["fig8", "sim.run", "appro.run"]`) and `us`
/// the span's cumulative wall time. Parents must be recorded separately
/// (they usually are: record each frame of the tree once). Used by tests
/// and harnesses that replay recorded trees.
pub fn record_span(frames: &[&str], us: u64) {
    if frames.is_empty() {
        return;
    }
    let path = frames.join(&PATH_SEPARATOR.to_string());
    let parent =
        (frames.len() > 1).then(|| frames[..frames.len() - 1].join(&PATH_SEPARATOR.to_string()));
    record_closed(&path, parent.as_deref(), us);
}

/// Discards all accumulated profile data (this thread's open-frame stack
/// included).
pub fn reset_profile() {
    NODES.lock().unwrap_or_else(|e| e.into_inner()).clear();
    STACK.with(|stack| stack.borrow_mut().clear());
}

/// One node of a drained call tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Folded path from the root frame, `;`-separated (`a;b;c`).
    pub path: String,
    /// Last frame of the path (the span's own name).
    pub name: String,
    /// Nesting depth (root frames are 0).
    pub depth: usize,
    /// Number of times this exact stack closed.
    pub count: u64,
    /// Total wall time spent in this stack, children included (µs).
    pub cum_us: u64,
    /// Wall time spent in this stack minus directly nested spans (µs).
    pub self_us: u64,
    /// Interpolated median per-invocation duration (µs).
    pub p50_us: u64,
    /// Interpolated 95th-percentile per-invocation duration (µs).
    pub p95_us: u64,
    /// Largest single invocation (µs).
    pub max_us: u64,
}

/// A drained span call tree, nodes sorted by folded path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    /// All nodes that closed at least once, in path order.
    pub nodes: Vec<ProfileNode>,
}

impl Profile {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the largest self time, if any.
    pub fn top_self(&self) -> Option<&ProfileNode> {
        self.nodes.iter().max_by_key(|n| n.self_us)
    }
}

/// Drains the accumulated call tree into a [`Profile`], leaving the tree
/// empty. Call after the profiled work joined all its worker threads.
pub fn take_profile() -> Profile {
    let drained = std::mem::take(&mut *NODES.lock().unwrap_or_else(|e| e.into_inner()));
    let nodes = drained
        .into_iter()
        .filter(|(_, stats)| stats.count > 0)
        .map(|(path, stats)| {
            let name = path
                .rsplit(PATH_SEPARATOR)
                .next()
                .unwrap_or(path.as_str())
                .to_owned();
            let depth = path.matches(PATH_SEPARATOR).count();
            ProfileNode {
                name,
                depth,
                count: stats.count,
                cum_us: stats.cum_us,
                self_us: stats.cum_us.saturating_sub(stats.child_us),
                p50_us: stats.hist.quantile(0.5),
                p95_us: stats.hist.quantile(0.95),
                max_us: stats.hist.max(),
                path,
            }
        })
        .collect();
    Profile { nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;

    fn node<'a>(p: &'a Profile, path: &str) -> &'a ProfileNode {
        p.nodes
            .iter()
            .find(|n| n.path == path)
            .unwrap_or_else(|| panic!("no node {path} in {:?}", p.nodes))
    }

    #[test]
    fn live_spans_nest_into_paths() {
        let _g = test_support::lock();
        reset_profile();
        enable_profiling();
        {
            let _outer = crate::span("test", "prof.outer");
            {
                let _inner = crate::span("test", "prof.inner");
            }
            {
                let _inner = crate::span("test", "prof.inner");
            }
        }
        disable_profiling();
        let p = take_profile();
        let outer = node(&p, "prof.outer");
        let inner = node(&p, "prof.outer;prof.inner");
        assert_eq!(outer.count, 1);
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.count, 2);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.name, "prof.inner");
        assert!(outer.cum_us >= inner.cum_us, "{outer:?} vs {inner:?}");
        assert_eq!(outer.self_us, outer.cum_us - inner.cum_us);
    }

    #[test]
    fn spans_on_other_threads_root_their_own_subtrees() {
        let _g = test_support::lock();
        reset_profile();
        enable_profiling();
        {
            let _outer = crate::span("test", "prof.main");
            std::thread::spawn(|| {
                let _w = crate::span("test", "prof.worker");
            })
            .join()
            .unwrap();
        }
        disable_profiling();
        let p = take_profile();
        assert_eq!(node(&p, "prof.worker").depth, 0);
        assert_eq!(node(&p, "prof.main").self_us, node(&p, "prof.main").cum_us);
    }

    #[test]
    fn hand_built_tree_aggregates_counts_and_self_time() {
        let _g = test_support::lock();
        reset_profile();
        record_span(&["a", "b"], 10);
        record_span(&["a", "b"], 30);
        record_span(&["a", "c"], 5);
        record_span(&["a"], 100);
        let p = take_profile();
        let a = node(&p, "a");
        assert_eq!(a.count, 1);
        assert_eq!(a.cum_us, 100);
        assert_eq!(a.self_us, 100 - 10 - 30 - 5);
        let b = node(&p, "a;b");
        assert_eq!(b.count, 2);
        assert_eq!(b.cum_us, 40);
        assert_eq!(b.self_us, 40); // leaf: self == cum
        assert_eq!(b.max_us, 30);
        assert!(b.p50_us >= 10 && b.p50_us <= 30, "{b:?}");
        assert_eq!(p.top_self(), Some(a));
    }

    #[test]
    fn take_profile_drains() {
        let _g = test_support::lock();
        reset_profile();
        record_span(&["x"], 1);
        assert!(!take_profile().is_empty());
        assert!(take_profile().is_empty());
    }

    /// Property test over randomly generated well-nested trees: every
    /// node's self time ≤ its cumulative time, and its children's
    /// cumulative sum ≤ its own cumulative. Trees are generated with a
    /// deterministic LCG so failures replay.
    #[test]
    fn self_and_child_time_invariants_hold() {
        let _g = test_support::lock();

        struct Lcg(u64);
        impl Lcg {
            fn next(&mut self, bound: u64) -> u64 {
                self.0 = self
                    .0
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (self.0 >> 33) % bound
            }
        }

        // Recursively "runs" a span: children first, then the node's own
        // cumulative = children total + its own self time.
        fn run_tree(rng: &mut Lcg, frames: &mut Vec<&'static str>, depth: usize) -> u64 {
            const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
            let mut child_total = 0u64;
            if depth < 3 {
                for _ in 0..rng.next(3) {
                    let name = NAMES[rng.next(NAMES.len() as u64) as usize];
                    frames.push(name);
                    child_total += run_tree(rng, frames, depth + 1);
                    frames.pop();
                }
            }
            let cum = child_total + rng.next(50);
            record_span(frames, cum);
            cum
        }

        for seed in 0..20u64 {
            reset_profile();
            let mut rng = Lcg(seed.wrapping_mul(0x9E3779B97F4A7C15).max(1));
            let mut frames = vec!["root"];
            run_tree(&mut rng, &mut frames, 0);
            let p = take_profile();
            for n in &p.nodes {
                assert!(n.self_us <= n.cum_us, "seed {seed}: {n:?}");
                assert!(
                    n.p50_us <= n.max_us && n.p95_us <= n.max_us,
                    "seed {seed}: {n:?}"
                );
                let child_sum: u64 = p
                    .nodes
                    .iter()
                    .filter(|c| {
                        c.depth == n.depth + 1
                            && c.path.starts_with(&n.path)
                            && c.path.as_bytes().get(n.path.len()) == Some(&(PATH_SEPARATOR as u8))
                    })
                    .map(|c| c.cum_us)
                    .sum();
                assert!(
                    child_sum <= n.cum_us,
                    "seed {seed}: children of {} sum to {child_sum} > {}",
                    n.path,
                    n.cum_us
                );
                assert_eq!(n.self_us, n.cum_us - child_sum, "seed {seed}: {n:?}");
            }
        }
        reset_profile();
    }
}
