//! Process-wide metric registry: counters, gauges, log2 histograms.
//!
//! Handles returned by [`counter`]/[`gauge`]/[`histogram`] are cheap
//! `Arc`-backed clones; recording through them is a relaxed atomic
//! operation with no lock. The registry lock (a `std::sync::RwLock`) is
//! only taken to resolve a name to a handle — hot code resolves once per
//! run (or tallies locally and flushes once), never per item.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits())))
    }
}

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (CAS loop; rare path).
    pub fn set_max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

const BUCKETS: usize = 64;

#[derive(Debug)]
struct HistogramInner {
    /// `buckets[i]` counts values whose bit length is `i`, i.e. bucket 0
    /// holds zeros and bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)`.
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log2-bucketed histogram of `u64` samples (the span layer records
/// microseconds; the simulator records simulated microseconds).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let bucket = (u64::BITS - v.leading_zeros()) as usize; // bit length
        self.0.buckets[bucket.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        let mut cur = self.0.max.load(Ordering::Relaxed);
        while v > cur {
            match self
                .0
                .max
                .compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records a wall-clock duration in microseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Estimated `q`-quantile (`q ∈ [0,1]`; 0 when empty). The log2
    /// bucket containing the quantile rank is located exactly; within the
    /// bucket the value is linearly interpolated under a
    /// uniformly-distributed-samples assumption (midpoint convention), so
    /// a singleton bucket reads back its midpoint instead of the upper
    /// bound's former ≤ 2× overestimate. The top rank returns the exact
    /// recorded maximum, and every estimate is clamped to it.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((n as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        if rank >= n {
            return self.max();
        }
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                if i == 0 {
                    return 0; // bucket 0 holds only zeros
                }
                if i >= BUCKETS - 1 {
                    // The clamped top bucket has no finite width to
                    // interpolate over.
                    return self.max();
                }
                let lo = 1u64 << (i - 1); // bucket spans [lo, 2·lo)
                let k = rank - seen; // 1-based rank within the bucket
                let offset = lo as f64 * (k as f64 - 0.5) / c as f64;
                return (lo + offset as u64).min(self.max());
            }
            seen += c;
        }
        self.max()
    }
}

#[derive(Default)]
struct Registry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::default)
}

fn resolve<T: Clone + Default>(map: &RwLock<BTreeMap<String, T>>, name: &str) -> T {
    if let Some(found) = map.read().expect("obs registry lock").get(name) {
        return found.clone();
    }
    map.write()
        .expect("obs registry lock")
        .entry(name.to_owned())
        .or_default()
        .clone()
}

/// Resolves (registering on first use) the counter named `name`.
pub fn counter(name: &str) -> Counter {
    resolve(&registry().counters, name)
}

/// Resolves (registering on first use) the gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    resolve(&registry().gauges, name)
}

/// Resolves (registering on first use) the histogram named `name`.
pub fn histogram(name: &str) -> Histogram {
    resolve(&registry().histograms, name)
}

/// Drops every registered metric (outstanding handles keep working but are
/// no longer visible in snapshots). Used between CLI panel runs and tests.
pub fn reset_registry() {
    let r = registry();
    r.counters.write().expect("obs registry lock").clear();
    r.gauges.write().expect("obs registry lock").clear();
    r.histograms.write().expect("obs registry lock").clear();
}

/// Point-in-time reading of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: String,
    /// Sample count.
    pub count: u64,
    /// Sum of all samples (lets [`Snapshot::delta`] derive interval means).
    pub sum: u64,
    /// Mean sample.
    pub mean: f64,
    /// Median (interpolated within the containing log2 bucket).
    pub p50: u64,
    /// 95th percentile (interpolated within the containing log2 bucket).
    pub p95: u64,
    /// Largest sample.
    pub max: u64,
}

/// Point-in-time reading of the whole registry, sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// All counters.
    pub counters: Vec<(String, u64)>,
    /// All gauges.
    pub gauges: Vec<(String, f64)>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Takes a consistent-enough snapshot (each metric is read atomically;
/// metrics are not frozen relative to each other).
pub fn snapshot() -> Snapshot {
    let r = registry();
    let counters = r
        .counters
        .read()
        .expect("obs registry lock")
        .iter()
        .map(|(n, c)| (n.clone(), c.get()))
        .collect();
    let gauges = r
        .gauges
        .read()
        .expect("obs registry lock")
        .iter()
        .map(|(n, g)| (n.clone(), g.get()))
        .collect();
    let histograms = r
        .histograms
        .read()
        .expect("obs registry lock")
        .iter()
        .map(|(n, h)| HistogramSnapshot {
            name: n.clone(),
            count: h.count(),
            sum: h.sum(),
            mean: h.mean(),
            p50: h.quantile(0.5),
            p95: h.quantile(0.95),
            max: h.max(),
        })
        .collect();
    Snapshot {
        counters,
        gauges,
        histograms,
    }
}

impl Snapshot {
    /// The change since `baseline`: counters and histogram counts/sums are
    /// subtracted (saturating), gauges report their difference, and
    /// entries that did not move are dropped. Histogram distribution
    /// stats (p50/p95/max) cannot be un-merged from two snapshots, so
    /// they carry the *later* snapshot's values; the delta `mean` is the
    /// true interval mean (`Δsum / Δcount`).
    ///
    /// Because snapshots are plain values, two calls to [`snapshot`]
    /// around a measured region diff cleanly even while other threads
    /// keep writing. The delta of a delta with itself is empty — see the
    /// `delta_of_delta_is_zero` test.
    pub fn delta(&self, baseline: &Snapshot) -> Snapshot {
        let base_counter: BTreeMap<&str, u64> = baseline
            .counters
            .iter()
            .map(|(n, v)| (n.as_str(), *v))
            .collect();
        let counters = self
            .counters
            .iter()
            .filter_map(|(n, v)| {
                let d = v.saturating_sub(base_counter.get(n.as_str()).copied().unwrap_or(0));
                (d != 0).then(|| (n.clone(), d))
            })
            .collect();
        let base_gauge: BTreeMap<&str, f64> = baseline
            .gauges
            .iter()
            .map(|(n, v)| (n.as_str(), *v))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .filter_map(|(n, v)| {
                let d = v - base_gauge.get(n.as_str()).copied().unwrap_or(0.0);
                (d != 0.0).then(|| (n.clone(), d))
            })
            .collect();
        let base_hist: BTreeMap<&str, &HistogramSnapshot> = baseline
            .histograms
            .iter()
            .map(|h| (h.name.as_str(), h))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|h| {
                let (bcount, bsum) = base_hist
                    .get(h.name.as_str())
                    .map_or((0, 0), |b| (b.count, b.sum));
                let count = h.count.saturating_sub(bcount);
                if count == 0 {
                    return None;
                }
                let sum = h.sum.saturating_sub(bsum);
                Some(HistogramSnapshot {
                    name: h.name.clone(),
                    count,
                    sum,
                    mean: sum as f64 / count as f64,
                    p50: h.p50,
                    p95: h.p95,
                    max: h.max,
                })
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Renders the registry as the human table printed by
/// `edgerep solve --stats`.
pub fn render_summary() -> String {
    let snap = snapshot();
    let mut out = String::new();
    if snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty() {
        out.push_str("(no metrics recorded)\n");
        return out;
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "counters");
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "  {name:<44} {v:>12}");
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "gauges");
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "  {name:<44} {v:>12.3}");
        }
    }
    let (spans, plain): (Vec<_>, Vec<_>) = snap
        .histograms
        .iter()
        .partition(|h| h.name.starts_with("span.") && h.name.ends_with("_us"));
    if !spans.is_empty() {
        let _ = writeln!(
            out,
            "spans{:<41} {:>8} {:>12} {:>10} {:>10} {:>10}",
            "", "count", "mean_us", "p50_us", "p95_us", "max_us"
        );
        for h in &spans {
            let _ = writeln!(
                out,
                "  {:<44} {:>8} {:>12.1} {:>10} {:>10} {:>10}",
                h.name, h.count, h.mean, h.p50, h.p95, h.max
            );
        }
    }
    if !plain.is_empty() {
        let _ = writeln!(
            out,
            "histograms{:<36} {:>8} {:>12} {:>10} {:>10} {:>10}",
            "", "count", "mean", "p50", "p95", "max"
        );
        for h in &plain {
            let _ = writeln!(
                out,
                "  {:<44} {:>8} {:>12.1} {:>10} {:>10} {:>10}",
                h.name, h.count, h.mean, h.p50, h.p95, h.max
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;

    #[test]
    fn counters_accumulate_and_share_by_name() {
        let _g = test_support::lock();
        reset_registry();
        let a = counter("test.reg.counter");
        let b = counter("test.reg.counter");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        reset_registry();
    }

    #[test]
    fn gauges_set_and_max() {
        let _g = test_support::lock();
        reset_registry();
        let g = gauge("test.reg.gauge");
        g.set(2.5);
        g.set_max(1.0);
        assert_eq!(g.get(), 2.5);
        g.set_max(7.25);
        assert_eq!(g.get(), 7.25);
        reset_registry();
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1105);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 1105.0 / 6.0).abs() < 1e-9);
        // Median of {0,1,1,3,100,1000}: rank 3 is a 1 -> bucket [1,2),
        // interpolated within the bucket and floored back to 1.
        assert_eq!(h.quantile(0.5), 1);
        // The top rank returns the exact recorded max, not the 1023 upper
        // bound of 1000's [512, 1024) bucket.
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn quantile_interpolates_within_wide_buckets() {
        // 64 uniform samples 64..128 all land in one log2 bucket; the old
        // bucket-upper-bound readout reported 127 for every quantile in
        // it (up to 2x the true p50 of ~95.5). Interpolation recovers the
        // in-bucket position to within one sample.
        let h = Histogram::default();
        for v in 64u64..128 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        assert!((95..=96).contains(&p50), "p50 = {p50}, want ~95.5");
        let p95 = h.quantile(0.95);
        assert!((124..=126).contains(&p95), "p95 = {p95}, want ~124.5");
        assert_eq!(h.quantile(1.0), 127);
    }

    #[test]
    fn quantile_estimate_never_exceeds_recorded_max() {
        // A singleton bucket interpolates to its midpoint, clamped to the
        // actual max when the midpoint would overshoot it.
        let h = Histogram::default();
        for _ in 0..4 {
            h.record(520); // bucket [512, 1024), midpoints < 1024
        }
        for q in [0.25, 0.5, 0.75, 0.95, 1.0] {
            assert!(h.quantile(q) <= 520, "q={q} -> {}", h.quantile(q));
            assert!(h.quantile(q) >= 512, "q={q} -> {}", h.quantile(q));
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn huge_samples_clamp_to_last_bucket() {
        let h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.quantile(0.5), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn snapshot_and_summary_render() {
        let _g = test_support::lock();
        reset_registry();
        counter("test.snap.c").add(3);
        gauge("test.snap.g").set(1.5);
        histogram("test.snap.h").record(7);
        let snap = snapshot();
        assert_eq!(snap.counters, vec![("test.snap.c".into(), 3)]);
        assert_eq!(snap.gauges, vec![("test.snap.g".into(), 1.5)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].count, 1);
        let table = render_summary();
        assert!(table.contains("counters"));
        assert!(table.contains("test.snap.c"));
        assert!(table.contains("histograms"));
        reset_registry();
        assert!(render_summary().contains("no metrics recorded"));
    }

    #[test]
    fn summary_splits_span_histograms_into_their_own_section() {
        let _g = test_support::lock();
        reset_registry();
        histogram("span.test.solve_us").record(12);
        histogram("test.plain.h").record(3);
        let table = render_summary();
        let spans_at = table.find("spans").expect("spans section");
        let hist_at = table.find("histograms").expect("histograms section");
        assert!(spans_at < hist_at, "{table}");
        assert!(table.contains("p50_us"), "{table}");
        assert!(table.contains("p95_us"), "{table}");
        assert!(table.contains("span.test.solve_us"), "{table}");
        // The span histogram is not repeated in the plain section.
        assert_eq!(table.matches("span.test.solve_us").count(), 1, "{table}");
        reset_registry();
    }

    #[test]
    fn snapshot_delta_subtracts_and_drops_unchanged() {
        let _g = test_support::lock();
        reset_registry();
        counter("test.delta.c").add(5);
        counter("test.delta.still").add(2);
        gauge("test.delta.g").set(1.0);
        histogram("test.delta.h").record(10);
        let before = snapshot();
        counter("test.delta.c").add(3);
        gauge("test.delta.g").set(4.0);
        histogram("test.delta.h").record(30);
        histogram("test.delta.new").record(7);
        let after = snapshot();
        let d = after.delta(&before);
        assert_eq!(d.counters, vec![("test.delta.c".into(), 3)]);
        assert_eq!(d.gauges, vec![("test.delta.g".into(), 3.0)]);
        assert_eq!(d.histograms.len(), 2);
        let dh = &d.histograms[0];
        assert_eq!(dh.name, "test.delta.h");
        assert_eq!(dh.count, 1);
        assert_eq!(dh.sum, 30);
        assert_eq!(dh.mean, 30.0);
        let dn = &d.histograms[1];
        assert_eq!(
            (dn.name.as_str(), dn.count, dn.sum),
            ("test.delta.new", 1, 7)
        );
        reset_registry();
    }

    #[test]
    fn delta_of_delta_is_zero() {
        let _g = test_support::lock();
        reset_registry();
        counter("test.dd.c").add(9);
        gauge("test.dd.g").set(2.5);
        histogram("test.dd.h").record(4);
        let before = Snapshot::default();
        let d = snapshot().delta(&before);
        assert!(!d.counters.is_empty() && !d.gauges.is_empty() && !d.histograms.is_empty());
        assert_eq!(d.delta(&d), Snapshot::default());
        reset_registry();
    }

    #[test]
    fn registry_is_thread_safe() {
        let _g = test_support::lock();
        reset_registry();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1000 {
                        counter("test.mt.counter").inc();
                        histogram("test.mt.hist").record(42);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter("test.mt.counter").get(), 8000);
        assert_eq!(histogram("test.mt.hist").count(), 8000);
        reset_registry();
    }
}
