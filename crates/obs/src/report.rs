//! Renderers for drained [`Profile`] call trees.
//!
//! Two export formats:
//!
//! * [`render_self_table`] — a human-facing table sorted by self time
//!   (descending), one row per distinct stack, with cumulative time,
//!   invocation counts, and interpolated p50/p95 per invocation.
//! * [`render_folded`] — folded-stacks text (`a;b;c <self_us>` per
//!   line), the interchange format consumed by standard flamegraph
//!   tooling (`flamegraph.pl`, `inferno-flamegraph`, speedscope).

use std::fmt::Write as _;

use crate::profile::{Profile, ProfileNode};

/// Renders the call tree as folded stacks: one `path self_us` line per
/// node, in path order. Feed the output straight into flamegraph
/// tooling.
pub fn render_folded(profile: &Profile) -> String {
    let mut out = String::new();
    for n in &profile.nodes {
        let _ = writeln!(out, "{} {}", n.path, n.self_us);
    }
    out
}

/// Renders the call tree as a table sorted by self time, descending
/// (ties broken by path so the output is deterministic).
pub fn render_self_table(profile: &Profile) -> String {
    let mut out = String::new();
    if profile.is_empty() {
        out.push_str("(no spans profiled)\n");
        return out;
    }
    let mut nodes: Vec<&ProfileNode> = profile.nodes.iter().collect();
    nodes.sort_by(|a, b| b.self_us.cmp(&a.self_us).then_with(|| a.path.cmp(&b.path)));
    let total_self: u64 = nodes.iter().map(|n| n.self_us).sum::<u64>().max(1);
    let _ = writeln!(
        out,
        "{:>10} {:>6} {:>10} {:>8} {:>8} {:>8}  span",
        "self_us", "self%", "cum_us", "count", "p50_us", "p95_us"
    );
    for n in nodes {
        let pct = 100.0 * n.self_us as f64 / total_self as f64;
        let _ = writeln!(
            out,
            "{:>10} {:>5.1}% {:>10} {:>8} {:>8} {:>8}  {}{}",
            n.self_us,
            pct,
            n.cum_us,
            n.count,
            n.p50_us,
            n.p95_us,
            "  ".repeat(n.depth),
            n.name
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{record_span, reset_profile, take_profile};
    use crate::test_support;

    /// Golden test: a hand-built span tree renders to exactly this folded
    /// text (path order, self times after child subtraction).
    #[test]
    fn folded_stacks_golden() {
        let _g = test_support::lock();
        reset_profile();
        record_span(&["fig8", "sim.run", "appro.run"], 70);
        record_span(&["fig8", "sim.run", "appro.run"], 30);
        record_span(&["fig8", "sim.run", "sim.loop"], 40);
        record_span(&["fig8", "sim.run"], 200);
        record_span(&["fig8"], 250);
        let p = take_profile();
        let folded = render_folded(&p);
        let expected = "\
fig8 50
fig8;sim.run 60
fig8;sim.run;appro.run 100
fig8;sim.run;sim.loop 40
";
        assert_eq!(folded, expected);
    }

    #[test]
    fn self_table_sorts_by_self_time_and_reports_percent() {
        let _g = test_support::lock();
        reset_profile();
        record_span(&["outer", "hot"], 75);
        record_span(&["outer"], 100);
        let p = take_profile();
        let table = render_self_table(&p);
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].contains("self_us"), "{table}");
        assert!(lines[0].contains("p95_us"), "{table}");
        // hot (self 75) outranks outer (self 25).
        assert!(lines[1].trim_start().starts_with("75"), "{table}");
        assert!(lines[1].contains("hot"), "{table}");
        assert!(lines[2].trim_start().starts_with("25"), "{table}");
        assert!(lines[2].contains("outer"), "{table}");
        assert!(lines[1].contains("75.0%"), "{table}");
    }

    #[test]
    fn empty_profile_renders_placeholder() {
        let _g = test_support::lock();
        reset_profile();
        let p = take_profile();
        assert_eq!(render_folded(&p), "");
        assert!(render_self_table(&p).contains("no spans profiled"));
    }
}
