//! RAII span timers.
//!
//! [`span`] returns a guard that, on drop, records the scope's wall time
//! into the histogram `span.<name>_us` and emits a `span.close` trace
//! event. When the span's target is disabled the guard is inert: no clock
//! read, no allocation — the cost is the single relaxed atomic load inside
//! [`crate::enabled`].

use std::time::Instant;

use crate::registry::histogram;
use crate::trace::{emit, Value};

/// Guard returned by [`span`]; records on drop.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; bind it to a named variable"]
pub struct SpanTimer {
    target: &'static str,
    name: &'static str,
    start: Option<Instant>,
    /// Stack depth of the profiler frame this span opened, when
    /// [`crate::profile`] was enabled at open time.
    frame: Option<usize>,
}

impl SpanTimer {
    /// Elapsed time so far, or `None` when the span is disabled.
    pub fn elapsed_us(&self) -> Option<u64> {
        self.start
            .map(|s| s.elapsed().as_micros().min(u64::MAX as u128) as u64)
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let us = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        if let Some(depth) = self.frame.take() {
            crate::profile::close_frame(depth, us);
        }
        if crate::enabled(self.target) {
            histogram(&format!("span.{}_us", self.name)).record(us);
            emit(
                self.target,
                self.name,
                "span.close",
                &[("duration_us", Value::U64(us))],
            );
        }
    }
}

/// Opens a timed span under `target` named `name` (e.g.
/// `span("appro", "appro.run")`). Disabled targets get an inert guard —
/// unless span-tree profiling is on ([`crate::profile`]), which times
/// every span so the call tree stays complete regardless of the trace
/// filter.
#[inline]
pub fn span(target: &'static str, name: &'static str) -> SpanTimer {
    let profiling = crate::profile::profiling_enabled();
    let start = (profiling || crate::enabled(target)).then(Instant::now);
    let frame = profiling.then(|| crate::profile::open_frame(name));
    SpanTimer {
        target,
        name,
        start,
        frame,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{histogram, reset_registry};
    use crate::test_support;
    use crate::trace::{set_trace_writer, take_trace_writer, MemWriter};

    #[test]
    fn disabled_span_is_inert() {
        let _g = test_support::lock();
        crate::disable();
        reset_registry();
        {
            let s = span("test", "test.disabled");
            assert_eq!(s.elapsed_us(), None);
        }
        assert_eq!(histogram("span.test.disabled_us").count(), 0);
        reset_registry();
    }

    #[test]
    fn enabled_span_records_histogram_and_event() {
        let _g = test_support::lock();
        crate::enable_all();
        reset_registry();
        let sink = MemWriter::default();
        set_trace_writer(Box::new(sink.clone()));
        {
            let s = span("test", "test.enabled");
            assert!(s.elapsed_us().is_some());
        }
        take_trace_writer();
        assert_eq!(histogram("span.test.enabled_us").count(), 1);
        let out = sink.contents();
        assert!(out.contains("\"event\":\"span.close\""), "{out}");
        assert!(out.contains("\"span\":\"test.enabled\""), "{out}");
        assert!(out.contains("\"duration_us\":"), "{out}");
        reset_registry();
        crate::disable();
    }
}
