//! Structured NDJSON trace events.
//!
//! Each call to [`emit`] writes one line to the installed sink:
//!
//! ```text
//! {"ts_us":123,"target":"admission","span":"appro.run","event":"reject","fields":{"reason":"deadline"}}
//! ```
//!
//! `ts_us` is microseconds since the first event of the process. Events
//! are dropped unless (a) a sink is installed ([`set_trace_writer`]) and
//! (b) the event's target passes the `EDGEREP_OBS` filter — both checks
//! are a single relaxed atomic load on the disabled path.
//!
//! The JSON writer is hand-rolled (this crate is intentionally
//! dependency-free); it escapes strings per RFC 8259 and renders
//! non-finite floats as `null`.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::Level;

/// A field value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values serialize as `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (escaped on write).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

fn write_json_str(out: &mut Vec<u8>, s: &str) {
    out.push(b'"');
    for c in s.chars() {
        match c {
            '"' => out.extend_from_slice(b"\\\""),
            '\\' => out.extend_from_slice(b"\\\\"),
            '\n' => out.extend_from_slice(b"\\n"),
            '\r' => out.extend_from_slice(b"\\r"),
            '\t' => out.extend_from_slice(b"\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => {
                let mut buf = [0u8; 4];
                out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            }
        }
    }
    out.push(b'"');
}

fn write_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) if f.is_finite() => {
            let _ = write!(out, "{f}");
        }
        Value::F64(_) => out.extend_from_slice(b"null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => write_json_str(out, s),
    }
}

static SINK_ACTIVE: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Installs the NDJSON sink, replacing (and flushing) any previous one.
pub fn set_trace_writer(w: Box<dyn Write + Send>) {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(mut old) = sink.replace(w) {
        let _ = old.flush();
    }
    SINK_ACTIVE.store(true, Ordering::SeqCst);
}

/// Removes and returns the sink, flushing it first. Events emitted after
/// this are dropped.
pub fn take_trace_writer() -> Option<Box<dyn Write + Send>> {
    SINK_ACTIVE.store(false, Ordering::SeqCst);
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    let mut w = sink.take();
    if let Some(w) = w.as_mut() {
        let _ = w.flush();
    }
    w
}

fn emit_at(target: &str, span: &str, event: &str, fields: &[(&str, Value)], level: Level) {
    if !SINK_ACTIVE.load(Ordering::Relaxed) || !crate::enabled_at(target, level) {
        return;
    }
    let ts_us = EPOCH
        .get_or_init(Instant::now)
        .elapsed()
        .as_micros()
        .min(u64::MAX as u128) as u64;
    let mut line = Vec::with_capacity(96);
    let _ = write!(line, "{{\"ts_us\":{ts_us},\"target\":");
    write_json_str(&mut line, target);
    line.extend_from_slice(b",\"span\":");
    write_json_str(&mut line, span);
    line.extend_from_slice(b",\"event\":");
    write_json_str(&mut line, event);
    line.extend_from_slice(b",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(b',');
        }
        write_json_str(&mut line, k);
        line.push(b':');
        write_value(&mut line, v);
    }
    line.extend_from_slice(b"}}\n");
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(w) = sink.as_mut() {
        let _ = w.write_all(&line);
    }
}

/// Emits an info-level event under `target`, attributed to `span`.
pub fn emit(target: &str, span: &str, event: &str, fields: &[(&str, Value)]) {
    emit_at(target, span, event, fields, Level::Info);
}

/// Emits a debug-level event (dropped unless the filter grants
/// `target=debug` or everything is enabled).
pub fn emit_debug(target: &str, span: &str, event: &str, fields: &[(&str, Value)]) {
    emit_at(target, span, event, fields, Level::Debug);
}

/// Writes every registry metric into the NDJSON trace under the
/// `registry` target, each event tagged `{scope_key: scope}` (e.g.
/// `algorithm: "Appro-G"` for per-algorithm CLI dumps, `figure: "fig8"`
/// for per-figure `repro` dumps), and closes with a single `dump.done`
/// summary line carrying the metric counts — so a trace file's final line
/// marks a completed dump. Per-run counter values (e.g.
/// `admission.reject.*`) and span-timing histograms thereby appear in the
/// file even when no individual event carried them.
pub fn dump_registry(scope_key: &str, scope: &str) {
    let snap = crate::registry::snapshot();
    for (name, v) in &snap.counters {
        emit(
            "registry",
            "registry",
            "counter",
            &[
                (scope_key, scope.into()),
                ("name", name.as_str().into()),
                ("value", (*v).into()),
            ],
        );
    }
    for (name, v) in &snap.gauges {
        emit(
            "registry",
            "registry",
            "gauge",
            &[
                (scope_key, scope.into()),
                ("name", name.as_str().into()),
                ("value", (*v).into()),
            ],
        );
    }
    for h in &snap.histograms {
        emit(
            "registry",
            "registry",
            "histogram",
            &[
                (scope_key, scope.into()),
                ("name", h.name.as_str().into()),
                ("count", h.count.into()),
                ("mean", h.mean.into()),
                ("p50", h.p50.into()),
                ("p95", h.p95.into()),
                ("max", h.max.into()),
            ],
        );
    }
    emit(
        "registry",
        "registry",
        "dump.done",
        &[
            (scope_key, scope.into()),
            ("counters", snap.counters.len().into()),
            ("gauges", snap.gauges.len().into()),
            ("histograms", snap.histograms.len().into()),
        ],
    );
}

/// In-memory sink for tests: clone it, install one clone with
/// [`set_trace_writer`], read back via [`MemWriter::contents`].
#[derive(Debug, Clone, Default)]
pub struct MemWriter(Arc<Mutex<Vec<u8>>>);

impl MemWriter {
    /// Everything written so far, lossily decoded as UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().unwrap_or_else(|e| e.into_inner())).into_owned()
    }
}

impl Write for MemWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support;

    fn render(fields: &[(&str, Value)]) -> String {
        let mut out = Vec::new();
        out.push(b'{');
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                out.push(b',');
            }
            write_json_str(&mut out, k);
            out.push(b':');
            write_value(&mut out, v);
        }
        out.push(b'}');
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn values_render_as_json() {
        let got = render(&[
            ("u", 3u64.into()),
            ("i", Value::I64(-4)),
            ("f", 1.5f64.into()),
            ("nan", Value::F64(f64::NAN)),
            ("b", true.into()),
            ("s", "a\"b\\c\nd".into()),
        ]);
        assert_eq!(
            got,
            r#"{"u":3,"i":-4,"f":1.5,"nan":null,"b":true,"s":"a\"b\\c\nd"}"#
        );
    }

    #[test]
    fn control_chars_are_escaped() {
        let mut out = Vec::new();
        write_json_str(&mut out, "a\u{1}b");
        assert_eq!(String::from_utf8(out).unwrap(), "\"a\\u0001b\"");
    }

    #[test]
    fn emit_writes_ndjson_lines() {
        let _g = test_support::lock();
        crate::enable_all();
        let sink = MemWriter::default();
        set_trace_writer(Box::new(sink.clone()));
        emit("test", "test.span", "hello", &[("n", 1u64.into())]);
        emit_debug("test", "test.span", "fine", &[]);
        take_trace_writer();
        let out = sink.contents();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(lines[0].starts_with("{\"ts_us\":"), "{out}");
        assert!(lines[0].contains("\"event\":\"hello\""), "{out}");
        assert!(lines[0].contains("\"fields\":{\"n\":1}"), "{out}");
        assert!(lines[1].contains("\"event\":\"fine\""), "{out}");
        crate::disable();
    }

    #[test]
    fn dump_registry_ends_with_a_dump_done_line() {
        let _g = test_support::lock();
        crate::enable_all();
        crate::registry::reset_registry();
        crate::registry::counter("test.dump.c").add(2);
        crate::registry::gauge("test.dump.g").set(0.5);
        crate::registry::histogram("test.dump.h").record(9);
        let sink = MemWriter::default();
        set_trace_writer(Box::new(sink.clone()));
        dump_registry("figure", "figX");
        take_trace_writer();
        let out = sink.contents();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        assert!(lines[0].contains("\"event\":\"counter\""), "{out}");
        assert!(lines[0].contains("\"figure\":\"figX\""), "{out}");
        assert!(lines[0].contains("\"name\":\"test.dump.c\""), "{out}");
        assert!(lines[1].contains("\"event\":\"gauge\""), "{out}");
        assert!(lines[2].contains("\"event\":\"histogram\""), "{out}");
        assert!(lines[2].contains("\"p95\":"), "{out}");
        let last = lines.last().unwrap();
        assert!(last.contains("\"event\":\"dump.done\""), "{out}");
        assert!(last.contains("\"counters\":1"), "{out}");
        assert!(last.contains("\"histograms\":1"), "{out}");
        crate::registry::reset_registry();
        crate::disable();
    }

    #[test]
    fn no_sink_drops_events() {
        let _g = test_support::lock();
        crate::enable_all();
        take_trace_writer();
        // Must not panic or block.
        emit("test", "s", "dropped", &[]);
        crate::disable();
    }

    #[test]
    fn filter_gates_debug_events() {
        let _g = test_support::lock();
        crate::set_filter("test");
        let sink = MemWriter::default();
        set_trace_writer(Box::new(sink.clone()));
        emit("test", "s", "coarse", &[]);
        emit_debug("test", "s", "fine", &[]);
        emit("other", "s", "blocked", &[]);
        take_trace_writer();
        let out = sink.contents();
        assert!(out.contains("coarse"), "{out}");
        assert!(!out.contains("fine"), "{out}");
        assert!(!out.contains("blocked"), "{out}");
        crate::disable();
    }
}
