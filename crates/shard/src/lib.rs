#![warn(missing_docs)]

//! Sharded regional solver: partition the topology, solve shards in
//! parallel, reconcile the boundary.
//!
//! The paper solves one global placement instance; at the ROADMAP's
//! target scale (10^5+ queries, 10^4+ nodes) that single solve dominates
//! wall-clock. The constructive solvers are roughly quadratic in query
//! count, so splitting the world into R balanced geo-regions and solving
//! them concurrently wins about R× from parallelism *and* another factor
//! from the smaller per-shard quadratic term. This crate implements that
//! decomposition in three pieces:
//!
//! * [`region::RegionPlan`] — runs `edgerep_graph::partition::partition_kway`
//!   over the delay/affinity graph (edge weight `1 / (delay + ε)`, so the
//!   min-cut severs the *slowest* links and regions stay latency-tight),
//!   then extracts one sub-[`edgerep_model::Instance`] per region:
//!   full topology with availability masked to the region's compute
//!   nodes, every dataset (so ids stay global), and the region's
//!   *interior* queries — home in the region and all demanded datasets
//!   originating there.
//! * [`solver::ShardedSolver`] — wraps any
//!   [`edgerep_core::PlacementAlgorithm`], solves the shards concurrently
//!   on [`parallel::par_map`], and merges the per-shard solutions; the
//!   regions' compute nodes are disjoint, so the merged solution is
//!   feasible by construction.
//! * [`solver::reconcile`] — the boundary pass: queries whose
//!   deadline-feasible candidate set crosses regions (border queries that
//!   no shard attempted, plus unserved residue that could spill over) are
//!   re-admitted globally against the residual capacities, so the sharded
//!   result is feasibility-equivalent to a global solve and the
//!   net-benefit gap is *measured* (`ext-shard`), not assumed.
//!
//! With `regions <= 1` the wrapper delegates to the inner algorithm
//! verbatim, which is why R = 1 is pinned byte-identical to the global
//! solver (see DESIGN.md §9 for why that identity cannot hold at R > 1).

pub mod parallel;
pub mod region;
pub mod solver;

pub use region::{RegionPlan, Shard};
pub use solver::{reconcile, sharded_appro_report, ShardConfig, ShardedSolver};
