//! Deterministic, panic-safe parallel map on std scoped threads.
//!
//! Every figure point repeats its experiment over 15 seeded topologies and
//! several algorithms; the repetitions are embarrassingly parallel and
//! independent of execution order, so a simple atomic-counter work queue
//! over scoped threads is all that is needed — results land in their input
//! slot, making the output identical to the sequential map regardless of
//! scheduling (the guides' "same result as the sequential counterpart"
//! contract).
//!
//! Two properties the experiment schedulers lean on:
//!
//! * **Panic propagation.** A panicking item is caught with
//!   [`catch_unwind`], the remaining workers drain cleanly (in-flight items
//!   finish, no new items are claimed), and the *original* payload is
//!   re-raised on the caller thread with [`resume_unwind`] — so diagnostics
//!   like the runner's "X produced an infeasible solution" panic survive
//!   verbatim instead of being replaced by a scope-join `.expect` message.
//! * **Nesting safety.** A `par_map` reached from inside a worker (e.g. a
//!   flattened seed×algorithm task whose cell itself maps over something)
//!   falls back to a sequential loop on that worker thread, so nested
//!   invocations never oversubscribe the machine with `workers²` threads.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use edgerep_obs as obs;

thread_local! {
    /// Set while the current thread runs `par_map` items as a worker;
    /// nested calls observe it and take the sequential path.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The first caught worker panic: item index plus the original payload.
type FirstPanic = Option<(usize, Box<dyn Any + Send>)>;

/// Parallel `map` preserving input order. Uses up to
/// `available_parallelism` worker threads (capped by the item count);
/// falls back to a sequential loop for tiny inputs and for nested
/// invocations from inside another `par_map`'s worker.
///
/// If `f` panics for some item, every worker stops claiming new items,
/// in-flight items run to completion, and the lowest-indexed caught
/// payload is re-raised verbatim on the calling thread.
///
/// When the `parallel` observability target is enabled, per-item wall time
/// lands in the `span.parallel.item_us` histogram and the fleet-wide
/// utilization (busy time over `workers × wall`) in the
/// `parallel.utilization` gauge; disabled, the loop takes no clock
/// readings at all.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if n <= 1 || workers <= 1 || IN_WORKER.with(Cell::get) {
        return items.iter().map(&f).collect();
    }

    // Gated once per call: the item loop never touches the filter.
    let timed = obs::enabled("parallel");
    let item_hist = timed.then(|| obs::histogram("span.parallel.item_us"));
    let started = timed.then(Instant::now);
    let busy_us = AtomicU64::new(0);
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let first_panic: Mutex<FirstPanic> = Mutex::new(None);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let f = &f;
            let next = &next;
            let abort = &abort;
            let first_panic = &first_panic;
            let busy_us = &busy_us;
            let item_hist = &item_hist;
            let tx = tx.clone();
            scope.spawn(move || {
                IN_WORKER.with(|w| w.set(true));
                let mut local_busy_us = 0u64;
                loop {
                    if abort.load(Ordering::Relaxed) {
                        break; // drain: finish nothing new after a panic
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let t0 = item_hist.as_ref().map(|_| Instant::now());
                    match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
                        Ok(r) => {
                            if let (Some(h), Some(t0)) = (item_hist.as_ref(), t0) {
                                let us = t0.elapsed().as_micros().min(u64::MAX as u128) as u64;
                                h.record(us);
                                local_busy_us += us;
                            }
                            tx.send((i, r)).expect("receiver outlives the scope");
                        }
                        Err(payload) => {
                            let mut slot =
                                first_panic.lock().unwrap_or_else(|e| e.into_inner());
                            // Keep the lowest-indexed payload: when several
                            // items fail in one call the surfaced diagnostic
                            // is as stable as the schedule allows.
                            let replace = match slot.as_ref() {
                                None => true,
                                Some((j, _)) => i < *j,
                            };
                            if replace {
                                *slot = Some((i, payload));
                            }
                            abort.store(true, Ordering::Relaxed);
                        }
                    }
                }
                busy_us.fetch_add(local_busy_us, Ordering::Relaxed);
            });
        }
        drop(tx); // workers hold the remaining senders
    });

    let caught = first_panic
        .into_inner()
        .unwrap_or_else(|e| e.into_inner());
    if let Some((index, payload)) = caught {
        obs::counter("parallel.panics").inc();
        if timed {
            let message = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            obs::emit(
                "parallel",
                "parallel.par_map",
                "par_map.item_panic",
                &[("item", index.into()), ("message", message.into())],
            );
        }
        resume_unwind(payload);
    }

    if let Some(started) = started {
        let wall_s = started.elapsed().as_secs_f64();
        let busy_s = busy_us.load(Ordering::Relaxed) as f64 / 1e6;
        let utilization = if wall_s > 0.0 {
            (busy_s / (wall_s * workers as f64)).min(1.0)
        } else {
            0.0
        };
        obs::counter("parallel.items").add(n as u64);
        obs::gauge("parallel.utilization").set(utilization);
        obs::emit(
            "parallel",
            "parallel.par_map",
            "par_map.done",
            &[
                ("items", n.into()),
                ("workers", workers.into()),
                ("wall_s", wall_s.into()),
                ("busy_s", busy_s.into()),
                ("utilization", utilization.into()),
            ],
        );
    }

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in rx.try_iter() {
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every slot written by a worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..100).collect();
        let par = par_map(&items, |&x| x * x + 1);
        let seq: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = vec![];
        assert!(par_map(&items, |&x| x).is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn order_preserved_under_uneven_work() {
        // Earlier items take longer; results must still line up.
        let items: Vec<u64> = (0..32).collect();
        let par = par_map(&items, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x * 10
        });
        assert_eq!(par, (0..32).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn heavy_types_move_correctly() {
        let items: Vec<usize> = (0..20).collect();
        let par = par_map(&items, |&x| vec![x; x]);
        for (i, v) in par.iter().enumerate() {
            assert_eq!(v.len(), i);
        }
    }

    #[test]
    fn panic_payload_propagates_verbatim() {
        let items: Vec<u32> = (0..64).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            par_map(&items, |&x| {
                if x == 13 {
                    panic!("item {x} produced an infeasible solution");
                }
                x
            })
        }))
        .expect_err("a panicking item must fail the map");
        let msg = err
            .downcast_ref::<String>()
            .expect("formatted panics carry String payloads");
        assert_eq!(msg, "item 13 produced an infeasible solution");
    }

    #[test]
    fn static_str_panic_payload_propagates() {
        let items: Vec<u32> = (0..32).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            par_map(&items, |&x| {
                if x == 5 {
                    panic!("static boom");
                }
                x
            })
        }))
        .expect_err("a panicking item must fail the map");
        assert_eq!(*err.downcast_ref::<&str>().unwrap(), "static boom");
    }

    #[test]
    fn all_items_panicking_surfaces_one_original_payload() {
        let items: Vec<usize> = (0..40).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            par_map(&items, |&x| -> usize { panic!("boom at item {x}") })
        }))
        .expect_err("every item panics");
        let msg = err.downcast_ref::<String>().unwrap();
        let index: usize = msg
            .strip_prefix("boom at item ")
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("payload was rewritten: {msg}"));
        assert!(index < items.len());
    }

    #[test]
    fn par_map_survives_a_previous_panic() {
        // No poisoned global state: a panicking call must not break the
        // next one.
        let items: Vec<u32> = (0..16).collect();
        let _ = catch_unwind(AssertUnwindSafe(|| {
            par_map(&items, |&x| {
                if x == 0 {
                    panic!("first call dies");
                }
                x
            })
        }));
        assert_eq!(
            par_map(&items, |&x| x + 1),
            (1..17).collect::<Vec<u32>>()
        );
    }

    #[test]
    fn nested_invocation_stays_on_the_worker_thread() {
        // An inner par_map reached from inside a worker must run
        // sequentially on that same thread (no worker² oversubscription).
        // On a single-core runner both levels are sequential on the caller
        // thread, which satisfies the same property trivially.
        let outer: Vec<u64> = (0..8).collect();
        let sums = par_map(&outer, |&x| {
            let outer_thread = std::thread::current().id();
            let inner: Vec<u64> = (0..16).collect();
            let inner_vals = par_map(&inner, |&y| {
                assert_eq!(
                    std::thread::current().id(),
                    outer_thread,
                    "nested par_map left its worker thread"
                );
                x * 100 + y
            });
            inner_vals.iter().sum::<u64>()
        });
        let expected: Vec<u64> = (0..8).map(|x| (0..16).map(|y| x * 100 + y).sum()).collect();
        assert_eq!(sums, expected);
    }

    #[test]
    fn nested_panic_propagates_through_both_levels() {
        let outer: Vec<u64> = (0..4).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            par_map(&outer, |&x| {
                let inner: Vec<u64> = (0..4).collect();
                par_map(&inner, |&y| {
                    if x == 2 && y == 3 {
                        panic!("inner failure at ({x}, {y})");
                    }
                    y
                })
                .len()
            })
        }))
        .expect_err("inner panic must surface");
        let msg = err.downcast_ref::<String>().unwrap();
        assert_eq!(msg, "inner failure at (2, 3)");
    }
}
