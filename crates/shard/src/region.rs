//! Region extraction: a balanced labeling of the topology plus the
//! per-region sub-instances the sharded solver runs on.
//!
//! The partition is computed on the *affinity* graph — same nodes and
//! edges as the transport graph, but edge weight `1 / (delay + ε)` — so
//! the Kernighan–Lin min-cut severs the slowest links and every region is
//! a latency-tight neighbourhood. Regions are then *compacted over
//! compute nodes*: a part that holds only switches or base stations can
//! host nothing and is dropped, so [`RegionPlan::region_count`] counts
//! regions that can actually serve queries.
//!
//! Per-region sub-instances keep the full topology (the delay matrix is
//! reused verbatim via `EdgeCloud::with_masked_availability`, so routing
//! stays bit-identical to the global instance) and *all* datasets (so
//! `DatasetId`s are global across shards). Only the region's **interior**
//! queries are included: home in the region and every demanded dataset
//! originating there. Border queries are excluded from every shard and
//! handled by the reconciliation pass, together with unserved residue.

use edgerep_graph::partition::partition_kway;
use edgerep_graph::Graph;
use edgerep_model::{ComputeNodeId, DatasetId, Instance, InstanceBuilder, QueryId, Solution};
use edgerep_obs as obs;

/// Guard added to link delays before inversion so zero-delay links get a
/// large-but-finite affinity instead of ±inf.
const DELAY_EPS: f64 = 1e-6;

/// Same nodes/edges as the transport graph with weight `1 / (delay + ε)`:
/// low-delay links become heavy affinity edges the min-cut preserves.
fn affinity_graph(transport: &Graph) -> Graph {
    let mut g = Graph::with_nodes(transport.node_count());
    for e in transport.edges() {
        g.add_edge(e.u, e.v, 1.0 / (e.weight + DELAY_EPS));
    }
    g
}

/// One shard: a region-local sub-instance plus the global ids of the
/// interior queries it carries (local `QueryId(i)` is `queries[i]`).
#[derive(Debug, Clone)]
pub struct Shard {
    /// Region index in `0..RegionPlan::region_count()`.
    pub region: usize,
    /// The masked sub-instance: full topology, availability zeroed
    /// outside the region, all datasets, interior queries only.
    pub instance: Instance,
    /// Global id of each local query, in local-id order.
    pub queries: Vec<QueryId>,
}

/// How a global instance splits into balanced geo-regions.
#[derive(Debug, Clone)]
pub struct RegionPlan {
    /// Number of non-empty compute regions (≤ the requested R).
    regions: usize,
    /// Region per compute node.
    node_region: Vec<usize>,
    /// Region per dataset: its origin node's region ("owner").
    dataset_region: Vec<usize>,
    /// Region per query: its home node's region.
    query_region: Vec<usize>,
    /// Per query: does any demanded dataset live outside the home region?
    border: Vec<bool>,
}

impl RegionPlan {
    /// Partitions `inst`'s topology into at most `regions` balanced
    /// regions and classifies every dataset and query.
    ///
    /// `regions` must be ≥ 1. The effective [`Self::region_count`] can be
    /// smaller: the graph partition may return fewer parts than asked
    /// (tiny topologies) and parts without compute nodes are dropped.
    pub fn build(inst: &Instance, regions: usize) -> Self {
        assert!(regions >= 1, "region count must be at least 1");
        let _span = obs::span("shard", "shard.partition");
        let cloud = inst.cloud();
        let labels = partition_kway(&affinity_graph(cloud.graph()), regions);

        // Compact labels over compute nodes in first-seen order: regions
        // are dense in 0..count and each holds ≥ 1 compute node.
        let mut dense: Vec<Option<usize>> = vec![None; cloud.graph().node_count().max(1)];
        let mut count = 0usize;
        let mut node_region = Vec::with_capacity(cloud.compute_count());
        for v in cloud.compute_ids() {
            let raw = labels[cloud.node(v).graph_node.index()];
            let r = *dense[raw].get_or_insert_with(|| {
                let next = count;
                count += 1;
                next
            });
            node_region.push(r);
        }

        let dataset_region: Vec<usize> = inst
            .datasets()
            .iter()
            .map(|d| node_region[d.origin.index()])
            .collect();
        let query_region: Vec<usize> = inst
            .queries()
            .iter()
            .map(|q| node_region[q.home.index()])
            .collect();
        let border: Vec<bool> = inst
            .queries()
            .iter()
            .map(|q| {
                let home = node_region[q.home.index()];
                q.demands
                    .iter()
                    .any(|dem| dataset_region[dem.dataset.index()] != home)
            })
            .collect();
        Self {
            regions: count,
            node_region,
            dataset_region,
            query_region,
            border,
        }
    }

    /// Number of non-empty compute regions.
    pub fn region_count(&self) -> usize {
        self.regions
    }

    /// Region of a compute node.
    pub fn node_region(&self, v: ComputeNodeId) -> usize {
        self.node_region[v.index()]
    }

    /// Owning region of a dataset (its origin node's region).
    pub fn dataset_region(&self, d: DatasetId) -> usize {
        self.dataset_region[d.index()]
    }

    /// Home region of a query.
    pub fn query_region(&self, q: QueryId) -> usize {
        self.query_region[q.index()]
    }

    /// Whether a query demands a dataset owned outside its home region
    /// (such queries belong to no shard; reconciliation serves them).
    pub fn is_border(&self, q: QueryId) -> bool {
        self.border[q.index()]
    }

    /// Extracts one sub-instance per region (see the module docs for what
    /// each shard contains). The per-shard `SolverCache` is *not* forced
    /// here: each `Instance` builds its own lazily on the solving thread,
    /// so the cache construction itself parallelizes across shards.
    pub fn sub_instances(&self, inst: &Instance) -> Vec<Shard> {
        (0..self.regions)
            .map(|r| {
                let cloud = inst
                    .cloud()
                    .with_masked_availability(|v| self.node_region[v.index()] == r);
                let mut ib = InstanceBuilder::new(cloud, inst.max_replicas());
                for d in inst.datasets() {
                    let id = ib.add_dataset(d.size_gb, d.origin);
                    debug_assert_eq!(id, d.id, "dataset ids are global across shards");
                    ib.set_scheme(id, inst.scheme(d.id));
                }
                ib.set_ec_costs(inst.decode_s_per_gb(), inst.encode_s_per_gb());
                let mut queries = Vec::new();
                for q in inst.queries() {
                    if self.query_region[q.id.index()] == r && !self.border[q.id.index()] {
                        ib.add_query(q.home, q.demands.clone(), q.compute_rate, q.deadline);
                        queries.push(q.id);
                    }
                }
                let instance = ib
                    .build()
                    .expect("a sub-instance of a valid instance is valid");
                Shard {
                    region: r,
                    instance,
                    queries,
                }
            })
            .collect()
    }

    /// Merges per-shard solutions back onto the global instance.
    ///
    /// Replicas of a dataset are taken **only** from its owning region's
    /// shard — every shard sees every dataset (for id stability), so
    /// copying replicas from all shards could spend the global
    /// `slots(d)` budget several times over. Assignments map each
    /// shard-local query id back to its global id. Region compute nodes
    /// are disjoint, so the merged per-node loads equal the per-shard
    /// loads and the merge preserves feasibility by construction.
    pub fn merge(&self, inst: &Instance, shards: &[Shard], solutions: &[Solution]) -> Solution {
        let mut merged = Solution::empty(inst);
        for (shard, sol) in shards.iter().zip(solutions) {
            for d in inst.dataset_ids() {
                if self.dataset_region[d.index()] != shard.region {
                    continue;
                }
                for &v in sol.replicas_of(d) {
                    merged.place_replica(d, v);
                }
            }
            for (local, &global) in shard.queries.iter().enumerate() {
                if let Some(nodes) = sol.assignment_of(QueryId(local as u32)) {
                    merged.assign_query(global, nodes.to_vec());
                }
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgerep_workload::{generate_instance, WorkloadParams};

    fn world(seed: u64) -> Instance {
        generate_instance(&WorkloadParams::default().with_network_size(48), seed)
    }

    #[test]
    fn every_compute_node_lands_in_exactly_one_dense_region() {
        let inst = world(7);
        for r in [1usize, 2, 4, 8] {
            let plan = RegionPlan::build(&inst, r);
            assert!(plan.region_count() >= 1 && plan.region_count() <= r);
            let mut seen = vec![false; plan.region_count()];
            for v in inst.cloud().compute_ids() {
                let region = plan.node_region(v);
                assert!(region < plan.region_count());
                seen[region] = true;
            }
            assert!(seen.iter().all(|&s| s), "empty compute region at R={r}");
        }
    }

    #[test]
    fn dataset_and_query_regions_follow_their_nodes() {
        let inst = world(3);
        let plan = RegionPlan::build(&inst, 4);
        for d in inst.datasets() {
            assert_eq!(plan.dataset_region(d.id), plan.node_region(d.origin));
        }
        for q in inst.queries() {
            assert_eq!(plan.query_region(q.id), plan.node_region(q.home));
            let crosses = q
                .demands
                .iter()
                .any(|dem| plan.dataset_region(dem.dataset) != plan.query_region(q.id));
            assert_eq!(plan.is_border(q.id), crosses);
        }
    }

    #[test]
    fn sub_instances_mask_availability_and_keep_ids_global() {
        let inst = world(11);
        let plan = RegionPlan::build(&inst, 4);
        let shards = plan.sub_instances(&inst);
        assert_eq!(shards.len(), plan.region_count());
        let mut interior_total = 0;
        for shard in &shards {
            let sub = &shard.instance;
            // All datasets present under their global ids.
            assert_eq!(sub.datasets().len(), inst.datasets().len());
            for d in inst.datasets() {
                assert_eq!(sub.dataset(d.id).origin, d.origin);
                assert_eq!(sub.scheme(d.id), inst.scheme(d.id));
            }
            // Availability confined to the region; delays bit-identical.
            for v in inst.cloud().compute_ids() {
                if plan.node_region(v) == shard.region {
                    assert_eq!(sub.cloud().available(v), inst.cloud().available(v));
                } else {
                    assert_eq!(sub.cloud().available(v), 0.0);
                }
                assert_eq!(
                    sub.cloud()
                        .min_delay(v, ComputeNodeId(0))
                        .to_bits(),
                    inst.cloud().min_delay(v, ComputeNodeId(0)).to_bits()
                );
            }
            // Only interior queries, faithfully copied.
            assert_eq!(sub.queries().len(), shard.queries.len());
            for (local, &global) in shard.queries.iter().enumerate() {
                assert_eq!(plan.query_region(global), shard.region);
                assert!(!plan.is_border(global));
                let sq = &sub.queries()[local];
                let gq = inst.query(global);
                assert_eq!(sq.home, gq.home);
                assert_eq!(sq.demands, gq.demands);
                assert_eq!(sq.deadline.to_bits(), gq.deadline.to_bits());
            }
            interior_total += shard.queries.len();
        }
        // Interior queries partition the non-border queries.
        let non_border = inst.queries().iter().filter(|q| !plan.is_border(q.id)).count();
        assert_eq!(interior_total, non_border);
    }

    #[test]
    fn merged_shard_solutions_validate_on_the_global_instance() {
        use edgerep_core::appro::ApproG;
        use edgerep_core::PlacementAlgorithm;
        for seed in 0..4u64 {
            let inst = world(seed);
            let plan = RegionPlan::build(&inst, 4);
            let shards = plan.sub_instances(&inst);
            let sols: Vec<Solution> = shards
                .iter()
                .map(|s| ApproG::default().solve(&s.instance))
                .collect();
            let merged = plan.merge(&inst, &shards, &sols);
            merged
                .validate(&inst)
                .expect("disjoint-region merge is feasible by construction");
        }
    }
}
