//! The sharded solver wrapper and the boundary-reconciliation pass.
//!
//! [`ShardedSolver`] turns any [`PlacementAlgorithm`] into a regional
//! one: partition (see [`RegionPlan`]), solve every shard concurrently on
//! [`par_map`], merge, then optionally [`reconcile`] the boundary. With
//! `regions <= 1` (or a topology the partitioner cannot split) the inner
//! algorithm runs verbatim on the global instance — the R = 1
//! byte-identity pin the test suite enforces for every `QueryOrder`.
//!
//! Reconciliation semantics: the merge leaves two kinds of queries
//! unserved — *border* queries (demand a dataset owned by another region;
//! no shard ever attempted them) and *residue* (interior queries a shard
//! priced out). A residue query whose deadline-feasible candidates all
//! lie in its home region cannot do better globally than its shard
//! already did (the shard saw exactly those nodes and capacities), so the
//! boundary set is: unserved queries that are border **or** have a
//! deadline-feasible candidate outside their home region. Those are
//! re-admitted greedily against the residual capacities in ascending
//! query-id order — deterministic, capacity/deadline/budget-checked
//! through the same [`AdmissionState`] machinery every solver uses.

use edgerep_core::admission::{AdmissionState, PlannedDemand};
use edgerep_core::appro::{Appro, ApproConfig, ApproReport};
use edgerep_core::PlacementAlgorithm;
use edgerep_model::{Instance, Query, Solution};
use edgerep_obs as obs;

use crate::parallel::par_map;
use crate::region::RegionPlan;

/// Sharding knobs carried by [`ShardedSolver`] and the CLI's
/// `solve --shards R` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of regions R to partition into. `<= 1` bypasses sharding:
    /// the inner algorithm runs verbatim on the global instance.
    pub regions: usize,
    /// Whether to run the boundary-reconciliation pass after the merge.
    /// Off, border queries and cross-region residue stay unserved — useful
    /// for measuring what reconciliation itself recovers.
    pub reconcile: bool,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            regions: 1,
            reconcile: true,
        }
    }
}

/// Wraps an algorithm so it solves per-region shards concurrently.
#[derive(Debug, Clone)]
pub struct ShardedSolver<A> {
    inner: A,
    config: ShardConfig,
}

impl<A: PlacementAlgorithm + Sync> ShardedSolver<A> {
    /// Creates a sharded wrapper around `inner`.
    pub fn new(inner: A, config: ShardConfig) -> Self {
        Self { inner, config }
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// The sharding configuration.
    pub fn config(&self) -> ShardConfig {
        self.config
    }

    /// Partition → parallel per-shard solve → merge → reconcile.
    ///
    /// Delegates to the inner algorithm verbatim when sharding is off
    /// (`regions <= 1`) or the partitioner produced a single compute
    /// region, so those cases are byte-identical to a global solve.
    pub fn solve_sharded(&self, inst: &Instance) -> Solution {
        let _span = obs::span("shard", "shard.solve");
        if self.config.regions <= 1 {
            return self.inner.solve(inst);
        }
        let plan = RegionPlan::build(inst, self.config.regions);
        obs::gauge("shard.regions").set(plan.region_count() as f64);
        if plan.region_count() <= 1 {
            return self.inner.solve(inst);
        }
        let shards = plan.sub_instances(inst);
        let solutions = par_map(&shards, |s| self.inner.solve(&s.instance));
        let mut merged = plan.merge(inst, &shards, &solutions);
        if self.config.reconcile {
            reconcile(inst, &plan, &mut merged);
        }
        merged
    }
}

/// Static display-name mapping (the trait requires `&'static str`).
fn sharded_name(inner: &'static str) -> &'static str {
    match inner {
        "Appro-G" => "Appro-G/sharded",
        "Appro-S" => "Appro-S/sharded",
        "Greedy-G" => "Greedy-G/sharded",
        "Greedy-S" => "Greedy-S/sharded",
        "Graph-G" => "Graph-G/sharded",
        "Graph-S" => "Graph-S/sharded",
        _ => "sharded",
    }
}

impl<A: PlacementAlgorithm + Sync> PlacementAlgorithm for ShardedSolver<A> {
    fn name(&self) -> &'static str {
        sharded_name(self.inner.name())
    }

    fn solve(&self, inst: &Instance) -> Solution {
        self.solve_sharded(inst)
    }
}

/// Re-admits boundary queries globally against the residual capacities of
/// `merged`, in ascending query-id order; returns how many were admitted.
///
/// The boundary set is every unserved query that is border
/// ([`RegionPlan::is_border`]) or has a deadline-feasible candidate node
/// outside its home region (cross-region residue). Each gets one
/// deterministic greedy attempt per demand — prefer nodes already holding
/// the dataset, then lowest base delay, then lowest node id — validated
/// jointly via [`AdmissionState::plan_feasible`] before committing.
/// Counters: `shard.boundary_queries` (attempted) and `shard.readmitted`.
pub fn reconcile(inst: &Instance, plan: &RegionPlan, merged: &mut Solution) -> usize {
    let _span = obs::span("shard", "shard.reconcile");
    let cache = inst.solver_cache();
    let mut state = AdmissionState::from_solution(inst, merged);
    let mut boundary = 0u64;
    let mut readmitted = 0usize;
    for q in inst.queries() {
        if state.solution().is_admitted(q.id) {
            continue;
        }
        let home = plan.query_region(q.id);
        let crosses = plan.is_border(q.id)
            || (0..q.demands.len()).any(|idx| {
                cache
                    .candidates(q.id, idx)
                    .any(|(v, _)| plan.node_region(v) != home)
            });
        if !crosses {
            // Purely-local residue: its shard saw the exact same nodes and
            // capacities and already priced it out — skip, don't re-check.
            continue;
        }
        boundary += 1;
        if try_admit(&mut state, q) {
            readmitted += 1;
        }
    }
    obs::counter("shard.boundary_queries").add(boundary);
    obs::counter("shard.readmitted").add(readmitted as u64);
    obs::emit(
        "shard",
        "shard.reconcile",
        "shard.reconcile.done",
        &[
            ("boundary", boundary.into()),
            ("readmitted", readmitted.into()),
        ],
    );
    *merged = state.into_solution();
    readmitted
}

/// One greedy global admission attempt for `q`: per demand, the best
/// feasible candidate (existing holders first, then lowest base delay;
/// the candidate scan is in ascending node-id order, so ties keep the
/// lowest id). Commits only if the joint plan re-validates.
fn try_admit(state: &mut AdmissionState, q: &Query) -> bool {
    let cache = state.instance().solver_cache();
    let mut plan: Vec<PlannedDemand> = Vec::with_capacity(q.demands.len());
    // Tentative load this query already stacks per node across demands.
    let mut stacked: Vec<(edgerep_model::ComputeNodeId, f64)> = Vec::new();
    for idx in 0..q.demands.len() {
        let d = q.demands[idx].dataset;
        let mut best: Option<(bool, f64)> = None;
        let mut best_node = None;
        for (v, base) in cache.candidates(q.id, idx) {
            let extra = stacked
                .iter()
                .find(|(n, _)| *n == v)
                .map_or(0.0, |(_, l)| *l);
            if state.demand_check(q.id, idx, v, extra).is_err() {
                continue;
            }
            let new_replica = !state.has_replica(d, v);
            let better = match best {
                None => true,
                Some((best_new, best_delay)) => {
                    (!new_replica && best_new)
                        || (new_replica == best_new
                            && base.total_cmp(&best_delay) == std::cmp::Ordering::Less)
                }
            };
            if better {
                best = Some((new_replica, base));
                best_node = Some(v);
            }
        }
        let (Some((new_replica, _)), Some(v)) = (best, best_node) else {
            return false;
        };
        let load = state.compute_demand(q.id, idx);
        match stacked.iter_mut().find(|(n, _)| *n == v) {
            Some((_, l)) => *l += load,
            None => stacked.push((v, load)),
        }
        plan.push(PlannedDemand {
            node: v,
            new_replica,
        });
    }
    if !state.plan_feasible(q.id, &plan) {
        return false;
    }
    state.commit(q.id, &plan);
    true
}

/// Sharded counterpart of [`Appro::run`], exposing the dual certificate.
///
/// With `shards.regions <= 1` (or a single effective region) this *is*
/// `Appro::with_config(config).run(inst)` — solution, `dual_bound`, and
/// `theta` all byte-identical, which the R = 1 pin asserts for every
/// `QueryOrder`. With R > 1, each shard runs its own primal-dual solve;
/// every node's final capacity price comes from the shard that owns it
/// and `dual_bound` is the sum of the shard bounds. That sum bounds the
/// disjoint interior sub-problems *before* reconciliation re-enters
/// border queries primally, so at R > 1 it is a diagnostic, not a
/// certificate for the reconciled solution (DESIGN.md §9).
pub fn sharded_appro_report(
    inst: &Instance,
    config: ApproConfig,
    shards: ShardConfig,
) -> ApproReport {
    if shards.regions <= 1 {
        return Appro::with_config(config).run(inst);
    }
    let _span = obs::span("shard", "shard.solve");
    let plan = RegionPlan::build(inst, shards.regions);
    obs::gauge("shard.regions").set(plan.region_count() as f64);
    if plan.region_count() <= 1 {
        return Appro::with_config(config).run(inst);
    }
    let shard_insts = plan.sub_instances(inst);
    let reports = par_map(&shard_insts, |s| {
        Appro::with_config(config).run(&s.instance)
    });
    let solutions: Vec<Solution> = reports.iter().map(|r| r.solution.clone()).collect();
    let mut solution = plan.merge(inst, &shard_insts, &solutions);
    if shards.reconcile {
        reconcile(inst, &plan, &mut solution);
    }
    let mut theta = vec![0.0; inst.cloud().compute_count()];
    for (shard, report) in shard_insts.iter().zip(&reports) {
        for v in inst.cloud().compute_ids() {
            if plan.node_region(v) == shard.region {
                theta[v.index()] = report.theta[v.index()];
            }
        }
    }
    let dual_bound = reports.iter().map(|r| r.dual_bound).sum();
    ApproReport {
        solution,
        dual_bound,
        theta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgerep_core::appro::{ApproG, QueryOrder};
    use edgerep_core::greedy::Greedy;
    use edgerep_model::{InstanceBuilder, RedundancyScheme};
    use edgerep_workload::{generate_instance, WorkloadParams};

    fn world(seed: u64) -> Instance {
        generate_instance(&WorkloadParams::default().with_network_size(48), seed)
    }

    /// Rebuilds `inst` with erasure coding as the default scheme.
    fn with_ec_default(inst: &Instance) -> Instance {
        let mut ib = InstanceBuilder::new(inst.cloud().clone(), inst.max_replicas());
        for d in inst.datasets() {
            ib.add_dataset(d.size_gb, d.origin);
        }
        ib.set_default_scheme(RedundancyScheme::ErasureCoded { k: 2, m: 1 });
        for q in inst.queries() {
            ib.add_query(q.home, q.demands.clone(), q.compute_rate, q.deadline);
        }
        ib.build().expect("EC rebuild of a valid instance is valid")
    }

    #[test]
    fn r1_is_byte_identical_for_every_query_order() {
        let inst = world(5);
        for order in [
            QueryOrder::GlobalCheapestFirst,
            QueryOrder::Input,
            QueryOrder::VolumeDesc,
            QueryOrder::DeadlineAsc,
        ] {
            let config = ApproConfig {
                order,
                ..ApproConfig::default()
            };
            let global = Appro::with_config(config).run(&inst);
            let sharded = sharded_appro_report(&inst, config, ShardConfig::default());
            assert_eq!(sharded.solution, global.solution, "order {order:?}");
            assert_eq!(
                sharded.dual_bound.to_bits(),
                global.dual_bound.to_bits(),
                "order {order:?}"
            );
            assert_eq!(sharded.theta.len(), global.theta.len());
            for (s, g) in sharded.theta.iter().zip(&global.theta) {
                assert_eq!(s.to_bits(), g.to_bits(), "order {order:?}");
            }
        }
    }

    #[test]
    fn r1_wrapper_matches_the_inner_algorithm_exactly() {
        let inst = world(9);
        let sharded = ShardedSolver::new(
            ApproG::default(),
            ShardConfig {
                regions: 1,
                reconcile: true,
            },
        );
        assert_eq!(sharded.solve(&inst), ApproG::default().solve(&inst));
    }

    #[test]
    fn sharded_solutions_stay_feasible_across_r_and_seeds() {
        for seed in 0..4u64 {
            let inst = world(seed);
            for regions in [2usize, 4, 8] {
                let solver = ShardedSolver::new(
                    ApproG::default(),
                    ShardConfig {
                        regions,
                        reconcile: true,
                    },
                );
                let sol = solver.solve(&inst);
                sol.validate(&inst)
                    .unwrap_or_else(|e| panic!("seed {seed} R={regions}: {e:?}"));
            }
        }
    }

    #[test]
    fn sharded_ec_solutions_stay_feasible() {
        for seed in 0..3u64 {
            let inst = with_ec_default(&world(seed));
            let solver = ShardedSolver::new(
                ApproG::default(),
                ShardConfig {
                    regions: 4,
                    reconcile: true,
                },
            );
            let sol = solver.solve(&inst);
            sol.validate(&inst)
                .unwrap_or_else(|e| panic!("EC seed {seed}: {e:?}"));
        }
    }

    #[test]
    fn reconcile_never_reduces_admitted_volume() {
        for seed in 0..4u64 {
            let inst = world(seed);
            let base = ShardedSolver::new(
                ApproG::default(),
                ShardConfig {
                    regions: 4,
                    reconcile: false,
                },
            )
            .solve(&inst);
            let reconciled = ShardedSolver::new(
                ApproG::default(),
                ShardConfig {
                    regions: 4,
                    reconcile: true,
                },
            )
            .solve(&inst);
            assert!(
                reconciled.admitted_volume(&inst) >= base.admitted_volume(&inst) - 1e-9,
                "seed {seed}: reconciliation lost volume"
            );
        }
    }

    #[test]
    fn sharded_solve_is_deterministic() {
        let inst = world(2);
        let solver = ShardedSolver::new(
            ApproG::default(),
            ShardConfig {
                regions: 4,
                reconcile: true,
            },
        );
        assert_eq!(solver.solve(&inst), solver.solve(&inst));
    }

    #[test]
    fn oversharding_a_tiny_world_still_solves() {
        // More regions than compute nodes: the plan compacts to however
        // many regions exist and the result must still validate.
        let inst = generate_instance(&WorkloadParams::default().with_network_size(6), 1);
        let solver = ShardedSolver::new(
            Greedy::general(),
            ShardConfig {
                regions: 64,
                reconcile: true,
            },
        );
        let sol = solver.solve(&inst);
        sol.validate(&inst).expect("oversharded solve is feasible");
    }

    #[test]
    fn sharded_names_map_statically() {
        let sharded = ShardedSolver::new(ApproG::default(), ShardConfig::default());
        assert_eq!(sharded.name(), "Appro-G/sharded");
        let greedy = ShardedSolver::new(Greedy::general(), ShardConfig::default());
        assert_eq!(greedy.name(), "Greedy-G/sharded");
    }
}
