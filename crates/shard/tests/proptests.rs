//! Property tests: sharded solutions never violate capacity, deadline,
//! or replica-budget constraints on generated instances — including
//! erasure-coded schemes — for any region count.
//!
//! Feasibility is checked through `Solution::validate`, which applies the
//! workspace-wide `FEASIBILITY_EPS` to every capacity and deadline
//! comparison, so the property is exactly the solver contract the rest of
//! the test suite enforces.

use edgerep_core::appro::ApproG;
use edgerep_core::greedy::Greedy;
use edgerep_core::PlacementAlgorithm;
use edgerep_model::{Instance, InstanceBuilder, RedundancyScheme};
use edgerep_shard::{ShardConfig, ShardedSolver};
use edgerep_workload::{generate_instance, WorkloadParams};
use proptest::prelude::*;

fn with_ec_default(inst: &Instance) -> Instance {
    let mut ib = InstanceBuilder::new(inst.cloud().clone(), inst.max_replicas());
    for d in inst.datasets() {
        ib.add_dataset(d.size_gb, d.origin);
    }
    ib.set_default_scheme(RedundancyScheme::ErasureCoded { k: 2, m: 1 });
    for q in inst.queries() {
        ib.add_query(q.home, q.demands.clone(), q.compute_rate, q.deadline);
    }
    ib.build().expect("EC rebuild of a valid instance is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_solutions_never_violate_constraints(
        seed in 0u64..1000,
        regions in 2usize..9,
        reconcile in any::<bool>(),
        ec in any::<bool>(),
    ) {
        let params = WorkloadParams::default().with_network_size(40);
        let mut inst = generate_instance(&params, seed);
        if ec {
            inst = with_ec_default(&inst);
        }
        let solver = ShardedSolver::new(ApproG::default(), ShardConfig { regions, reconcile });
        let sol = solver.solve(&inst);
        prop_assert!(
            sol.validate(&inst).is_ok(),
            "seed {} R={} reconcile={} ec={}: {:?}",
            seed, regions, reconcile, ec, sol.validate(&inst)
        );
    }

    #[test]
    fn sharding_any_inner_algorithm_stays_feasible(
        seed in 0u64..1000,
        regions in 2usize..7,
    ) {
        let params = WorkloadParams::default().with_network_size(32);
        let inst = generate_instance(&params, seed);
        let solver = ShardedSolver::new(
            Greedy::general(),
            ShardConfig { regions, reconcile: true },
        );
        let sol = solver.solve(&inst);
        prop_assert!(sol.validate(&inst).is_ok());
    }
}
