//! The analytics query engine.
//!
//! The paper's testbed issues real queries over the mobile-app-usage data:
//! "the most popular applications, at what time the found applications
//! would be used, and the usage pattern of some mobile applications"
//! (§4.3). This module executes those three classes over trace records so
//! the testbed exercises a genuine scan-and-aggregate data path (the
//! simulator charges time for it; this code produces the answers).

use edgerep_workload::mobile_trace::Record;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The paper's three query classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnalyticsKind {
    /// Top-`k` apps by total usage duration.
    TopApps {
        /// How many apps to report.
        k: usize,
    },
    /// Usage histogram over the 24 hours of the day for one app.
    UsageByHour {
        /// The app whose diurnal profile is requested.
        app: u32,
    },
    /// Per-user usage pattern: sessions, total duration, distinct apps.
    UserPattern {
        /// The user whose pattern is requested.
        user: u32,
    },
}

impl AnalyticsKind {
    /// Draws a random query class with plausible parameters.
    pub fn random<R: Rng>(rng: &mut R) -> Self {
        match rng.gen_range(0..3) {
            0 => AnalyticsKind::TopApps {
                k: rng.gen_range(3..10),
            },
            1 => AnalyticsKind::UsageByHour {
                app: rng.gen_range(0..20),
            },
            _ => AnalyticsKind::UserPattern {
                user: rng.gen_range(0..100),
            },
        }
    }
}

/// Result of evaluating one analytics query over one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnalyticsResult {
    /// `(app, total_duration_s)` pairs, descending by duration.
    TopApps(Vec<(u32, u64)>),
    /// Seconds of usage per hour-of-day (24 buckets).
    UsageByHour([u64; 24]),
    /// `(sessions, total_duration_s, distinct_apps)` for the user.
    UserPattern {
        /// Number of sessions the user had in this dataset.
        sessions: usize,
        /// Total usage seconds.
        total_duration_s: u64,
        /// Number of distinct apps used.
        distinct_apps: usize,
    },
}

/// Evaluates a query class over one dataset's records.
pub fn evaluate(kind: AnalyticsKind, records: &[Record]) -> AnalyticsResult {
    match kind {
        AnalyticsKind::TopApps { k } => {
            // App ids are a compact 0..apps index, so a dense tally beats
            // hashing every record on the testbed's hot path. The presence
            // flag keeps zero-duration apps that appear in the trace, like
            // the map-based formulation did.
            let max_app = records.iter().map(|r| r.app).max().unwrap_or(0) as usize;
            let mut durations = vec![(false, 0u64); max_app + 1];
            for r in records {
                let slot = &mut durations[r.app as usize];
                slot.0 = true;
                slot.1 += r.duration_s as u64;
            }
            let mut pairs: Vec<(u32, u64)> = durations
                .iter()
                .enumerate()
                .filter(|(_, slot)| slot.0)
                .map(|(app, slot)| (app as u32, slot.1))
                .collect();
            pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            pairs.truncate(k);
            AnalyticsResult::TopApps(pairs)
        }
        AnalyticsKind::UsageByHour { app } => {
            let mut hist = [0u64; 24];
            for r in records.iter().filter(|r| r.app == app) {
                let hour = ((r.start % 86_400) / 3_600) as usize;
                hist[hour] += r.duration_s as u64;
            }
            AnalyticsResult::UsageByHour(hist)
        }
        AnalyticsKind::UserPattern { user } => {
            let mut sessions = 0usize;
            let mut total = 0u64;
            let mut apps = std::collections::HashSet::new();
            for r in records.iter().filter(|r| r.user == user) {
                sessions += 1;
                total += r.duration_s as u64;
                apps.insert(r.app);
            }
            AnalyticsResult::UserPattern {
                sessions,
                total_duration_s: total,
                distinct_apps: apps.len(),
            }
        }
    }
}

/// Merges per-dataset partial results at the query's home location (the
/// aggregation step of §2.2: intermediate results join at `h_m`).
pub fn merge(partials: Vec<AnalyticsResult>) -> Option<AnalyticsResult> {
    let mut iter = partials.into_iter();
    let first = iter.next()?;
    let merged = iter.fold(first, |acc, next| match (acc, next) {
        (AnalyticsResult::TopApps(a), AnalyticsResult::TopApps(b)) => {
            let mut durations: std::collections::HashMap<u32, u64> =
                std::collections::HashMap::new();
            for (app, d) in a.into_iter().chain(b) {
                *durations.entry(app).or_insert(0) += d;
            }
            let mut pairs: Vec<(u32, u64)> = durations.into_iter().collect();
            pairs.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
            AnalyticsResult::TopApps(pairs)
        }
        (AnalyticsResult::UsageByHour(mut a), AnalyticsResult::UsageByHour(b)) => {
            for (x, y) in a.iter_mut().zip(b.iter()) {
                *x += y;
            }
            AnalyticsResult::UsageByHour(a)
        }
        (
            AnalyticsResult::UserPattern {
                sessions: s1,
                total_duration_s: t1,
                distinct_apps: a1,
            },
            AnalyticsResult::UserPattern {
                sessions: s2,
                total_duration_s: t2,
                distinct_apps: a2,
            },
        ) => AnalyticsResult::UserPattern {
            sessions: s1 + s2,
            total_duration_s: t1 + t2,
            // Partial results do not carry app sets, so the merged count
            // upper-bounds the true distinct count; fine for a testbed
            // answer and documented here.
            distinct_apps: a1.max(a2),
        },
        // Mixed kinds never merge: each query has one class.
        (a, _) => a,
    });
    Some(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(user: u32, app: u32, start: u64, dur: u32) -> Record {
        Record {
            user,
            app,
            start,
            duration_s: dur,
            bytes: 1000,
        }
    }

    #[test]
    fn top_apps_orders_by_duration() {
        let records = vec![
            rec(0, 1, 0, 100),
            rec(1, 2, 10, 300),
            rec(2, 1, 20, 150),
            rec(3, 3, 30, 50),
        ];
        let AnalyticsResult::TopApps(pairs) = evaluate(AnalyticsKind::TopApps { k: 2 }, &records)
        else {
            panic!()
        };
        assert_eq!(pairs, vec![(2, 300), (1, 250)]);
    }

    #[test]
    fn top_apps_tie_breaks_by_app_id() {
        let records = vec![rec(0, 5, 0, 100), rec(0, 2, 0, 100)];
        let AnalyticsResult::TopApps(pairs) = evaluate(AnalyticsKind::TopApps { k: 5 }, &records)
        else {
            panic!()
        };
        assert_eq!(pairs, vec![(2, 100), (5, 100)]);
    }

    #[test]
    fn usage_by_hour_buckets_correctly() {
        let records = vec![
            rec(0, 7, 3_600, 60),  // hour 1
            rec(1, 7, 90_000, 40), // next day, hour 1
            rec(2, 7, 7_200, 10),  // hour 2
            rec(3, 8, 3_700, 999), // other app, ignored
        ];
        let AnalyticsResult::UsageByHour(hist) =
            evaluate(AnalyticsKind::UsageByHour { app: 7 }, &records)
        else {
            panic!()
        };
        assert_eq!(hist[1], 100);
        assert_eq!(hist[2], 10);
        assert_eq!(hist.iter().sum::<u64>(), 110);
    }

    #[test]
    fn user_pattern_aggregates_one_user() {
        let records = vec![
            rec(9, 1, 0, 10),
            rec(9, 2, 100, 20),
            rec(9, 1, 200, 30),
            rec(4, 3, 300, 999),
        ];
        let r = evaluate(AnalyticsKind::UserPattern { user: 9 }, &records);
        assert_eq!(
            r,
            AnalyticsResult::UserPattern {
                sessions: 3,
                total_duration_s: 60,
                distinct_apps: 2
            }
        );
    }

    #[test]
    fn empty_dataset_yields_empty_results() {
        assert_eq!(
            evaluate(AnalyticsKind::TopApps { k: 3 }, &[]),
            AnalyticsResult::TopApps(vec![])
        );
        let r = evaluate(AnalyticsKind::UserPattern { user: 0 }, &[]);
        assert_eq!(
            r,
            AnalyticsResult::UserPattern {
                sessions: 0,
                total_duration_s: 0,
                distinct_apps: 0
            }
        );
    }

    #[test]
    fn merge_top_apps_sums_durations() {
        let a = AnalyticsResult::TopApps(vec![(1, 100), (2, 50)]);
        let b = AnalyticsResult::TopApps(vec![(2, 60), (3, 10)]);
        let AnalyticsResult::TopApps(m) = merge(vec![a, b]).unwrap() else {
            panic!()
        };
        assert_eq!(m, vec![(2, 110), (1, 100), (3, 10)]);
    }

    #[test]
    fn merge_usage_histograms() {
        let mut h1 = [0u64; 24];
        h1[3] = 5;
        let mut h2 = [0u64; 24];
        h2[3] = 7;
        h2[20] = 1;
        let AnalyticsResult::UsageByHour(m) = merge(vec![
            AnalyticsResult::UsageByHour(h1),
            AnalyticsResult::UsageByHour(h2),
        ])
        .unwrap() else {
            panic!()
        };
        assert_eq!(m[3], 12);
        assert_eq!(m[20], 1);
    }

    #[test]
    fn merge_empty_is_none() {
        assert_eq!(merge(vec![]), None);
    }

    #[test]
    fn random_kind_is_well_formed() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        use rand::SeedableRng;
        for _ in 0..50 {
            match AnalyticsKind::random(&mut rng) {
                AnalyticsKind::TopApps { k } => assert!((3..10).contains(&k)),
                AnalyticsKind::UsageByHour { app } => assert!(app < 20),
                AnalyticsKind::UserPattern { user } => assert!(user < 100),
            }
        }
    }
}
