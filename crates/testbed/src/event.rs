//! Discrete-event core: simulated time and the event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in integer microseconds (keeps the event order exact —
/// no float-comparison ties in the heap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Converts from seconds, saturating at the u64 horizon.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid sim time {s}");
        SimTime((s * 1e6).round() as u64)
    }

    /// Seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `self + dt` where `dt` is in seconds.
    pub fn after_secs(self, dt: f64) -> Self {
        assert!(dt >= 0.0 && dt.is_finite(), "invalid delta {dt}");
        SimTime(self.0 + (dt * 1e6).round() as u64)
    }

    /// Seconds elapsed since `earlier` (clamped to zero if `earlier` is
    /// actually later — callers integrate forward only).
    pub fn secs_since(self, earlier: SimTime) -> f64 {
        if self <= earlier {
            0.0
        } else {
            self.as_secs_f64() - earlier.as_secs_f64()
        }
    }
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop earliest first; seq
        // breaks ties FIFO so same-instant events run in schedule order.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        self.heap.push(Entry {
            time,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Whether any events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.0, 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-9);
        assert_eq!(SimTime::ZERO.after_secs(0.25).0, 250_000);
    }

    #[test]
    #[should_panic(expected = "invalid sim time")]
    fn negative_time_rejected() {
        SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn secs_since_is_forward_only() {
        let a = SimTime::from_secs_f64(1.0);
        let b = SimTime::from_secs_f64(3.5);
        assert!((b.secs_since(a) - 2.5).abs() < 1e-12);
        assert_eq!(a.secs_since(b), 0.0);
        assert_eq!(a.secs_since(a), 0.0);
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), 1);
        q.push(SimTime(5), 2);
        q.push(SimTime(5), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), "late");
        q.push(SimTime(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(SimTime(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }
}
