//! Fault injection: deterministic fault plans and MTBF/MTTR generators.
//!
//! A [`FaultPlan`] is the full schedule of infrastructure trouble one
//! testbed run suffers:
//!
//! * [`NodeOutage`] — a VM goes down at `down_at_s` and (optionally) comes
//!   back at `up_at_s`. While down it serves nothing: queued and in-flight
//!   work is lost, arriving queries fail over to live replicas. A missing
//!   `up_at_s` is a permanent crash (the legacy
//!   [`NodeFailure`](crate::sim::NodeFailure) semantics).
//! * [`LinkFault`] — the minimum-delay path between two compute endpoints
//!   degrades by `delay_factor` (or partitions entirely when the factor is
//!   `None`) for a window. Result shipping and repair transfers crossing
//!   the pair during the window pay the factor; a partition blocks them
//!   until retried.
//!
//! Plans are plain serde values, so they round-trip through JSON
//! (`edgerep solve --fault-plan`, `repro ext-availability --fault-plan`)
//! and are validated with [`FaultPlan::validate`] before a run —
//! malformed plans surface as [`FaultPlanError`]s, never panics.
//!
//! [`FaultConfig`] draws a plan from MTBF/MTTR exponentials with a seeded
//! RNG, so availability sweeps can scan failure rates deterministically.

use edgerep_model::ComputeNodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::sim::NodeFailure;

/// One node outage window: down at `down_at_s`, back at `up_at_s`
/// (`None` = permanent crash).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeOutage {
    /// The compute node that goes down.
    pub node: ComputeNodeId,
    /// Outage start, simulated seconds.
    pub down_at_s: f64,
    /// Recovery instant, simulated seconds; `None` never recovers.
    pub up_at_s: Option<f64>,
}

/// One link-trouble window on the path between two compute endpoints.
///
/// The testbed's delay model is endpoint-to-endpoint (precomputed
/// minimum-delay paths), so a "link" here is the path between a pair of
/// compute nodes: every transfer between `a` and `b` (either direction)
/// during the window is scaled by `delay_factor`, or blocked entirely when
/// the factor is `None` (a partition).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    /// One endpoint.
    pub a: ComputeNodeId,
    /// The other endpoint.
    pub b: ComputeNodeId,
    /// Window start, simulated seconds.
    pub down_at_s: f64,
    /// Window end, simulated seconds; `None` never heals.
    pub up_at_s: Option<f64>,
    /// Path-delay multiplier while active (`>= 1`); `None` = partition
    /// (infinite delay — transfers must wait the window out).
    pub delay_factor: Option<f64>,
}

/// A malformed fault plan, reported by [`FaultPlan::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A node id outside the world's compute nodes.
    UnknownNode {
        /// The offending id.
        node: ComputeNodeId,
        /// How many compute nodes the world has.
        nodes: usize,
    },
    /// A window with a non-finite or negative start, or an end at or
    /// before its start.
    InvalidWindow {
        /// Window start.
        down_at_s: f64,
        /// Window end, if any.
        up_at_s: Option<f64>,
    },
    /// A link delay factor below 1 or non-finite.
    InvalidDelayFactor(f64),
    /// A link fault whose endpoints coincide.
    SelfLink(ComputeNodeId),
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::UnknownNode { node, nodes } => {
                write!(
                    f,
                    "fault on unknown node {node} (world has {nodes} compute nodes)"
                )
            }
            FaultPlanError::InvalidWindow { down_at_s, up_at_s } => {
                write!(f, "invalid fault window [{down_at_s}, {up_at_s:?})")
            }
            FaultPlanError::InvalidDelayFactor(x) => {
                write!(f, "link delay factor {x} must be finite and >= 1")
            }
            FaultPlanError::SelfLink(v) => write!(f, "link fault from {v} to itself"),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// The full fault schedule of one run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Node outage windows.
    #[serde(default)]
    pub node_outages: Vec<NodeOutage>,
    /// Link trouble windows.
    #[serde(default)]
    pub link_faults: Vec<LinkFault>,
}

fn window_ok(down_at_s: f64, up_at_s: Option<f64>) -> bool {
    if !(down_at_s.is_finite() && down_at_s >= 0.0) {
        return false;
    }
    match up_at_s {
        None => true,
        Some(up) => up.is_finite() && up > down_at_s,
    }
}

impl FaultPlan {
    /// A plan with no faults at all.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.node_outages.is_empty() && self.link_faults.is_empty()
    }

    /// Upgrades the legacy permanent-crash list into a plan.
    pub fn from_failures(faults: &[NodeFailure]) -> Self {
        Self {
            node_outages: faults
                .iter()
                .map(|f| NodeOutage {
                    node: f.node,
                    down_at_s: f.at_s,
                    up_at_s: None,
                })
                .collect(),
            link_faults: Vec::new(),
        }
    }

    /// Checks every window against a world with `nodes` compute nodes.
    pub fn validate(&self, nodes: usize) -> Result<(), FaultPlanError> {
        for o in &self.node_outages {
            if o.node.index() >= nodes {
                return Err(FaultPlanError::UnknownNode {
                    node: o.node,
                    nodes,
                });
            }
            if !window_ok(o.down_at_s, o.up_at_s) {
                return Err(FaultPlanError::InvalidWindow {
                    down_at_s: o.down_at_s,
                    up_at_s: o.up_at_s,
                });
            }
        }
        for l in &self.link_faults {
            for v in [l.a, l.b] {
                if v.index() >= nodes {
                    return Err(FaultPlanError::UnknownNode { node: v, nodes });
                }
            }
            if l.a == l.b {
                return Err(FaultPlanError::SelfLink(l.a));
            }
            if !window_ok(l.down_at_s, l.up_at_s) {
                return Err(FaultPlanError::InvalidWindow {
                    down_at_s: l.down_at_s,
                    up_at_s: l.up_at_s,
                });
            }
            if let Some(x) = l.delay_factor {
                if !(x.is_finite() && x >= 1.0) {
                    return Err(FaultPlanError::InvalidDelayFactor(x));
                }
            }
        }
        Ok(())
    }

    /// The delay multiplier on the path between `u` and `v` at time `t_s`:
    /// `1.0` when untroubled, the largest active `delay_factor` when
    /// degraded, `f64::INFINITY` when an active window partitions the pair.
    pub fn link_factor(&self, u: ComputeNodeId, v: ComputeNodeId, t_s: f64) -> f64 {
        if u == v {
            return 1.0;
        }
        let mut factor = 1.0f64;
        for l in &self.link_faults {
            let hits = (l.a == u && l.b == v) || (l.a == v && l.b == u);
            if !hits {
                continue;
            }
            let active = t_s >= l.down_at_s && l.up_at_s.is_none_or(|up| t_s < up);
            if !active {
                continue;
            }
            match l.delay_factor {
                None => return f64::INFINITY,
                Some(x) => factor = factor.max(x),
            }
        }
        factor
    }

    /// Whether the path between `u` and `v` is hard-partitioned at `t_s`.
    pub fn partitioned(&self, u: ComputeNodeId, v: ComputeNodeId, t_s: f64) -> bool {
        self.link_factor(u, v, t_s).is_infinite()
    }

    /// The earliest instant `>= t_s` at which the pair stops being
    /// partitioned, if any active partition window ends.
    pub fn partition_heals_at(&self, u: ComputeNodeId, v: ComputeNodeId, t_s: f64) -> Option<f64> {
        let mut heal: Option<f64> = None;
        for l in &self.link_faults {
            let hits = (l.a == u && l.b == v) || (l.a == v && l.b == u);
            if !hits || l.delay_factor.is_some() {
                continue;
            }
            let active = t_s >= l.down_at_s && l.up_at_s.is_none_or(|up| t_s < up);
            if active {
                match l.up_at_s {
                    None => return None, // never heals
                    Some(up) => heal = Some(heal.map_or(up, |h: f64| h.max(up))),
                }
            }
        }
        heal
    }
}

/// MTBF/MTTR fault-plan generator for availability sweeps.
///
/// A `node_fraction` of compute nodes (and a `link_fraction` of compute
/// pairs) is marked fault-prone; each draws alternating up-times from
/// `Exp(1/mtbf)` and repair times from `Exp(1/mttr)` until `horizon_s`.
/// Everything is drawn from one seeded [`SmallRng`], so equal configs
/// yield byte-equal plans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Fraction of compute nodes that suffer outages (ceil'd to a count).
    pub node_fraction: f64,
    /// Mean time between node failures, seconds.
    pub node_mtbf_s: f64,
    /// Mean time to repair a node, seconds.
    pub node_mttr_s: f64,
    /// Fraction of compute-node pairs that suffer link trouble.
    pub link_fraction: f64,
    /// Mean time between link faults, seconds.
    pub link_mtbf_s: f64,
    /// Mean time to heal a link, seconds.
    pub link_mttr_s: f64,
    /// Delay multiplier of a degraded (non-partition) link window.
    pub degrade_factor: f64,
    /// Probability a link window is a full partition instead of a
    /// degradation.
    pub partition_prob: f64,
    /// Generation horizon, simulated seconds.
    pub horizon_s: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            node_fraction: 0.1,
            node_mtbf_s: 60.0,
            node_mttr_s: 25.0,
            link_fraction: 0.0,
            link_mtbf_s: 60.0,
            link_mttr_s: 10.0,
            degrade_factor: 8.0,
            partition_prob: 0.3,
            horizon_s: 240.0,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// Scales the failure intensity: the fraction of fault-prone nodes.
    pub fn with_node_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "node fraction must be in [0, 1]");
        self.node_fraction = f;
        self
    }

    /// Sets the generator seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn draw_exp(rng: &mut SmallRng, mean_s: f64) -> f64 {
        // Inverse CDF; clamp the uniform away from 0 so ln stays finite.
        -mean_s * rng.gen::<f64>().max(1e-12).ln()
    }

    fn draw_windows(
        rng: &mut SmallRng,
        mtbf_s: f64,
        mttr_s: f64,
        horizon_s: f64,
    ) -> Vec<(f64, f64)> {
        let mut windows = Vec::new();
        let mut t = Self::draw_exp(rng, mtbf_s);
        while t < horizon_s && windows.len() < 64 {
            let dur = Self::draw_exp(rng, mttr_s).max(1e-3);
            windows.push((t, t + dur));
            t += dur + Self::draw_exp(rng, mtbf_s);
        }
        windows
    }

    /// Draws a deterministic plan for a world with `nodes` compute nodes.
    ///
    /// The first `ceil(node_fraction * nodes)` nodes of a seeded shuffle
    /// are fault-prone (so scanning the fraction grows the *same* fault
    /// set), and similarly for pairs.
    pub fn generate(&self, nodes: usize) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xFA17_7E57);
        let mut plan = FaultPlan::empty();

        // Fault-prone nodes: partial Fisher-Yates prefix.
        let mut ids: Vec<u32> = (0..nodes as u32).collect();
        for i in (1..ids.len()).rev() {
            ids.swap(i, rng.gen_range(0..=i));
        }
        let prone = ((self.node_fraction * nodes as f64).ceil() as usize).min(nodes);
        for &id in &ids[..prone] {
            for (down, up) in
                Self::draw_windows(&mut rng, self.node_mtbf_s, self.node_mttr_s, self.horizon_s)
            {
                plan.node_outages.push(NodeOutage {
                    node: ComputeNodeId(id),
                    down_at_s: down,
                    up_at_s: Some(up),
                });
            }
        }

        // Fault-prone pairs.
        if self.link_fraction > 0.0 && nodes >= 2 {
            let mut pairs: Vec<(u32, u32)> = (0..nodes as u32)
                .flat_map(|i| ((i + 1)..nodes as u32).map(move |j| (i, j)))
                .collect();
            for i in (1..pairs.len()).rev() {
                pairs.swap(i, rng.gen_range(0..=i));
            }
            let prone =
                ((self.link_fraction * pairs.len() as f64).ceil() as usize).min(pairs.len());
            for &(a, b) in &pairs[..prone] {
                for (down, up) in
                    Self::draw_windows(&mut rng, self.link_mtbf_s, self.link_mttr_s, self.horizon_s)
                {
                    let delay_factor = if rng.gen_bool(self.partition_prob) {
                        None
                    } else {
                        Some(self.degrade_factor.max(1.0))
                    };
                    plan.link_faults.push(LinkFault {
                        a: ComputeNodeId(a),
                        b: ComputeNodeId(b),
                        down_at_s: down,
                        up_at_s: Some(up),
                        delay_factor,
                    });
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_valid_and_transparent() {
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        assert!(plan.validate(4).is_ok());
        let a = ComputeNodeId(0);
        let b = ComputeNodeId(1);
        assert_eq!(plan.link_factor(a, b, 0.0), 1.0);
        assert!(!plan.partitioned(a, b, 10.0));
    }

    #[test]
    fn from_failures_upgrades_legacy_crashes() {
        let plan = FaultPlan::from_failures(&[NodeFailure {
            node: ComputeNodeId(2),
            at_s: 1.5,
        }]);
        assert_eq!(plan.node_outages.len(), 1);
        assert_eq!(plan.node_outages[0].up_at_s, None);
        assert!(plan.validate(3).is_ok());
        assert!(plan.validate(2).is_err());
    }

    #[test]
    fn validate_rejects_malformed_windows() {
        let mut plan = FaultPlan::empty();
        plan.node_outages.push(NodeOutage {
            node: ComputeNodeId(0),
            down_at_s: 5.0,
            up_at_s: Some(3.0), // ends before it starts
        });
        assert!(matches!(
            plan.validate(4),
            Err(FaultPlanError::InvalidWindow { .. })
        ));

        let mut plan = FaultPlan::empty();
        plan.node_outages.push(NodeOutage {
            node: ComputeNodeId(0),
            down_at_s: f64::NAN,
            up_at_s: None,
        });
        assert!(plan.validate(4).is_err());

        let mut plan = FaultPlan::empty();
        plan.link_faults.push(LinkFault {
            a: ComputeNodeId(0),
            b: ComputeNodeId(0),
            down_at_s: 0.0,
            up_at_s: None,
            delay_factor: Some(2.0),
        });
        assert!(matches!(plan.validate(4), Err(FaultPlanError::SelfLink(_))));

        let mut plan = FaultPlan::empty();
        plan.link_faults.push(LinkFault {
            a: ComputeNodeId(0),
            b: ComputeNodeId(1),
            down_at_s: 0.0,
            up_at_s: None,
            delay_factor: Some(0.5), // a speed-up is not a fault
        });
        assert!(matches!(
            plan.validate(4),
            Err(FaultPlanError::InvalidDelayFactor(_))
        ));
    }

    #[test]
    fn validate_reports_unknown_nodes() {
        let plan = FaultPlan::from_failures(&[NodeFailure {
            node: ComputeNodeId(99),
            at_s: 0.0,
        }]);
        let err = plan.validate(4).unwrap_err();
        assert!(err.to_string().contains("fault on unknown node"));
    }

    #[test]
    fn link_factor_windows_and_partitions() {
        let a = ComputeNodeId(0);
        let b = ComputeNodeId(1);
        let c = ComputeNodeId(2);
        let plan = FaultPlan {
            node_outages: Vec::new(),
            link_faults: vec![
                LinkFault {
                    a,
                    b,
                    down_at_s: 10.0,
                    up_at_s: Some(20.0),
                    delay_factor: Some(4.0),
                },
                LinkFault {
                    a: b,
                    b: c,
                    down_at_s: 5.0,
                    up_at_s: Some(15.0),
                    delay_factor: None,
                },
            ],
        };
        assert_eq!(plan.link_factor(a, b, 9.9), 1.0);
        assert_eq!(plan.link_factor(a, b, 10.0), 4.0);
        assert_eq!(plan.link_factor(b, a, 19.9), 4.0); // symmetric
        assert_eq!(plan.link_factor(a, b, 20.0), 1.0); // half-open window
        assert!(plan.partitioned(b, c, 5.0));
        assert!(!plan.partitioned(b, c, 15.0));
        assert_eq!(plan.partition_heals_at(b, c, 5.0), Some(15.0));
        assert_eq!(plan.partition_heals_at(b, c, 15.0), None);
        assert_eq!(plan.partition_heals_at(a, b, 12.0), None); // degraded, not cut
        assert_eq!(plan.link_factor(a, a, 12.0), 1.0);
        assert!(plan.validate(3).is_ok());
    }

    #[test]
    fn generator_is_deterministic_and_valid() {
        let cfg = FaultConfig {
            node_fraction: 0.25,
            link_fraction: 0.05,
            ..Default::default()
        };
        let a = cfg.generate(20);
        let b = cfg.generate(20);
        assert_eq!(a, b);
        assert!(a.validate(20).is_ok());
        assert!(
            !a.node_outages.is_empty(),
            "a quarter of 20 nodes must fault"
        );
        for o in &a.node_outages {
            assert!(o.up_at_s.expect("generated outages are transient") > o.down_at_s);
        }
    }

    #[test]
    fn generator_scales_with_fraction() {
        let lo = FaultConfig::default().with_node_fraction(0.1).generate(20);
        let hi = FaultConfig::default().with_node_fraction(0.5).generate(20);
        let nodes = |p: &FaultPlan| {
            let mut ids: Vec<u32> = p.node_outages.iter().map(|o| o.node.0).collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        };
        assert!(nodes(&lo).len() <= nodes(&hi).len());
        assert!(nodes(&hi).len() >= 10 * 4 / 10); // ceil(0.5 * 20) should be hit unless draws land late
    }

    #[test]
    fn zero_fraction_generates_nothing() {
        let plan = FaultConfig::default().with_node_fraction(0.0).generate(20);
        assert!(plan.node_outages.is_empty());
        assert!(plan.is_empty());
    }
}
