//! Fault injection: deterministic fault plans and MTBF/MTTR generators.
//!
//! A [`FaultPlan`] is the full schedule of infrastructure trouble one
//! testbed run suffers:
//!
//! * [`NodeOutage`] — a VM goes down at `down_at_s` and (optionally) comes
//!   back at `up_at_s`. While down it serves nothing: queued and in-flight
//!   work is lost, arriving queries fail over to live replicas. A missing
//!   `up_at_s` is a permanent crash (the legacy
//!   [`NodeFailure`](crate::sim::NodeFailure) semantics).
//! * [`LinkFault`] — the minimum-delay path between two compute endpoints
//!   degrades by `delay_factor` (or partitions entirely when the factor is
//!   `None`) for a window. Result shipping and repair transfers crossing
//!   the pair during the window pay the factor; a partition blocks them
//!   until retried.
//!
//! Plans are plain serde values, so they round-trip through JSON
//! (`edgerep solve --fault-plan`, `repro ext-availability --fault-plan`)
//! and are validated with [`FaultPlan::validate`] before a run —
//! malformed plans surface as [`FaultPlanError`]s, never panics.
//!
//! [`FaultConfig`] draws a plan from MTBF/MTTR exponentials with a seeded
//! RNG, so availability sweeps can scan failure rates deterministically.

use edgerep_model::ComputeNodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::sim::NodeFailure;

/// One node outage window: down at `down_at_s`, back at `up_at_s`
/// (`None` = permanent crash).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeOutage {
    /// The compute node that goes down.
    pub node: ComputeNodeId,
    /// Outage start, simulated seconds.
    pub down_at_s: f64,
    /// Recovery instant, simulated seconds; `None` never recovers.
    pub up_at_s: Option<f64>,
}

/// One link-trouble window on the path between two compute endpoints.
///
/// The testbed's delay model is endpoint-to-endpoint (precomputed
/// minimum-delay paths), so a "link" here is the path between a pair of
/// compute nodes: every transfer between `a` and `b` (either direction)
/// during the window is scaled by `delay_factor`, or blocked entirely when
/// the factor is `None` (a partition).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    /// One endpoint.
    pub a: ComputeNodeId,
    /// The other endpoint.
    pub b: ComputeNodeId,
    /// Window start, simulated seconds.
    pub down_at_s: f64,
    /// Window end, simulated seconds; `None` never heals.
    pub up_at_s: Option<f64>,
    /// Path-delay multiplier while active (`>= 1`); `None` = partition
    /// (infinite delay — transfers must wait the window out).
    pub delay_factor: Option<f64>,
}

/// A malformed fault plan, reported by [`FaultPlan::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A node id outside the world's compute nodes.
    UnknownNode {
        /// The offending id.
        node: ComputeNodeId,
        /// How many compute nodes the world has.
        nodes: usize,
    },
    /// A window with a non-finite or negative start, or an end at or
    /// before its start.
    InvalidWindow {
        /// Window start.
        down_at_s: f64,
        /// Window end, if any.
        up_at_s: Option<f64>,
    },
    /// A link delay factor below 1 or non-finite.
    InvalidDelayFactor(f64),
    /// A link fault whose endpoints coincide.
    SelfLink(ComputeNodeId),
    /// More scheduled windows than any plausible run needs — almost
    /// always a runaway storm configuration.
    TooManyOutages {
        /// Scheduled windows (node outages + link faults).
        count: usize,
        /// The accepted ceiling.
        limit: usize,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::UnknownNode { node, nodes } => {
                write!(
                    f,
                    "fault on unknown node {node} (world has {nodes} compute nodes)"
                )
            }
            FaultPlanError::InvalidWindow { down_at_s, up_at_s } => {
                write!(f, "invalid fault window [{down_at_s}, {up_at_s:?})")
            }
            FaultPlanError::InvalidDelayFactor(x) => {
                write!(f, "link delay factor {x} must be finite and >= 1")
            }
            FaultPlanError::SelfLink(v) => write!(f, "link fault from {v} to itself"),
            FaultPlanError::TooManyOutages { count, limit } => {
                write!(f, "{count} fault windows exceed the {limit} ceiling")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// The full fault schedule of one run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Node outage windows.
    #[serde(default)]
    pub node_outages: Vec<NodeOutage>,
    /// Link trouble windows.
    #[serde(default)]
    pub link_faults: Vec<LinkFault>,
}

fn window_ok(down_at_s: f64, up_at_s: Option<f64>) -> bool {
    if !(down_at_s.is_finite() && down_at_s >= 0.0) {
        return false;
    }
    match up_at_s {
        None => true,
        Some(up) => up.is_finite() && up > down_at_s,
    }
}

impl FaultPlan {
    /// A plan with no faults at all.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.node_outages.is_empty() && self.link_faults.is_empty()
    }

    /// Upgrades the legacy permanent-crash list into a plan.
    pub fn from_failures(faults: &[NodeFailure]) -> Self {
        Self {
            node_outages: faults
                .iter()
                .map(|f| NodeOutage {
                    node: f.node,
                    down_at_s: f.at_s,
                    up_at_s: None,
                })
                .collect(),
            link_faults: Vec::new(),
        }
    }

    /// Ceiling on scheduled windows accepted by [`FaultPlan::validate`].
    pub const MAX_WINDOWS: usize = 100_000;

    /// Checks every window against a world with `nodes` compute nodes.
    pub fn validate(&self, nodes: usize) -> Result<(), FaultPlanError> {
        let count = self.node_outages.len() + self.link_faults.len();
        if count > Self::MAX_WINDOWS {
            return Err(FaultPlanError::TooManyOutages {
                count,
                limit: Self::MAX_WINDOWS,
            });
        }
        for o in &self.node_outages {
            if o.node.index() >= nodes {
                return Err(FaultPlanError::UnknownNode {
                    node: o.node,
                    nodes,
                });
            }
            if !window_ok(o.down_at_s, o.up_at_s) {
                return Err(FaultPlanError::InvalidWindow {
                    down_at_s: o.down_at_s,
                    up_at_s: o.up_at_s,
                });
            }
        }
        for l in &self.link_faults {
            for v in [l.a, l.b] {
                if v.index() >= nodes {
                    return Err(FaultPlanError::UnknownNode { node: v, nodes });
                }
            }
            if l.a == l.b {
                return Err(FaultPlanError::SelfLink(l.a));
            }
            if !window_ok(l.down_at_s, l.up_at_s) {
                return Err(FaultPlanError::InvalidWindow {
                    down_at_s: l.down_at_s,
                    up_at_s: l.up_at_s,
                });
            }
            if let Some(x) = l.delay_factor {
                if !(x.is_finite() && x >= 1.0) {
                    return Err(FaultPlanError::InvalidDelayFactor(x));
                }
            }
        }
        Ok(())
    }

    /// The delay multiplier on the path between `u` and `v` at time `t_s`:
    /// `1.0` when untroubled, the largest active `delay_factor` when
    /// degraded, `f64::INFINITY` when an active window partitions the pair.
    pub fn link_factor(&self, u: ComputeNodeId, v: ComputeNodeId, t_s: f64) -> f64 {
        if u == v {
            return 1.0;
        }
        let mut factor = 1.0f64;
        for l in &self.link_faults {
            let hits = (l.a == u && l.b == v) || (l.a == v && l.b == u);
            if !hits {
                continue;
            }
            let active = t_s >= l.down_at_s && l.up_at_s.is_none_or(|up| t_s < up);
            if !active {
                continue;
            }
            match l.delay_factor {
                None => return f64::INFINITY,
                Some(x) => factor = factor.max(x),
            }
        }
        factor
    }

    /// Whether the path between `u` and `v` is hard-partitioned at `t_s`.
    pub fn partitioned(&self, u: ComputeNodeId, v: ComputeNodeId, t_s: f64) -> bool {
        self.link_factor(u, v, t_s).is_infinite()
    }

    /// The earliest instant `>= t_s` at which the pair stops being
    /// partitioned, if any active partition window ends.
    pub fn partition_heals_at(&self, u: ComputeNodeId, v: ComputeNodeId, t_s: f64) -> Option<f64> {
        let mut heal: Option<f64> = None;
        for l in &self.link_faults {
            let hits = (l.a == u && l.b == v) || (l.a == v && l.b == u);
            if !hits || l.delay_factor.is_some() {
                continue;
            }
            let active = t_s >= l.down_at_s && l.up_at_s.is_none_or(|up| t_s < up);
            if active {
                match l.up_at_s {
                    None => return None, // never heals
                    Some(up) => heal = Some(heal.map_or(up, |h: f64| h.max(up))),
                }
            }
        }
        heal
    }
}

/// MTBF/MTTR fault-plan generator for availability sweeps.
///
/// A `node_fraction` of compute nodes (and a `link_fraction` of compute
/// pairs) is marked fault-prone; each draws alternating up-times from
/// `Exp(1/mtbf)` and repair times from `Exp(1/mttr)` until `horizon_s`.
/// Everything is drawn from one seeded [`SmallRng`], so equal configs
/// yield byte-equal plans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Fraction of compute nodes that suffer outages (ceil'd to a count).
    pub node_fraction: f64,
    /// Mean time between node failures, seconds.
    pub node_mtbf_s: f64,
    /// Mean time to repair a node, seconds.
    pub node_mttr_s: f64,
    /// Fraction of compute-node pairs that suffer link trouble.
    pub link_fraction: f64,
    /// Mean time between link faults, seconds.
    pub link_mtbf_s: f64,
    /// Mean time to heal a link, seconds.
    pub link_mttr_s: f64,
    /// Delay multiplier of a degraded (non-partition) link window.
    pub degrade_factor: f64,
    /// Probability a link window is a full partition instead of a
    /// degradation.
    pub partition_prob: f64,
    /// Generation horizon, simulated seconds.
    pub horizon_s: f64,
    /// Correlated failure storms: how many rack/region blasts to
    /// schedule across the horizon (`0` disables storms entirely — and
    /// adds **no** RNG draws, so plans stay byte-equal to pre-storm
    /// configs).
    pub storm_count: usize,
    /// Fraction of the struck region's nodes a storm takes down.
    pub storm_region_fraction: f64,
    /// Stagger window: victims go down within this many seconds of the
    /// storm trigger.
    pub storm_window_s: f64,
    /// Mean outage duration of a storm victim, seconds.
    pub storm_mttr_s: f64,
    /// Whether the struck region is also network-isolated (its paths to
    /// every outside node partition) for the storm's span — the
    /// blast-radius semantics of a ToR/aggregation failure.
    pub storm_isolate: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            node_fraction: 0.1,
            node_mtbf_s: 60.0,
            node_mttr_s: 25.0,
            link_fraction: 0.0,
            link_mtbf_s: 60.0,
            link_mttr_s: 10.0,
            degrade_factor: 8.0,
            partition_prob: 0.3,
            horizon_s: 240.0,
            storm_count: 0,
            storm_region_fraction: 0.75,
            storm_window_s: 5.0,
            storm_mttr_s: 150.0,
            storm_isolate: true,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// Scales the failure intensity: the fraction of fault-prone nodes.
    pub fn with_node_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "node fraction must be in [0, 1]");
        self.node_fraction = f;
        self
    }

    /// Sets the generator seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Schedules `count` correlated failure storms.
    pub fn with_storms(mut self, count: usize) -> Self {
        self.storm_count = count;
        self
    }

    fn draw_exp(rng: &mut SmallRng, mean_s: f64) -> f64 {
        // Inverse CDF; clamp the uniform away from 0 so ln stays finite.
        -mean_s * rng.gen::<f64>().max(1e-12).ln()
    }

    fn draw_windows(
        rng: &mut SmallRng,
        mtbf_s: f64,
        mttr_s: f64,
        horizon_s: f64,
    ) -> Vec<(f64, f64)> {
        let mut windows = Vec::new();
        let mut t = Self::draw_exp(rng, mtbf_s);
        while t < horizon_s && windows.len() < 64 {
            let dur = Self::draw_exp(rng, mttr_s).max(1e-3);
            windows.push((t, t + dur));
            t += dur + Self::draw_exp(rng, mtbf_s);
        }
        windows
    }

    /// Draws a deterministic plan for a world with `nodes` compute nodes.
    ///
    /// The first `ceil(node_fraction * nodes)` nodes of a seeded shuffle
    /// are fault-prone (so scanning the fraction grows the *same* fault
    /// set), and similarly for pairs. Storms (if any) treat the whole
    /// world as one region; use [`FaultConfig::generate_with_regions`]
    /// for a real blast-radius grouping.
    pub fn generate(&self, nodes: usize) -> FaultPlan {
        self.generate_with_regions(&vec![0; nodes])
    }

    /// Like [`FaultConfig::generate`], but with a region id per node so
    /// correlated storms have a blast radius: each storm picks a region,
    /// takes `storm_region_fraction` of its members down within
    /// `storm_window_s` of the trigger, and (when `storm_isolate` is on)
    /// partitions every member's path to the outside for the storm span.
    pub fn generate_with_regions(&self, region_of: &[u32]) -> FaultPlan {
        let nodes = region_of.len();
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xFA17_7E57);
        let mut plan = FaultPlan::empty();

        // Fault-prone nodes: partial Fisher-Yates prefix.
        let mut ids: Vec<u32> = (0..nodes as u32).collect();
        for i in (1..ids.len()).rev() {
            ids.swap(i, rng.gen_range(0..=i));
        }
        let prone = ((self.node_fraction * nodes as f64).ceil() as usize).min(nodes);
        for &id in &ids[..prone] {
            for (down, up) in
                Self::draw_windows(&mut rng, self.node_mtbf_s, self.node_mttr_s, self.horizon_s)
            {
                plan.node_outages.push(NodeOutage {
                    node: ComputeNodeId(id),
                    down_at_s: down,
                    up_at_s: Some(up),
                });
            }
        }

        // Fault-prone pairs.
        if self.link_fraction > 0.0 && nodes >= 2 {
            let mut pairs: Vec<(u32, u32)> = (0..nodes as u32)
                .flat_map(|i| ((i + 1)..nodes as u32).map(move |j| (i, j)))
                .collect();
            for i in (1..pairs.len()).rev() {
                pairs.swap(i, rng.gen_range(0..=i));
            }
            let prone =
                ((self.link_fraction * pairs.len() as f64).ceil() as usize).min(pairs.len());
            for &(a, b) in &pairs[..prone] {
                for (down, up) in
                    Self::draw_windows(&mut rng, self.link_mtbf_s, self.link_mttr_s, self.horizon_s)
                {
                    let delay_factor = if rng.gen_bool(self.partition_prob) {
                        None
                    } else {
                        Some(self.degrade_factor.max(1.0))
                    };
                    plan.link_faults.push(LinkFault {
                        a: ComputeNodeId(a),
                        b: ComputeNodeId(b),
                        down_at_s: down,
                        up_at_s: Some(up),
                        delay_factor,
                    });
                }
            }
        }

        // Correlated failure storms. Guarded so a disabled storm config
        // draws nothing: existing seeds keep producing byte-equal plans.
        if self.storm_count > 0 && nodes > 0 {
            let mut region_ids: Vec<u32> = region_of.to_vec();
            region_ids.sort_unstable();
            region_ids.dedup();
            let seg = self.horizon_s / self.storm_count as f64;
            for k in 0..self.storm_count {
                let trigger = k as f64 * seg + rng.gen::<f64>() * (0.3 * seg);
                let region = region_ids[rng.gen_range(0..region_ids.len())];
                let mut members: Vec<u32> = (0..nodes as u32)
                    .filter(|&i| region_of[i as usize] == region)
                    .collect();
                for i in (1..members.len()).rev() {
                    members.swap(i, rng.gen_range(0..=i));
                }
                let victims = ((self.storm_region_fraction * members.len() as f64).ceil()
                    as usize)
                    .min(members.len());
                let span_end = trigger + self.storm_window_s + self.storm_mttr_s;
                for &m in &members[..victims] {
                    let down = trigger + rng.gen::<f64>() * self.storm_window_s;
                    let dur = Self::draw_exp(&mut rng, self.storm_mttr_s).max(1e-3);
                    plan.node_outages.push(NodeOutage {
                        node: ComputeNodeId(m),
                        down_at_s: down,
                        up_at_s: Some(down + dur),
                    });
                }
                if self.storm_isolate {
                    for &m in &members {
                        for o in 0..nodes as u32 {
                            if region_of[o as usize] == region {
                                continue;
                            }
                            plan.link_faults.push(LinkFault {
                                a: ComputeNodeId(m),
                                b: ComputeNodeId(o),
                                down_at_s: trigger,
                                up_at_s: Some(span_end),
                                delay_factor: None,
                            });
                        }
                    }
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_valid_and_transparent() {
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        assert!(plan.validate(4).is_ok());
        let a = ComputeNodeId(0);
        let b = ComputeNodeId(1);
        assert_eq!(plan.link_factor(a, b, 0.0), 1.0);
        assert!(!plan.partitioned(a, b, 10.0));
    }

    #[test]
    fn from_failures_upgrades_legacy_crashes() {
        let plan = FaultPlan::from_failures(&[NodeFailure {
            node: ComputeNodeId(2),
            at_s: 1.5,
        }]);
        assert_eq!(plan.node_outages.len(), 1);
        assert_eq!(plan.node_outages[0].up_at_s, None);
        assert!(plan.validate(3).is_ok());
        assert!(plan.validate(2).is_err());
    }

    #[test]
    fn validate_rejects_malformed_windows() {
        let mut plan = FaultPlan::empty();
        plan.node_outages.push(NodeOutage {
            node: ComputeNodeId(0),
            down_at_s: 5.0,
            up_at_s: Some(3.0), // ends before it starts
        });
        assert!(matches!(
            plan.validate(4),
            Err(FaultPlanError::InvalidWindow { .. })
        ));

        let mut plan = FaultPlan::empty();
        plan.node_outages.push(NodeOutage {
            node: ComputeNodeId(0),
            down_at_s: f64::NAN,
            up_at_s: None,
        });
        assert!(plan.validate(4).is_err());

        let mut plan = FaultPlan::empty();
        plan.link_faults.push(LinkFault {
            a: ComputeNodeId(0),
            b: ComputeNodeId(0),
            down_at_s: 0.0,
            up_at_s: None,
            delay_factor: Some(2.0),
        });
        assert!(matches!(plan.validate(4), Err(FaultPlanError::SelfLink(_))));

        let mut plan = FaultPlan::empty();
        plan.link_faults.push(LinkFault {
            a: ComputeNodeId(0),
            b: ComputeNodeId(1),
            down_at_s: 0.0,
            up_at_s: None,
            delay_factor: Some(0.5), // a speed-up is not a fault
        });
        assert!(matches!(
            plan.validate(4),
            Err(FaultPlanError::InvalidDelayFactor(_))
        ));
    }

    #[test]
    fn validate_reports_unknown_nodes() {
        let plan = FaultPlan::from_failures(&[NodeFailure {
            node: ComputeNodeId(99),
            at_s: 0.0,
        }]);
        let err = plan.validate(4).unwrap_err();
        assert!(err.to_string().contains("fault on unknown node"));
    }

    #[test]
    fn link_factor_windows_and_partitions() {
        let a = ComputeNodeId(0);
        let b = ComputeNodeId(1);
        let c = ComputeNodeId(2);
        let plan = FaultPlan {
            node_outages: Vec::new(),
            link_faults: vec![
                LinkFault {
                    a,
                    b,
                    down_at_s: 10.0,
                    up_at_s: Some(20.0),
                    delay_factor: Some(4.0),
                },
                LinkFault {
                    a: b,
                    b: c,
                    down_at_s: 5.0,
                    up_at_s: Some(15.0),
                    delay_factor: None,
                },
            ],
        };
        assert_eq!(plan.link_factor(a, b, 9.9), 1.0);
        assert_eq!(plan.link_factor(a, b, 10.0), 4.0);
        assert_eq!(plan.link_factor(b, a, 19.9), 4.0); // symmetric
        assert_eq!(plan.link_factor(a, b, 20.0), 1.0); // half-open window
        assert!(plan.partitioned(b, c, 5.0));
        assert!(!plan.partitioned(b, c, 15.0));
        assert_eq!(plan.partition_heals_at(b, c, 5.0), Some(15.0));
        assert_eq!(plan.partition_heals_at(b, c, 15.0), None);
        assert_eq!(plan.partition_heals_at(a, b, 12.0), None); // degraded, not cut
        assert_eq!(plan.link_factor(a, a, 12.0), 1.0);
        assert!(plan.validate(3).is_ok());
    }

    #[test]
    fn generator_is_deterministic_and_valid() {
        let cfg = FaultConfig {
            node_fraction: 0.25,
            link_fraction: 0.05,
            ..Default::default()
        };
        let a = cfg.generate(20);
        let b = cfg.generate(20);
        assert_eq!(a, b);
        assert!(a.validate(20).is_ok());
        assert!(
            !a.node_outages.is_empty(),
            "a quarter of 20 nodes must fault"
        );
        for o in &a.node_outages {
            assert!(o.up_at_s.expect("generated outages are transient") > o.down_at_s);
        }
    }

    #[test]
    fn generator_scales_with_fraction() {
        let lo = FaultConfig::default().with_node_fraction(0.1).generate(20);
        let hi = FaultConfig::default().with_node_fraction(0.5).generate(20);
        let nodes = |p: &FaultPlan| {
            let mut ids: Vec<u32> = p.node_outages.iter().map(|o| o.node.0).collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        };
        assert!(nodes(&lo).len() <= nodes(&hi).len());
        assert!(nodes(&hi).len() >= 10 * 4 / 10); // ceil(0.5 * 20) should be hit unless draws land late
    }

    #[test]
    fn zero_fraction_generates_nothing() {
        let plan = FaultConfig::default().with_node_fraction(0.0).generate(20);
        assert!(plan.node_outages.is_empty());
        assert!(plan.is_empty());
    }

    #[test]
    fn disabled_storms_change_nothing() {
        // storm_count == 0 must add zero RNG draws: plans stay byte-equal
        // to what pre-storm configs produced for the same seed.
        let base = FaultConfig::default().with_node_fraction(0.25);
        let with_knobs = FaultConfig {
            storm_region_fraction: 1.0,
            storm_window_s: 1.0,
            storm_mttr_s: 10.0,
            ..base
        };
        assert_eq!(base.generate(20), with_knobs.generate(20));
    }

    #[test]
    fn storms_blast_a_fraction_of_one_region_within_the_window() {
        // 3 regions of 4 nodes each.
        let region_of: Vec<u32> = (0..12).map(|i| i / 4).collect();
        let cfg = FaultConfig {
            node_fraction: 0.0,
            storm_region_fraction: 0.75,
            storm_window_s: 5.0,
            storm_mttr_s: 30.0,
            storm_isolate: true,
            ..FaultConfig::default()
        }
        .with_storms(2)
        .with_seed(3);
        let plan = cfg.generate_with_regions(&region_of);
        assert_eq!(plan, cfg.generate_with_regions(&region_of), "deterministic");
        assert!(plan.validate(12).is_ok(), "storm plans must validate");
        // Two storms × ceil(0.75 * 4) victims each.
        assert_eq!(plan.node_outages.len(), 6);
        // Victims of one storm share a region and a 5 s stagger window.
        for chunk in plan.node_outages.chunks(3) {
            let r = region_of[chunk[0].node.index()];
            let lo = chunk.iter().map(|o| o.down_at_s).fold(f64::MAX, f64::min);
            for o in chunk {
                assert_eq!(region_of[o.node.index()], r, "blast stays in one region");
                assert!(o.down_at_s - lo <= 5.0 + 1e-9, "stagger bounded by window");
                assert!(o.up_at_s.unwrap() > o.down_at_s);
            }
        }
        // Isolation cuts every member↔outside pair, never intra-region.
        assert!(!plan.link_faults.is_empty());
        for l in &plan.link_faults {
            assert_ne!(region_of[l.a.index()], region_of[l.b.index()]);
            assert_eq!(l.delay_factor, None, "isolation is a partition");
        }
        // 2 storms × 4 members × 8 outside nodes.
        assert_eq!(plan.link_faults.len(), 64);
    }

    #[test]
    fn validate_rejects_runaway_plans() {
        let mut plan = FaultPlan::empty();
        for i in 0..=FaultPlan::MAX_WINDOWS {
            plan.node_outages.push(NodeOutage {
                node: ComputeNodeId((i % 4) as u32),
                down_at_s: i as f64,
                up_at_s: Some(i as f64 + 0.5),
            });
        }
        assert!(matches!(
            plan.validate(4),
            Err(FaultPlanError::TooManyOutages { .. })
        ));
    }
}
