//! Geography: regions, great-circle distances, and per-GB transfer delays.
//!
//! The paper's DC VMs sit in San Francisco, New York, Toronto and
//! Singapore; its cloudlets and users share one metro area. Transfer delay
//! per GB between two VMs is modelled as
//!
//! ```text
//! dt = 8 / bandwidth_gbps  +  propagation_negligible_for_GB_payloads
//! ```
//!
//! i.e. GB-scale payloads are bandwidth-dominated; propagation (tens of
//! ms) matters only for the tiny query messages the paper already declares
//! negligible (§2.3). Inter-region paths get WAN bandwidth, metro paths
//! get LAN/MAN bandwidth.

use serde::{Deserialize, Serialize};

/// A deployment region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Region {
    /// San Francisco (DigitalOcean SFO).
    SanFrancisco,
    /// New York (NYC).
    NewYork,
    /// Toronto (TOR).
    Toronto,
    /// Singapore (SGP).
    Singapore,
    /// The metro area hosting the cloudlets, switches and users.
    Metro,
}

impl Region {
    /// All four DC regions in the paper's order.
    pub const DC_REGIONS: [Region; 4] = [
        Region::SanFrancisco,
        Region::NewYork,
        Region::Toronto,
        Region::Singapore,
    ];

    /// Latitude/longitude in degrees.
    pub fn coordinates(self) -> (f64, f64) {
        match self {
            Region::SanFrancisco => (37.77, -122.42),
            Region::NewYork => (40.71, -74.01),
            Region::Toronto => (43.65, -79.38),
            Region::Singapore => (1.35, 103.82),
            // Place the metro near Toronto (the paper's lab is a local
            // server room; any fixed location works, this one keeps one DC
            // close and one far, like a real deployment).
            Region::Metro => (43.0, -80.0),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Region::SanFrancisco => "San Francisco",
            Region::NewYork => "New York",
            Region::Toronto => "Toronto",
            Region::Singapore => "Singapore",
            Region::Metro => "Metro",
        }
    }
}

/// Great-circle distance in kilometres.
pub fn haversine_km(a: Region, b: Region) -> f64 {
    let (lat1, lon1) = a.coordinates();
    let (lat2, lon2) = b.coordinates();
    let (phi1, phi2) = (lat1.to_radians(), lat2.to_radians());
    let dphi = (lat2 - lat1).to_radians();
    let dlambda = (lon2 - lon1).to_radians();
    let h = (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
    2.0 * 6371.0 * h.sqrt().asin()
}

/// One-way propagation delay in seconds (fibre: ~2/3 c, 1.4× route factor).
pub fn propagation_delay_s(a: Region, b: Region) -> f64 {
    let km = haversine_km(a, b);
    1.4 * km * 1000.0 / 2.0e8
}

/// Effective bandwidth between two regions in Gbit/s.
///
/// Metro-internal paths are 10G LAN; continental WAN paths 1G; the
/// trans-Pacific hop to Singapore 0.4G — round figures consistent with
/// public cloud egress measurements.
pub fn bandwidth_gbps(a: Region, b: Region) -> f64 {
    use Region::*;
    if a == b {
        return 10.0;
    }
    match (a, b) {
        (Metro, Toronto) | (Toronto, Metro) => 2.5,
        (Singapore, _) | (_, Singapore) => 0.4,
        (Metro, _) | (_, Metro) => 1.0,
        _ => 1.0,
    }
}

/// Per-GB transfer delay in seconds between two regions: bandwidth term
/// plus propagation (the latter is negligible for GB payloads but kept so
/// tiny transfers still cost something).
pub fn transfer_delay_per_gb(a: Region, b: Region) -> f64 {
    8.0 / bandwidth_gbps(a, b) + propagation_delay_s(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_sanity() {
        // SF–NY is about 4,130 km.
        let d = haversine_km(Region::SanFrancisco, Region::NewYork);
        assert!((3_900.0..4_400.0).contains(&d), "{d}");
        // Symmetric, zero on the diagonal.
        assert_eq!(
            haversine_km(Region::NewYork, Region::SanFrancisco),
            haversine_km(Region::SanFrancisco, Region::NewYork)
        );
        assert_eq!(haversine_km(Region::Toronto, Region::Toronto), 0.0);
    }

    #[test]
    fn singapore_is_farthest() {
        let from_metro = |r| haversine_km(Region::Metro, r);
        assert!(from_metro(Region::Singapore) > from_metro(Region::SanFrancisco));
        assert!(from_metro(Region::Singapore) > from_metro(Region::NewYork));
        assert!(from_metro(Region::Singapore) > from_metro(Region::Toronto));
    }

    #[test]
    fn propagation_within_physical_bounds() {
        for a in Region::DC_REGIONS {
            for b in Region::DC_REGIONS {
                let d = propagation_delay_s(a, b);
                assert!((0.0..0.3).contains(&d), "{a:?}-{b:?}: {d}");
            }
        }
    }

    #[test]
    fn transfer_delay_orders_by_bandwidth() {
        // Metro-local beats metro->Toronto beats metro->Singapore.
        let local = transfer_delay_per_gb(Region::Metro, Region::Metro);
        let tor = transfer_delay_per_gb(Region::Metro, Region::Toronto);
        let sgp = transfer_delay_per_gb(Region::Metro, Region::Singapore);
        assert!(local < tor && tor < sgp, "{local} {tor} {sgp}");
        // 10G local: 0.8 s/GB plus epsilon.
        assert!((local - 0.8).abs() < 0.05, "{local}");
    }

    #[test]
    fn metro_toronto_uses_fat_pipe() {
        assert_eq!(bandwidth_gbps(Region::Metro, Region::Toronto), 2.5);
        assert_eq!(bandwidth_gbps(Region::Toronto, Region::Metro), 2.5);
        assert_eq!(bandwidth_gbps(Region::Metro, Region::Singapore), 0.4);
    }
}
