#![warn(missing_docs)]

//! Discrete-event testbed standing in for the paper's DigitalOcean
//! deployment (§4.3).
//!
//! The paper leases 20 VMs (4 representing data centers in San Francisco,
//! New York, Toronto and Singapore; 16 representing cloudlets), adds a
//! controller and 2 switches (Fig. 6), distributes time-partitioned
//! mobile-app-usage datasets over them, and measures the volume and
//! throughput actually achieved by `Appro` vs `Popularity` placements.
//!
//! We cannot lease VMs, so this crate builds the same experiment as a
//! discrete-event simulation with real data movement and real query
//! evaluation:
//!
//! * [`geo`] — great-circle latency and bandwidth-derived per-GB transfer
//!   delays between the four regions and the metro edge;
//! * [`topology`] — the Fig. 6 topology as an
//!   [`edgerep_model::EdgeCloud`] (4 DC VMs + 16 cloudlet VMs + 2
//!   switches) plus an instance builder that sizes datasets from the
//!   synthetic mobile-app-usage trace;
//! * [`analytics`] — the query classes the paper runs (most popular apps,
//!   usage-by-hour, per-user usage patterns) executed for real over the
//!   trace records;
//! * [`event`] / [`sim`] — the simulator: a controller executes any
//!   [`edgerep_core::PlacementAlgorithm`], replicas are transferred, then
//!   queries arrive as a Poisson process and contend for node compute;
//!   **measured** response latency (queueing + processing + transfer)
//!   decides whether each query met its QoS, which is what the paper's
//!   testbed contributes over the simulation;
//! * [`sim::ConsistencyConfig`] — the §2.4 dynamic-data rule: when the
//!   new-data ratio at a dataset's origin crosses a threshold, updates
//!   propagate to every replica and the traffic is accounted.

//! * [`transfer`] — the chunked, resumable multi-source transfer engine:
//!   per-replica chunk ledgers, rarest-chunk-first swarm fetch, strict
//!   priority tiers (immediate / scheduled / background) over a per-link
//!   max-min fair-share fluid bandwidth model, selected per run via
//!   [`sim::SimConfig::transfer`];
//! * [`rolling`] / [`predict`] — multi-epoch operation under workload
//!   drift: `Static` / `Periodic` / `Predictive` replanning policies,
//!   with `Predictive` forecasting the next epoch via
//!   `edgerep-forecast`, planning on a synthesized predicted instance,
//!   and prefetching replica deltas as background transfers.

pub mod analytics;
pub mod event;
pub mod fault;
pub mod geo;
pub mod predict;
pub mod rolling;
pub mod sim;
pub mod slo;
pub mod topology;
pub mod transfer;

pub use fault::{FaultConfig, FaultPlan, FaultPlanError, LinkFault, NodeOutage};
pub use sim::{
    run_testbed, run_testbed_with_faults, try_run_testbed_with_faults, try_run_testbed_with_plan,
    ConsistencyConfig, DebugTraceConfig, NodeFailure, SimConfig, SimError, TestbedReport,
};
pub use slo::{render_slo_csv, SloSample};
pub use topology::{build_fig6_topology, build_testbed_instance, TestbedConfig, TestbedWorld};
pub use transfer::{ChunkLedger, ChunkedConfig, FlowTier, TransferModel};
