//! Adapters between the model layer and `edgerep-forecast`: extract
//! demand history from realized epoch instances, synthesize a predicted
//! [`Instance`] for the next epoch, and turn planned replica deltas into
//! prefetch transfers.
//!
//! `edgerep-forecast` deliberately never sees model types (it works on
//! plain `(home, dataset)` index pairs so it stays dependency-free);
//! everything that speaks [`Instance`] / [`Solution`] lives here.

use edgerep_core::repair::{pick_sources, RepairAction};
use edgerep_forecast::{DemandForecast, DemandKey, EpochDemand, ProfileStore, TransferLedger};
use edgerep_model::{ComputeNodeId, DatasetId, Demand, Instance, InstanceBuilder, Solution};

/// Aggregates one realized epoch into per-(home, dataset) demanded
/// volume: each query contributes the full size of every dataset it
/// demands, keyed by its home cloudlet — the same volume the paper's
/// objective counts when the query is admitted.
pub fn epoch_demand(inst: &Instance) -> EpochDemand {
    let mut demand = EpochDemand::new();
    for q in inst.query_ids() {
        let query = inst.query(q);
        for dem in &query.demands {
            demand.add(
                DemandKey::new(query.home.0, dem.dataset.0),
                inst.size(dem.dataset),
            );
        }
    }
    demand
}

/// Feeds one realized epoch's query attributes into `profiles` so the
/// predicted-instance builder can reconstruct plausible queries later.
pub fn observe_profiles(inst: &Instance, profiles: &mut ProfileStore) {
    for q in inst.query_ids() {
        let query = inst.query(q);
        for dem in &query.demands {
            profiles.observe(
                DemandKey::new(query.home.0, dem.dataset.0),
                query.compute_rate,
                query.deadline,
                dem.selectivity,
            );
        }
    }
}

/// Synthesizes the predicted instance for the next epoch: same cloud,
/// datasets and replica budget as `template`, queries invented from the
/// forecast. Each forecast cell `(home, dataset) → volume` becomes
/// `round(volume / |S_n|)` single-demand queries at that home, with
/// compute rate / deadline / selectivity taken from the cell's observed
/// profile (global mean fallback for never-observed cells). Any existing
/// [`edgerep_core::PlacementAlgorithm`] consumes the result unchanged.
pub fn build_predicted_instance(
    template: &Instance,
    forecast: &DemandForecast,
    profiles: &ProfileStore,
) -> Instance {
    let compute_count = template.cloud().compute_count() as u32;
    let mut ib = InstanceBuilder::new(template.cloud().clone(), template.max_replicas());
    for d in template.dataset_ids() {
        ib.add_dataset(template.size(d), template.dataset(d).origin);
    }
    let dataset_count = template.datasets().len() as u32;
    for (key, volume) in forecast.iter() {
        if key.home >= compute_count || key.dataset >= dataset_count {
            continue; // forecast from a different world; ignore defensively
        }
        let Some(profile) = profiles.profile_or_global(key) else {
            continue; // nothing ever observed: no way to shape a query
        };
        let d = DatasetId(key.dataset);
        let queries = (volume / template.size(d)).round() as usize;
        for _ in 0..queries {
            ib.add_query(
                ComputeNodeId(key.home),
                vec![Demand::new(d, profile.selectivity)],
                profile.compute_rate,
                profile.deadline,
            );
        }
    }
    ib.build()
        .expect("predicted instance inherits validity from observed queries")
}

/// Marks every replica of `sol` (plus all dataset origins) as already
/// materialized, without charging the ledger — used after the cold-start
/// epoch, whose placement traffic is accounted as ordinary migration.
pub fn note_materialized(inst: &Instance, sol: &Solution, ledger: &mut TransferLedger) {
    for d in inst.dataset_ids() {
        ledger.preload(d.0, inst.dataset(d).origin.0);
        for &v in sol.replicas_of(d) {
            ledger.preload(d.0, v.0);
        }
    }
}

/// Plans the background transfers that realize `next`'s replica layout
/// before the next epoch opens. Each (dataset, node) pair the ledger has
/// never paid for becomes a [`RepairAction`] (reusing the repair
/// machinery's nearest-live-holder source selection against the
/// `current` layout); pairs already materialized — origins, the cold-
/// start layout, or any copy prefetched in an earlier epoch and since
/// kept cold — move nothing. Returns the actions and total GB charged.
pub fn plan_prefetch(
    inst: &Instance,
    current: &Solution,
    next: &Solution,
    ledger: &mut TransferLedger,
) -> (Vec<RepairAction>, f64) {
    let alive = vec![true; inst.cloud().compute_count()];
    let mut actions = Vec::new();
    let mut total_gb = 0.0;
    for d in inst.dataset_ids() {
        let origin = inst.dataset(d).origin;
        ledger.preload(d.0, origin.0);
        for &target in next.replicas_of(d) {
            let gb = inst.size(d);
            if ledger.charge(d.0, target.0, gb) {
                // Nearest of the multi-source candidate list: the ledger
                // charges one copy, and Scheduled-tier prefetch flows fan
                // out over the rest when the chunked engine is active.
                let source = pick_sources(inst, current, &alive, d, target)
                    .first()
                    .copied()
                    .unwrap_or(origin);
                actions.push(RepairAction {
                    dataset: d,
                    source,
                    target,
                    gb,
                });
                total_gb += gb;
            }
        }
    }
    (actions, total_gb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{build_testbed_instance, TestbedConfig};
    use edgerep_core::appro::ApproG;
    use edgerep_core::PlacementAlgorithm;

    fn small_instance(seed: u64) -> Instance {
        let cfg = TestbedConfig {
            query_count: 20,
            windows: 5,
            trace: edgerep_workload::mobile_trace::TraceConfig {
                users: 80,
                apps: 16,
                days: 5,
                ..Default::default()
            },
            ..Default::default()
        };
        build_testbed_instance(&cfg, seed).instance
    }

    #[test]
    fn epoch_demand_counts_every_demand_once() {
        let inst = small_instance(3);
        let demand = epoch_demand(&inst);
        let expected: f64 = inst.query_ids().map(|q| inst.demanded_volume(q)).sum();
        assert!((demand.total_volume() - expected).abs() < 1e-9);
        assert!(!demand.is_empty());
    }

    #[test]
    fn predicted_instance_reconstructs_observed_epoch() {
        let inst = small_instance(7);
        let mut profiles = ProfileStore::new();
        observe_profiles(&inst, &mut profiles);
        // A perfect forecast of the realized demand...
        let forecast = DemandForecast::from_entries(epoch_demand(&inst).iter().collect::<Vec<_>>());
        let predicted = build_predicted_instance(&inst, &forecast, &profiles);
        // ...rebuilds the same world with the same demanded volume.
        assert_eq!(predicted.datasets(), inst.datasets());
        assert_eq!(predicted.max_replicas(), inst.max_replicas());
        let predicted_volume: f64 = predicted
            .query_ids()
            .map(|q| predicted.demanded_volume(q))
            .sum();
        let realized_volume: f64 = inst.query_ids().map(|q| inst.demanded_volume(q)).sum();
        assert!(
            (predicted_volume - realized_volume).abs() < 1e-6 * realized_volume.max(1.0),
            "{predicted_volume} vs {realized_volume}"
        );
        // And an existing planner consumes it unchanged.
        let sol = ApproG::default().solve(&predicted);
        sol.validate(&predicted)
            .expect("plan on predicted instance");
    }

    #[test]
    fn empty_forecast_builds_queryless_instance() {
        let inst = small_instance(9);
        let predicted =
            build_predicted_instance(&inst, &DemandForecast::default(), &ProfileStore::new());
        assert_eq!(predicted.queries().len(), 0);
        assert_eq!(predicted.datasets(), inst.datasets());
    }

    #[test]
    fn prefetch_charges_each_copy_once() {
        let inst = small_instance(5);
        let sol = ApproG::default().solve(&inst);
        let mut ledger = TransferLedger::new();
        let empty = Solution::empty(&inst);
        let (actions, gb) = plan_prefetch(&inst, &empty, &sol, &mut ledger);
        // Non-origin replicas are charged exactly once...
        let expected: f64 = inst
            .dataset_ids()
            .flat_map(|d| {
                let origin = inst.dataset(d).origin;
                let size = inst.size(d);
                sol.replicas_of(d)
                    .iter()
                    .filter(move |&&v| v != origin)
                    .map(move |_| size)
            })
            .sum();
        assert!((gb - expected).abs() < 1e-9, "{gb} vs {expected}");
        assert_eq!(actions.is_empty(), expected == 0.0);
        // ...and re-planning the same layout moves nothing.
        let (again, gb2) = plan_prefetch(&inst, &sol, &sol, &mut ledger);
        assert!(again.is_empty());
        assert_eq!(gb2, 0.0);
    }

    #[test]
    fn note_materialized_suppresses_charges() {
        let inst = small_instance(5);
        let sol = ApproG::default().solve(&inst);
        let mut ledger = TransferLedger::new();
        note_materialized(&inst, &sol, &mut ledger);
        let (actions, gb) = plan_prefetch(&inst, &sol, &sol, &mut ledger);
        assert!(actions.is_empty());
        assert_eq!(gb, 0.0);
        assert_eq!(ledger.total_gb(), 0.0);
    }
}
