//! Rolling multi-epoch operation (extension beyond the paper).
//!
//! The paper plans once for a known query set and notes (§2.4) that
//! dynamic data is handled by threshold-triggered updates. A real
//! deployment also faces *workload drift*: tomorrow's queries come from
//! different homes than today's. This module runs the testbed over
//! several epochs with a drifting hotspot and compares replanning
//! policies:
//!
//! * [`ReplanPolicy::Static`] — place replicas once, on epoch 0's
//!   workload; later epochs may only *assign* against those replicas
//!   (zero migration traffic, decaying fit);
//! * [`ReplanPolicy::Periodic`] — rerun the placement algorithm every
//!   epoch; replicas that appear at new locations are **migrated** and
//!   their volume is accounted as migration traffic.
//!
//! The `ext-rolling` driver in `edgerep-exp` turns this into the
//! volume-vs-migration trade-off curve; the tests pin the qualitative
//! behaviour (static placement decays under drift, periodic pays traffic
//! to avoid the decay).

use edgerep_core::admission::{AdmissionState, PlannedDemand};
use edgerep_core::PlacementAlgorithm;
use edgerep_model::delay::assignment_delay;
use edgerep_model::{ComputeNodeId, Instance, QueryId, Solution};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::topology::{build_fig6_topology, TestbedConfig};

/// Replica replanning policy across epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanPolicy {
    /// Plan replicas on epoch 0 only; later epochs assign-only.
    Static,
    /// Rerun the full placement algorithm every epoch.
    Periodic,
}

/// Rolling-operation configuration.
#[derive(Debug, Clone)]
pub struct RollingConfig {
    /// Testbed shape and per-epoch workload parameters.
    pub testbed: TestbedConfig,
    /// Number of epochs.
    pub epochs: usize,
    /// Number of cloudlet groups the query hotspot rotates over (the
    /// drift: epoch `e` homes cluster on group `e % groups`).
    pub hotspot_groups: usize,
    /// Probability that a query's home falls inside the epoch's hotspot.
    pub hotspot_probability: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for RollingConfig {
    fn default() -> Self {
        Self {
            testbed: TestbedConfig::default(),
            epochs: 6,
            hotspot_groups: 4,
            hotspot_probability: 0.8,
            seed: 0,
        }
    }
}

/// Outcome of one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Admitted demanded volume this epoch, GB.
    pub volume: f64,
    /// Admitted / total queries this epoch.
    pub throughput: f64,
    /// GB of replicas newly materialized this epoch (0 under `Static`
    /// after epoch 0).
    pub migration_gb: f64,
}

/// Outcome of a full rolling run.
#[derive(Debug, Clone, PartialEq)]
pub struct RollingReport {
    /// Per-epoch stats in order.
    pub per_epoch: Vec<EpochStats>,
    /// Total admitted volume over all epochs.
    pub total_volume: f64,
    /// Total migration traffic over all epochs.
    pub total_migration_gb: f64,
}

/// Builds the epoch-`e` instance: same topology geometry and datasets
/// (regenerated deterministically from `cfg.seed`), fresh queries whose
/// homes cluster on the epoch's hotspot group.
fn epoch_instance(cfg: &RollingConfig, epoch: usize) -> Instance {
    // Topology and datasets must be identical across epochs: rebuild them
    // from the same seed, then draw queries from an epoch-specific stream.
    let mut topo_rng = SmallRng::seed_from_u64(cfg.seed);
    let (builder, _regions) = build_fig6_topology(&cfg.testbed, &mut topo_rng);
    let cloud = builder.build().expect("testbed topology is valid");
    let compute_ids: Vec<ComputeNodeId> = cloud.compute_ids().collect();
    let dc_count = 4usize;
    let cloudlets = &compute_ids[dc_count..];

    let mut ib = edgerep_model::InstanceBuilder::new(cloud, cfg.testbed.max_replicas);
    // Datasets: deterministic across epochs (sizes from the topo stream).
    let mut ds_rng = SmallRng::seed_from_u64(cfg.seed ^ 0xda7a);
    let (glo, ghi) = cfg.testbed.dataset_size_gb;
    for _ in 0..cfg.testbed.windows {
        let size = ds_rng.gen_range(glo..ghi.max(glo + 1e-9));
        let origin = compute_ids[ds_rng.gen_range(0..dc_count)];
        ib.add_dataset(size, origin);
    }

    // Queries: epoch-specific stream with a rotating home hotspot.
    let mut q_rng = SmallRng::seed_from_u64(cfg.seed ^ (0x9e37 + epoch as u64));
    let groups = cfg.hotspot_groups.max(1).min(cloudlets.len().max(1));
    let group = epoch % groups;
    let group_size = cloudlets.len().div_ceil(groups);
    let hot: Vec<ComputeNodeId> = cloudlets
        .iter()
        .copied()
        .skip(group * group_size)
        .take(group_size)
        .collect();
    let draw = |rng: &mut SmallRng, (lo, hi): (f64, f64)| {
        if lo == hi {
            lo
        } else {
            rng.gen_range(lo..hi)
        }
    };
    for _ in 0..cfg.testbed.query_count {
        let home = if !hot.is_empty() && q_rng.gen_bool(cfg.hotspot_probability) {
            hot[q_rng.gen_range(0..hot.len())]
        } else {
            cloudlets[q_rng.gen_range(0..cloudlets.len())]
        };
        let f = q_rng
            .gen_range(cfg.testbed.datasets_per_query.0..=cfg.testbed.datasets_per_query.1)
            .min(cfg.testbed.windows);
        let mut pool: Vec<u32> = (0..cfg.testbed.windows as u32).collect();
        let mut demands = Vec::with_capacity(f);
        let mut largest: f64 = 0.0;
        for slot in 0..f {
            let pick = q_rng.gen_range(slot..pool.len());
            pool.swap(slot, pick);
            let d = edgerep_model::DatasetId(pool[slot]);
            largest = largest.max(ib.dataset_size(d));
            demands.push(edgerep_model::Demand::new(
                d,
                draw(&mut q_rng, cfg.testbed.selectivity),
            ));
        }
        let deadline = draw(&mut q_rng, cfg.testbed.deadline_base)
            + largest * draw(&mut q_rng, cfg.testbed.deadline_per_gb);
        ib.add_query(
            home,
            demands,
            draw(&mut q_rng, cfg.testbed.compute_rate),
            deadline,
        );
    }
    ib.build().expect("epoch instance is valid")
}

/// Assignment-only admission against a frozen replica layout: queries in
/// volume-descending order take their lowest-delay feasible replica.
fn assign_only(inst: &Instance, replicas: &Solution) -> Solution {
    let mut st = AdmissionState::new(inst);
    for d in inst.dataset_ids() {
        for &v in replicas.replicas_of(d) {
            st.place_replica(d, v);
        }
    }
    let mut queries: Vec<QueryId> = inst.query_ids().collect();
    queries.sort_by(|&a, &b| {
        inst.demanded_volume(b)
            .partial_cmp(&inst.demanded_volume(a))
            .expect("volumes are finite")
            .then(a.cmp(&b))
    });
    for q in queries {
        let query = inst.query(q);
        let mut plan = Vec::with_capacity(query.demands.len());
        let mut extra = vec![0.0; inst.cloud().compute_count()];
        let mut complete = true;
        for (idx, dem) in query.demands.iter().enumerate() {
            let mut nodes: Vec<ComputeNodeId> = replicas.replicas_of(dem.dataset).to_vec();
            nodes.sort_by(|&a, &b| {
                assignment_delay(inst, q, idx, a)
                    .partial_cmp(&assignment_delay(inst, q, idx, b))
                    .expect("delays comparable")
                    .then(a.cmp(&b))
            });
            match nodes
                .into_iter()
                .find(|&v| st.demand_feasible_with(q, idx, v, extra[v.index()]))
            {
                Some(v) => {
                    extra[v.index()] += st.compute_demand(q, idx);
                    plan.push(PlannedDemand {
                        node: v,
                        new_replica: false,
                    });
                }
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if complete && st.plan_feasible(q, &plan) {
            st.commit(q, &plan);
        }
    }
    st.into_solution()
}

/// GB of replicas present in `now` at locations absent from `before`.
fn migration_gb(inst: &Instance, before: Option<&Solution>, now: &Solution) -> f64 {
    let mut total = 0.0;
    for d in inst.dataset_ids() {
        for &v in now.replicas_of(d) {
            let already = match before {
                Some(prev) => prev.has_replica(d, v),
                None => false,
            } || inst.dataset(d).origin == v;
            if !already {
                total += inst.size(d);
            }
        }
    }
    total
}

/// Runs the rolling experiment under one policy.
pub fn run_rolling(
    alg: &dyn PlacementAlgorithm,
    cfg: &RollingConfig,
    policy: ReplanPolicy,
) -> RollingReport {
    assert!(cfg.epochs >= 1, "need at least one epoch");
    let mut per_epoch = Vec::with_capacity(cfg.epochs);
    let mut frozen: Option<Solution> = None;
    let mut previous: Option<Solution> = None;
    for epoch in 0..cfg.epochs {
        let inst = epoch_instance(cfg, epoch);
        let sol = match (policy, &frozen) {
            (ReplanPolicy::Static, Some(layout)) => assign_only(&inst, layout),
            _ => {
                let s = alg.solve(&inst);
                s.validate(&inst).expect("algorithm returned feasible plan");
                s
            }
        };
        let migration = migration_gb(&inst, previous.as_ref(), &sol);
        per_epoch.push(EpochStats {
            volume: sol.admitted_volume(&inst),
            throughput: sol.throughput(&inst),
            migration_gb: migration,
        });
        if policy == ReplanPolicy::Static && frozen.is_none() {
            frozen = Some(sol.clone());
        }
        previous = Some(sol);
    }
    RollingReport {
        total_volume: per_epoch.iter().map(|e| e.volume).sum(),
        total_migration_gb: per_epoch.iter().map(|e| e.migration_gb).sum(),
        per_epoch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgerep_core::appro::ApproG;

    fn small_cfg() -> RollingConfig {
        RollingConfig {
            testbed: TestbedConfig {
                query_count: 25,
                windows: 6,
                trace: edgerep_workload::mobile_trace::TraceConfig {
                    users: 100,
                    apps: 20,
                    days: 5,
                    ..Default::default()
                },
                ..Default::default()
            },
            epochs: 4,
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_and_shaped() {
        let cfg = small_cfg();
        let a = run_rolling(&ApproG::default(), &cfg, ReplanPolicy::Periodic);
        let b = run_rolling(&ApproG::default(), &cfg, ReplanPolicy::Periodic);
        assert_eq!(a, b);
        assert_eq!(a.per_epoch.len(), 4);
        assert!(a.total_volume > 0.0);
    }

    #[test]
    fn static_policy_pays_no_migration_after_epoch_zero() {
        let cfg = small_cfg();
        let report = run_rolling(&ApproG::default(), &cfg, ReplanPolicy::Static);
        for (e, stats) in report.per_epoch.iter().enumerate().skip(1) {
            assert_eq!(
                stats.migration_gb, 0.0,
                "epoch {e} moved replicas under Static"
            );
        }
    }

    #[test]
    fn periodic_replanning_wins_volume_under_drift() {
        let cfg = small_cfg();
        let fixed = run_rolling(&ApproG::default(), &cfg, ReplanPolicy::Static);
        let periodic = run_rolling(&ApproG::default(), &cfg, ReplanPolicy::Periodic);
        assert!(
            periodic.total_volume >= fixed.total_volume,
            "replanning should not lose volume ({} vs {})",
            periodic.total_volume,
            fixed.total_volume
        );
        assert!(
            periodic.total_migration_gb >= fixed.total_migration_gb,
            "replanning moves at least as much data"
        );
    }

    #[test]
    fn epoch_zero_identical_across_policies() {
        let cfg = small_cfg();
        let fixed = run_rolling(&ApproG::default(), &cfg, ReplanPolicy::Static);
        let periodic = run_rolling(&ApproG::default(), &cfg, ReplanPolicy::Periodic);
        assert_eq!(fixed.per_epoch[0], periodic.per_epoch[0]);
    }

    #[test]
    fn epoch_instances_share_world_but_not_queries() {
        let cfg = small_cfg();
        let e0 = epoch_instance(&cfg, 0);
        let e1 = epoch_instance(&cfg, 1);
        assert_eq!(e0.datasets(), e1.datasets());
        assert_eq!(e0.cloud().graph(), e1.cloud().graph());
        assert_ne!(e0.queries(), e1.queries());
    }
}
