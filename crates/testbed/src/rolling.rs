//! Rolling multi-epoch operation (extension beyond the paper).
//!
//! The paper plans once for a known query set and notes (§2.4) that
//! dynamic data is handled by threshold-triggered updates. A real
//! deployment also faces *workload drift*: tomorrow's queries come from
//! different homes than today's. This module runs the testbed over
//! several epochs with a drifting hotspot and compares replanning
//! policies:
//!
//! * [`ReplanPolicy::Static`] — place replicas once, on epoch 0's
//!   workload; later epochs may only *assign* against those replicas
//!   (zero migration traffic, decaying fit);
//! * [`ReplanPolicy::Periodic`] — rerun the placement algorithm every
//!   epoch; replicas that appear at new locations are **migrated** and
//!   their volume is accounted as migration traffic. Because it replans
//!   *after* seeing each epoch's workload, `Periodic` is an oracle upper
//!   bound, not a deployable policy;
//! * [`ReplanPolicy::Predictive`] — the paper's "proactive" premise made
//!   operational: at the end of epoch *e* the controller forecasts epoch
//!   *e+1*'s demand from history (any [`edgerep_forecast::ForecasterKind`]),
//!   plans replicas on the *predicted* instance, and **prefetches** the
//!   replica deltas as background transfers so the next epoch opens with
//!   replicas already in place; realized queries are then assign-only.
//!   The [`edgerep_forecast::TransferLedger`] charges each (dataset,
//!   node) materialization once — evicted copies stay cold rather than
//!   being deleted, so a rotating hotspot is paid for a single time.
//!
//! The `ext-rolling` / `ext-forecast` drivers in `edgerep-exp` turn this
//! into the volume-vs-traffic trade-off curves; the tests pin the
//! qualitative behaviour (static placement decays under drift, periodic
//! pays traffic to avoid the decay, prediction recovers most of the
//! volume at a fraction of the traffic).

use edgerep_core::admission::{AdmissionState, PlannedDemand};
use edgerep_core::PlacementAlgorithm;
use edgerep_forecast::{
    wmape, DemandForecast, DemandHistory, ForecasterKind, ProfileStore, TransferLedger,
};
use edgerep_model::delay::assignment_delay;
use edgerep_model::{ComputeNodeId, EdgeCloud, Instance, QueryId, Solution};
use edgerep_obs as obs;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::predict;
use crate::topology::{build_fig6_topology, TestbedConfig};

/// Replica replanning policy across epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanPolicy {
    /// Plan replicas on epoch 0 only; later epochs assign-only.
    Static,
    /// Rerun the full placement algorithm every epoch (oracle: sees the
    /// realized workload before planning for it).
    Periodic,
    /// Forecast each next epoch from history with the named forecaster,
    /// plan on the predicted instance, prefetch the replica deltas.
    Predictive(ForecasterKind),
}

/// Rolling-operation configuration.
#[derive(Debug, Clone)]
pub struct RollingConfig {
    /// Testbed shape and per-epoch workload parameters.
    pub testbed: TestbedConfig,
    /// Number of epochs.
    pub epochs: usize,
    /// Number of cloudlet groups the query hotspot rotates over (the
    /// drift: epoch `e` homes cluster on group `e % groups`).
    pub hotspot_groups: usize,
    /// Probability that a query's home falls inside the epoch's hotspot.
    pub hotspot_probability: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for RollingConfig {
    fn default() -> Self {
        Self {
            testbed: TestbedConfig::default(),
            epochs: 6,
            hotspot_groups: 4,
            hotspot_probability: 0.8,
            seed: 0,
        }
    }
}

/// Outcome of one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Admitted demanded volume this epoch, GB.
    pub volume: f64,
    /// Admitted / total queries this epoch.
    pub throughput: f64,
    /// GB of replicas newly materialized this epoch (0 under `Static`
    /// after epoch 0; under `Predictive` only the cold-start epoch 0
    /// migrates — later layout changes arrive as prefetches).
    pub migration_gb: f64,
    /// GB of prefetch transfers issued at the end of this epoch to
    /// realize the *next* epoch's predicted layout (0 except under
    /// `Predictive`).
    pub prefetch_gb: f64,
    /// Volume-weighted forecast error of the prediction this epoch was
    /// served under (`None` for non-predictive policies and for the
    /// cold-start epoch, which had no forecast).
    pub forecast_wmape: Option<f64>,
}

/// Outcome of a full rolling run.
#[derive(Debug, Clone, PartialEq)]
pub struct RollingReport {
    /// Per-epoch stats in order.
    pub per_epoch: Vec<EpochStats>,
    /// Total admitted volume over all epochs.
    pub total_volume: f64,
    /// Total migration traffic over all epochs.
    pub total_migration_gb: f64,
    /// Total prefetch traffic over all epochs (0 except `Predictive`).
    pub total_prefetch_gb: f64,
    /// Mean forecast wMAPE over the epochs that were served under a
    /// forecast (`None` when no epoch was).
    pub mean_forecast_wmape: Option<f64>,
    /// Full placement solves actually executed across the run (realized
    /// and, under `Predictive`, predicted instances).
    pub replans: usize,
    /// Replans skipped because the demand-group diff against the last
    /// solved instance came back empty (layout reused verbatim).
    pub replans_skipped: usize,
}

impl RollingReport {
    /// The run's SLO trajectory, one sample per epoch: `t_s` is the epoch
    /// index, availability is the epoch's admitted fraction (its
    /// complement is the QoS-miss rate — a rejected query is one whose
    /// QoS could not be met), `prefetch_gb` accumulates across epochs,
    /// and `forecast_wmape` is the epoch's own score. The rolling driver
    /// has no fault model, so the repair backlog is always 0.
    pub fn slo_series(&self) -> Vec<crate::slo::SloSample> {
        let mut prefetch = 0.0;
        self.per_epoch
            .iter()
            .enumerate()
            .map(|(epoch, st)| {
                prefetch += st.prefetch_gb;
                crate::slo::SloSample {
                    t_s: epoch as f64,
                    availability: st.throughput,
                    qos_miss_rate: (1.0 - st.throughput).max(0.0),
                    repair_backlog: 0,
                    prefetch_gb: prefetch,
                    forecast_wmape: st.forecast_wmape,
                }
            })
            .collect()
    }
}

/// Topology and dataset world shared by every epoch of a rolling run.
///
/// These are identical across epochs by construction (regenerated from
/// the same seeds), so rebuilding them per epoch only repeated the
/// fig-6 topology build and its all-pairs Dijkstra delay matrix.
/// [`run_rolling`] builds the world once and stamps epoch instances out
/// of it; [`epoch_instance`] keeps the one-shot convenience shape.
struct EpochWorld {
    cloud: EdgeCloud,
    compute_ids: Vec<ComputeNodeId>,
    /// `(size_gb, origin)` per dataset, in insertion order.
    datasets: Vec<(f64, ComputeNodeId)>,
}

/// Number of data-center nodes the fig-6 topology emits first.
const DC_COUNT: usize = 4;

fn build_world(cfg: &RollingConfig) -> EpochWorld {
    let mut topo_rng = SmallRng::seed_from_u64(cfg.seed);
    let (builder, _regions) = build_fig6_topology(&cfg.testbed, &mut topo_rng);
    let cloud = builder.build().expect("testbed topology is valid");
    let compute_ids: Vec<ComputeNodeId> = cloud.compute_ids().collect();
    // Datasets: deterministic across epochs (sizes from their own stream).
    let mut ds_rng = SmallRng::seed_from_u64(cfg.seed ^ 0xda7a);
    let (glo, ghi) = cfg.testbed.dataset_size_gb;
    let datasets = (0..cfg.testbed.windows)
        .map(|_| {
            let size = ds_rng.gen_range(glo..ghi.max(glo + 1e-9));
            let origin = compute_ids[ds_rng.gen_range(0..DC_COUNT)];
            (size, origin)
        })
        .collect();
    EpochWorld {
        cloud,
        compute_ids,
        datasets,
    }
}

/// Builds the epoch-`e` instance: same topology geometry and datasets
/// (regenerated deterministically from `cfg.seed`), fresh queries whose
/// homes cluster on the epoch's hotspot group. One-shot convenience
/// shape; the run loop stamps instances out of a shared world instead,
/// and the equivalence tests pin the two paths identical.
#[cfg_attr(not(test), allow(dead_code))]
fn epoch_instance(cfg: &RollingConfig, epoch: usize) -> Instance {
    epoch_instance_in(&build_world(cfg), cfg, epoch)
}

/// Stamps the epoch-`e` instance out of a prebuilt world: clones the
/// cloud (the cached delay matrix rides along — no Dijkstra), re-adds
/// the shared datasets, then draws the epoch's query stream.
fn epoch_instance_in(world: &EpochWorld, cfg: &RollingConfig, epoch: usize) -> Instance {
    let cloudlets = &world.compute_ids[DC_COUNT..];
    let mut ib = edgerep_model::InstanceBuilder::new(world.cloud.clone(), cfg.testbed.max_replicas);
    for &(size, origin) in &world.datasets {
        ib.add_dataset(size, origin);
    }

    // Queries: epoch-specific stream with a rotating home hotspot.
    let mut q_rng = SmallRng::seed_from_u64(cfg.seed ^ (0x9e37 + epoch as u64));
    let groups = cfg.hotspot_groups.max(1).min(cloudlets.len().max(1));
    let group = epoch % groups;
    let group_size = cloudlets.len().div_ceil(groups);
    let hot: Vec<ComputeNodeId> = cloudlets
        .iter()
        .copied()
        .skip(group * group_size)
        .take(group_size)
        .collect();
    let draw = |rng: &mut SmallRng, (lo, hi): (f64, f64)| {
        if lo == hi {
            lo
        } else {
            rng.gen_range(lo..hi)
        }
    };
    for _ in 0..cfg.testbed.query_count {
        let home = if !hot.is_empty() && q_rng.gen_bool(cfg.hotspot_probability) {
            hot[q_rng.gen_range(0..hot.len())]
        } else {
            cloudlets[q_rng.gen_range(0..cloudlets.len())]
        };
        let f = q_rng
            .gen_range(cfg.testbed.datasets_per_query.0..=cfg.testbed.datasets_per_query.1)
            .min(cfg.testbed.windows);
        let mut pool: Vec<u32> = (0..cfg.testbed.windows as u32).collect();
        let mut demands = Vec::with_capacity(f);
        let mut largest: f64 = 0.0;
        for slot in 0..f {
            let pick = q_rng.gen_range(slot..pool.len());
            pool.swap(slot, pick);
            let d = edgerep_model::DatasetId(pool[slot]);
            largest = largest.max(ib.dataset_size(d));
            demands.push(edgerep_model::Demand::new(
                d,
                draw(&mut q_rng, cfg.testbed.selectivity),
            ));
        }
        let deadline = draw(&mut q_rng, cfg.testbed.deadline_base)
            + largest * draw(&mut q_rng, cfg.testbed.deadline_per_gb);
        ib.add_query(
            home,
            demands,
            draw(&mut q_rng, cfg.testbed.compute_rate),
            deadline,
        );
    }
    ib.build().expect("epoch instance is valid")
}

/// Assignment-only admission against a frozen replica layout: queries in
/// volume-descending order take their lowest-delay feasible replica.
fn assign_only(inst: &Instance, replicas: &Solution) -> Solution {
    let mut st = AdmissionState::new(inst);
    for d in inst.dataset_ids() {
        for &v in replicas.replicas_of(d) {
            st.place_replica(d, v);
        }
    }
    let mut queries: Vec<QueryId> = inst.query_ids().collect();
    queries.sort_by(|&a, &b| {
        inst.demanded_volume(b)
            .total_cmp(&inst.demanded_volume(a))
            .then(a.cmp(&b))
    });
    for q in queries {
        let query = inst.query(q);
        let mut plan = Vec::with_capacity(query.demands.len());
        let mut extra = vec![0.0; inst.cloud().compute_count()];
        let mut complete = true;
        for (idx, dem) in query.demands.iter().enumerate() {
            let mut nodes: Vec<ComputeNodeId> = replicas.replicas_of(dem.dataset).to_vec();
            nodes.sort_by(|&a, &b| {
                assignment_delay(inst, q, idx, a)
                    .total_cmp(&assignment_delay(inst, q, idx, b))
                    .then(a.cmp(&b))
            });
            match nodes
                .into_iter()
                .find(|&v| st.demand_feasible_with(q, idx, v, extra[v.index()]))
            {
                Some(v) => {
                    extra[v.index()] += st.compute_demand(q, idx);
                    plan.push(PlannedDemand {
                        node: v,
                        new_replica: false,
                    });
                }
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if complete && st.plan_feasible(q, &plan) {
            st.commit(q, &plan);
        }
    }
    st.into_solution()
}

/// GB of replicas present in `now` at locations absent from `before`.
fn migration_gb(inst: &Instance, before: Option<&Solution>, now: &Solution) -> f64 {
    let mut total = 0.0;
    for d in inst.dataset_ids() {
        for &v in now.replicas_of(d) {
            let already = match before {
                Some(prev) => prev.has_replica(d, v),
                None => false,
            } || inst.dataset(d).origin == v;
            if !already {
                total += inst.size(d);
            }
        }
    }
    total
}

/// Diffs the (home, dataset) demand groups of two instances over the
/// same world: a group is *touched* when its demanded volume differs
/// between the two (including appearing or disappearing entirely).
/// Returns `(touched, total)` counts, `total` over the union of groups.
fn diff_demand_groups(prev: &Instance, next: &Instance) -> (usize, usize) {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<(u32, u32), [f64; 2]> = BTreeMap::new();
    for (slot, inst) in [prev, next].into_iter().enumerate() {
        for q in inst.queries() {
            for dem in &q.demands {
                groups.entry((q.home.0, dem.dataset.0)).or_default()[slot] +=
                    inst.size(dem.dataset);
            }
        }
    }
    let total = groups.len();
    let touched = groups.values().filter(|g| g[0] != g[1]).count();
    (touched, total)
}

/// One placement replan with an incremental fast path.
///
/// The forecasted/realized instance is diffed against the instance the
/// layout was last solved on, by (home, dataset) demand group. When the
/// diff comes back empty *and* the query set is content-equal, the
/// previous layout (placements and the duals they imply) is reused
/// verbatim — the placement solvers are deterministic, so a fresh solve
/// would reproduce it bit for bit, and skipping it is output-safe.
/// Anything touched triggers a full solve on the cache-accelerated path:
/// partially re-admitting only touched groups would be cheaper still,
/// but under `GlobalCheapestFirst` every admission competes with every
/// other, so a partial re-admission is *not* byte-identical to a full
/// solve and is deliberately not taken (see DESIGN.md).
fn replan(
    alg: &dyn PlacementAlgorithm,
    inst: &Instance,
    epoch: usize,
    prev: Option<&(Instance, Solution)>,
    replans: &mut usize,
    skipped: &mut usize,
) -> Solution {
    if let Some((pinst, psol)) = prev {
        let (touched, total) = diff_demand_groups(pinst, inst);
        let reusable = touched == 0 && pinst.queries() == inst.queries();
        obs::emit(
            "testbed",
            "rolling",
            "rolling.replan",
            &[
                ("epoch", epoch.into()),
                ("touched_groups", touched.into()),
                ("total_groups", total.into()),
                ("skipped", reusable.into()),
            ],
        );
        if reusable {
            // Already validated when first solved against an identical
            // instance.
            *skipped += 1;
            return psol.clone();
        }
    }
    *replans += 1;
    let s = alg.solve(inst);
    s.validate(inst).expect("algorithm returned feasible plan");
    s
}

/// Mutable state of the predictive controller across epochs.
struct PredictiveState {
    kind: ForecasterKind,
    history: DemandHistory,
    profiles: ProfileStore,
    ledger: TransferLedger,
    /// Layout + forecast planned at the end of the previous epoch for
    /// the current one.
    pending: Option<(Solution, DemandForecast)>,
    /// The last *predicted* instance the planner actually solved, with
    /// its layout — the diff base for incremental planning replans.
    last_planned: Option<(Instance, Solution)>,
}

impl PredictiveState {
    fn new(kind: ForecasterKind, cfg: &RollingConfig) -> Self {
        Self {
            kind,
            // Retain at least one full run's worth of epochs; seasonal
            // predictors need ≥ one period, which callers choose ≤ epochs.
            history: DemandHistory::new(cfg.epochs.max(2)),
            profiles: ProfileStore::new(),
            ledger: TransferLedger::new(),
            pending: None,
            last_planned: None,
        }
    }
}

/// Runs the rolling experiment under one policy.
pub fn run_rolling(
    alg: &dyn PlacementAlgorithm,
    cfg: &RollingConfig,
    policy: ReplanPolicy,
) -> RollingReport {
    assert!(cfg.epochs >= 1, "need at least one epoch");
    let world = build_world(cfg);
    let mut per_epoch: Vec<EpochStats> = Vec::with_capacity(cfg.epochs);
    let mut frozen: Option<Solution> = None;
    let mut previous: Option<Solution> = None;
    let mut replans = 0usize;
    let mut replans_skipped = 0usize;
    // The last realized instance a layout was solved on — diff base for
    // the incremental replan fast path.
    let mut last_solved: Option<(Instance, Solution)> = None;
    let mut predictive = match policy {
        ReplanPolicy::Predictive(kind) => Some(PredictiveState::new(kind, cfg)),
        _ => None,
    };
    for epoch in 0..cfg.epochs {
        let inst = epoch_instance_in(&world, cfg, epoch);
        let mut forecast_wmape = None;
        let sol = match (&mut predictive, &frozen) {
            // Static after epoch 0: assign against the frozen layout.
            (None, Some(layout)) if policy == ReplanPolicy::Static => assign_only(&inst, layout),
            // Predictive with a prefetched layout: score the forecast it
            // was planned on, then serve assign-only.
            (Some(state), _) if state.pending.is_some() => {
                let (layout, forecast) = state.pending.take().expect("checked above");
                let realized = predict::epoch_demand(&inst);
                let err = wmape(&realized, &forecast);
                obs::gauge("forecast.mape").set(err);
                obs::emit(
                    "forecast",
                    "rolling",
                    "forecast.realized",
                    &[
                        ("epoch", epoch.into()),
                        ("wmape", err.into()),
                        ("realized_gb", realized.total_volume().into()),
                        ("predicted_gb", forecast.total_volume().into()),
                    ],
                );
                forecast_wmape = Some(err);
                assign_only(&inst, &layout)
            }
            // Predictive cold start: plan on the realized instance like
            // everyone else; its replicas enter the ledger as already
            // materialized (the traffic is charged as migration below).
            (Some(state), _) => {
                let s = replan(
                    alg,
                    &inst,
                    epoch,
                    last_solved.as_ref(),
                    &mut replans,
                    &mut replans_skipped,
                );
                predict::note_materialized(&inst, &s, &mut state.ledger);
                last_solved = Some((inst.clone(), s.clone()));
                s
            }
            // Periodic, and Static's epoch 0.
            (None, _) => {
                let s = replan(
                    alg,
                    &inst,
                    epoch,
                    last_solved.as_ref(),
                    &mut replans,
                    &mut replans_skipped,
                );
                last_solved = Some((inst.clone(), s.clone()));
                s
            }
        };
        // Under Predictive, layout changes after epoch 0 arrive as
        // prefetches (accounted when issued); only the cold start moves
        // replicas "live".
        let migration = if predictive.is_some() && epoch > 0 {
            0.0
        } else {
            migration_gb(&inst, previous.as_ref(), &sol)
        };
        // End-of-epoch prediction step: learn from the realized epoch,
        // forecast the next one, plan on the predicted instance, and
        // prefetch the deltas.
        let mut prefetch = 0.0;
        if let Some(state) = &mut predictive {
            state.history.record(predict::epoch_demand(&inst));
            predict::observe_profiles(&inst, &mut state.profiles);
            if epoch + 1 < cfg.epochs {
                let forecast = state.kind.build().predict(&state.history);
                let predicted =
                    predict::build_predicted_instance(&inst, &forecast, &state.profiles);
                let planned = replan(
                    alg,
                    &predicted,
                    epoch,
                    state.last_planned.as_ref(),
                    &mut replans,
                    &mut replans_skipped,
                );
                state.last_planned = Some((predicted.clone(), planned.clone()));
                let (actions, gb) =
                    predict::plan_prefetch(&inst, &sol, &planned, &mut state.ledger);
                obs::counter("forecast.plan").inc();
                obs::emit(
                    "forecast",
                    "rolling",
                    "forecast.prefetch",
                    &[
                        ("epoch", epoch.into()),
                        ("transfers", actions.len().into()),
                        ("gb", gb.into()),
                        // Prefetch rides the Scheduled tier of the chunked
                        // transfer engine: preempted by Immediate result
                        // flows, ahead of Background repair.
                        ("tier", crate::transfer::FlowTier::Scheduled.label().into()),
                    ],
                );
                prefetch = gb;
                state.pending = Some((planned, forecast));
            }
        }
        per_epoch.push(EpochStats {
            volume: sol.admitted_volume(&inst),
            throughput: sol.throughput(&inst),
            migration_gb: migration,
            prefetch_gb: prefetch,
            forecast_wmape,
        });
        if policy == ReplanPolicy::Static && frozen.is_none() {
            frozen = Some(sol.clone());
        }
        previous = Some(sol);
    }
    let scored: Vec<f64> = per_epoch.iter().filter_map(|e| e.forecast_wmape).collect();
    RollingReport {
        total_volume: per_epoch.iter().map(|e| e.volume).sum(),
        total_migration_gb: per_epoch.iter().map(|e| e.migration_gb).sum(),
        total_prefetch_gb: per_epoch.iter().map(|e| e.prefetch_gb).sum(),
        mean_forecast_wmape: (!scored.is_empty())
            .then(|| scored.iter().sum::<f64>() / scored.len() as f64),
        replans,
        replans_skipped,
        per_epoch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgerep_core::appro::ApproG;

    fn small_cfg() -> RollingConfig {
        RollingConfig {
            testbed: TestbedConfig {
                query_count: 25,
                windows: 6,
                trace: edgerep_workload::mobile_trace::TraceConfig {
                    users: 100,
                    apps: 20,
                    days: 5,
                    ..Default::default()
                },
                ..Default::default()
            },
            epochs: 4,
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_and_shaped() {
        let cfg = small_cfg();
        let a = run_rolling(&ApproG::default(), &cfg, ReplanPolicy::Periodic);
        let b = run_rolling(&ApproG::default(), &cfg, ReplanPolicy::Periodic);
        assert_eq!(a, b);
        assert_eq!(a.per_epoch.len(), 4);
        assert!(a.total_volume > 0.0);
    }

    #[test]
    fn static_policy_pays_no_migration_after_epoch_zero() {
        let cfg = small_cfg();
        let report = run_rolling(&ApproG::default(), &cfg, ReplanPolicy::Static);
        for (e, stats) in report.per_epoch.iter().enumerate().skip(1) {
            assert_eq!(
                stats.migration_gb, 0.0,
                "epoch {e} moved replicas under Static"
            );
        }
    }

    #[test]
    fn periodic_replanning_wins_volume_under_drift() {
        let cfg = small_cfg();
        let fixed = run_rolling(&ApproG::default(), &cfg, ReplanPolicy::Static);
        let periodic = run_rolling(&ApproG::default(), &cfg, ReplanPolicy::Periodic);
        assert!(
            periodic.total_volume >= fixed.total_volume,
            "replanning should not lose volume ({} vs {})",
            periodic.total_volume,
            fixed.total_volume
        );
        assert!(
            periodic.total_migration_gb >= fixed.total_migration_gb,
            "replanning moves at least as much data"
        );
    }

    #[test]
    fn epoch_zero_identical_across_policies() {
        let cfg = small_cfg();
        let fixed = run_rolling(&ApproG::default(), &cfg, ReplanPolicy::Static);
        let periodic = run_rolling(&ApproG::default(), &cfg, ReplanPolicy::Periodic);
        assert_eq!(fixed.per_epoch[0], periodic.per_epoch[0]);
    }

    fn drift_cfg() -> RollingConfig {
        RollingConfig {
            epochs: 8,
            hotspot_probability: 0.9,
            ..small_cfg()
        }
    }

    fn predictive_seasonal() -> ReplanPolicy {
        // One period = one full hotspot rotation (hotspot_groups = 4).
        ReplanPolicy::Predictive(ForecasterKind::SeasonalNaive { period: 4 })
    }

    /// Pinned acceptance criterion: under hotspot drift, `Predictive`
    /// admits strictly more volume than `Static` while generating no
    /// more transfer traffic than the `Periodic` oracle.
    #[test]
    fn predictive_beats_static_within_periodic_traffic() {
        let cfg = drift_cfg();
        let alg = ApproG::default();
        let fixed = run_rolling(&alg, &cfg, ReplanPolicy::Static);
        let periodic = run_rolling(&alg, &cfg, ReplanPolicy::Periodic);
        let predictive = run_rolling(&alg, &cfg, predictive_seasonal());
        assert!(
            predictive.total_volume > fixed.total_volume,
            "prediction should recover volume static loses to drift ({} vs {})",
            predictive.total_volume,
            fixed.total_volume
        );
        let predictive_traffic = predictive.total_migration_gb + predictive.total_prefetch_gb;
        let periodic_traffic = periodic.total_migration_gb + periodic.total_prefetch_gb;
        assert!(
            predictive_traffic <= periodic_traffic + 1e-9,
            "prefetching a rotating hotspot should cost no more than the \
             oracle's repeated migrations ({predictive_traffic} vs {periodic_traffic})"
        );
    }

    #[test]
    fn slo_series_tracks_per_epoch_stats() {
        let cfg = drift_cfg();
        let report = run_rolling(&ApproG::default(), &cfg, predictive_seasonal());
        let series = report.slo_series();
        assert_eq!(series.len(), report.per_epoch.len());
        let mut cumulative = 0.0;
        for (epoch, (sample, stats)) in series.iter().zip(&report.per_epoch).enumerate() {
            assert_eq!(sample.t_s, epoch as f64);
            assert_eq!(sample.availability, stats.throughput);
            assert!((sample.availability + sample.qos_miss_rate - 1.0).abs() < 1e-9);
            assert_eq!(sample.repair_backlog, 0);
            cumulative += stats.prefetch_gb;
            assert!((sample.prefetch_gb - cumulative).abs() < 1e-9);
            assert_eq!(sample.forecast_wmape, stats.forecast_wmape);
        }
        // The predictive run prefetches, so the trajectory actually climbs.
        assert!(series.last().unwrap().prefetch_gb > 0.0);
    }

    #[test]
    fn predictive_is_deterministic_and_scored() {
        let cfg = drift_cfg();
        let alg = ApproG::default();
        let a = run_rolling(&alg, &cfg, predictive_seasonal());
        let b = run_rolling(&alg, &cfg, predictive_seasonal());
        assert_eq!(a, b);
        // Cold start has no forecast; every later epoch is scored.
        assert_eq!(a.per_epoch[0].forecast_wmape, None);
        assert!(a.per_epoch[1..].iter().all(|e| e.forecast_wmape.is_some()));
        let mean = a.mean_forecast_wmape.expect("scored epochs exist");
        assert!(mean.is_finite() && mean >= 0.0);
        // Once the seasonal predictor has a full rotation of history
        // (serving epochs 5+: planned with history ≥ 4), it predicts the
        // right hotspot group; during warm-up it falls back to last-value
        // and aims at the previous group. Best locked-on epoch must beat
        // the worst warm-up epoch.
        let warmup = a.per_epoch[1..4]
            .iter()
            .map(|e| e.forecast_wmape.unwrap())
            .fold(0.0, f64::max);
        let locked = a.per_epoch[5..]
            .iter()
            .map(|e| e.forecast_wmape.unwrap())
            .fold(f64::INFINITY, f64::min);
        assert!(
            locked <= warmup,
            "seasonal predictor should improve after one rotation ({locked} vs {warmup})"
        );
    }

    #[test]
    fn predictive_cold_start_matches_periodic_epoch_zero() {
        let cfg = drift_cfg();
        let alg = ApproG::default();
        let periodic = run_rolling(&alg, &cfg, ReplanPolicy::Periodic);
        let predictive = run_rolling(&alg, &cfg, predictive_seasonal());
        let (p0, q0) = (&predictive.per_epoch[0], &periodic.per_epoch[0]);
        assert_eq!(p0.volume, q0.volume);
        assert_eq!(p0.throughput, q0.throughput);
        assert_eq!(p0.migration_gb, q0.migration_gb);
    }

    #[test]
    fn non_predictive_policies_never_prefetch() {
        let cfg = small_cfg();
        for policy in [ReplanPolicy::Static, ReplanPolicy::Periodic] {
            let report = run_rolling(&ApproG::default(), &cfg, policy);
            assert_eq!(report.total_prefetch_gb, 0.0, "{policy:?}");
            assert_eq!(report.mean_forecast_wmape, None, "{policy:?}");
        }
    }

    #[test]
    fn epoch_instances_share_world_but_not_queries() {
        let cfg = small_cfg();
        let e0 = epoch_instance(&cfg, 0);
        let e1 = epoch_instance(&cfg, 1);
        assert_eq!(e0.datasets(), e1.datasets());
        assert_eq!(e0.cloud().graph(), e1.cloud().graph());
        assert_ne!(e0.queries(), e1.queries());
    }

    #[test]
    fn cached_world_stamps_identical_instances() {
        let cfg = small_cfg();
        let world = build_world(&cfg);
        for epoch in 0..cfg.epochs {
            let cached = epoch_instance_in(&world, &cfg, epoch);
            let fresh = epoch_instance(&cfg, epoch);
            assert_eq!(cached.datasets(), fresh.datasets());
            assert_eq!(cached.queries(), fresh.queries());
            assert_eq!(cached.cloud().graph(), fresh.cloud().graph());
        }
    }

    /// Counts full solves so the tests below can observe the replan
    /// fast path.
    struct CountingAlg {
        inner: ApproG,
        solves: std::cell::Cell<usize>,
    }

    impl CountingAlg {
        fn new() -> Self {
            Self {
                inner: ApproG::default(),
                solves: std::cell::Cell::new(0),
            }
        }
    }

    impl PlacementAlgorithm for CountingAlg {
        fn name(&self) -> &'static str {
            "Counting"
        }
        fn solve(&self, inst: &Instance) -> Solution {
            self.solves.set(self.solves.get() + 1);
            self.inner.solve(inst)
        }
    }

    #[test]
    fn replan_skips_on_empty_diff_and_reuses_layout_verbatim() {
        let cfg = small_cfg();
        let inst = epoch_instance(&cfg, 0);
        let alg = CountingAlg::new();
        let (mut replans, mut skipped) = (0, 0);
        let first = replan(&alg, &inst, 0, None, &mut replans, &mut skipped);
        assert_eq!((replans, skipped, alg.solves.get()), (1, 0, 1));

        // Same instance again: empty diff, layout reused without a solve.
        let prev = (inst.clone(), first.clone());
        let reused = replan(&alg, &inst, 1, Some(&prev), &mut replans, &mut skipped);
        assert_eq!((replans, skipped, alg.solves.get()), (1, 1, 1));
        assert_eq!(reused, first, "reused layout must be identical");

        // A drifted epoch touches demand groups: full solve again.
        let drifted = epoch_instance(&cfg, 1);
        let (touched, total) = diff_demand_groups(&inst, &drifted);
        assert!(touched > 0 && touched <= total);
        let _ = replan(&alg, &drifted, 1, Some(&prev), &mut replans, &mut skipped);
        assert_eq!((replans, skipped, alg.solves.get()), (2, 1, 2));
    }

    #[test]
    fn diff_demand_groups_empty_on_identical_instances() {
        let cfg = small_cfg();
        let inst = epoch_instance(&cfg, 2);
        let (touched, total) = diff_demand_groups(&inst, &inst.clone());
        assert_eq!(touched, 0);
        assert!(total > 0);
    }

    #[test]
    fn rolling_reports_count_replans() {
        let cfg = small_cfg();
        // Static solves exactly once (epoch 0); Periodic once per epoch —
        // the drifting hotspot means epochs genuinely differ.
        let fixed = run_rolling(&ApproG::default(), &cfg, ReplanPolicy::Static);
        assert_eq!(fixed.replans, 1);
        assert_eq!(fixed.replans_skipped, 0);
        let periodic = run_rolling(&ApproG::default(), &cfg, ReplanPolicy::Periodic);
        assert_eq!(periodic.replans + periodic.replans_skipped, cfg.epochs);
        // Predictive adds one planning solve per non-final epoch on top
        // of the cold-start solve.
        let predictive = run_rolling(&ApproG::default(), &cfg, predictive_seasonal());
        assert_eq!(
            predictive.replans + predictive.replans_skipped,
            cfg.epochs, // 1 cold start + (epochs - 1) planning steps
        );
    }
}
