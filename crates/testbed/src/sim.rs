//! The testbed simulator.
//!
//! One run mirrors one §4.3 experiment:
//!
//! 1. the **controller** executes a [`PlacementAlgorithm`] over the
//!    instance (exactly what the paper's local server does);
//! 2. the **replication phase** copies each placed replica from its
//!    dataset's origin VM along the minimum-delay path (timed and
//!    accounted, but — per §2.3 — not charged against query QoS);
//! 3. the **query phase** releases the queries as a Poisson process;
//!    each admitted query's demands contend for node compute (FIFO
//!    queueing per VM), run the real analytics engine over the trace
//!    records, and ship their intermediate results home; the **measured**
//!    response time decides whether the query met its QoS deadline;
//! 4. optionally, datasets **grow** at their origins and the §2.4
//!    consistency rule fires: when new data exceeds the threshold ratio,
//!    an update is pushed to every replica and the traffic is accounted.
//!
//! Queueing is what the static model of `edgerep-core` does not capture:
//! a placement that packs a popular VM admits on paper but misses
//! deadlines here — exactly the gap between `Appro` and `Popularity`
//! in Figs. 7 and 8.

use edgerep_core::PlacementAlgorithm;
use edgerep_model::{ComputeNodeId, QueryId, Solution};
use edgerep_obs as obs;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::analytics::{evaluate, merge, AnalyticsResult};
use crate::event::{EventQueue, SimTime};
use crate::topology::TestbedWorld;

/// §2.4 dynamic-data consistency configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsistencyConfig {
    /// New data accrued at each dataset's origin, GB per simulated hour.
    pub growth_gb_per_hour: f64,
    /// Update threshold: ratio of new to original volume that triggers
    /// replica synchronization.
    pub threshold: f64,
    /// How often origins check the threshold, seconds.
    pub check_interval_s: f64,
}

impl Default for ConsistencyConfig {
    fn default() -> Self {
        Self {
            growth_gb_per_hour: 0.5,
            threshold: 0.1,
            check_interval_s: 60.0,
        }
    }
}

/// A node failure to inject: `node` goes down permanently at `at_s`.
///
/// Failures model VM outages in the leased testbed: demands already
/// running or queued on the node are lost (their queries miss), while
/// queries arriving later **fail over** to another live replica of the
/// demanded dataset when one exists — which is precisely the availability
/// argument the paper makes for `K > 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFailure {
    /// The compute node that fails.
    pub node: ComputeNodeId,
    /// Failure time in simulated seconds.
    pub at_s: f64,
}

/// Simulation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Query arrival rate (Poisson), queries per second.
    pub arrival_rate_per_s: f64,
    /// Serialize result transfers on each node's egress NIC (FIFO). When
    /// off, transfers overlap freely (pure path-delay model).
    pub nic_contention: bool,
    /// Optional dynamic-data consistency behaviour.
    pub consistency: Option<ConsistencyConfig>,
    /// RNG seed for arrivals (placement is deterministic given the world).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            arrival_rate_per_s: 0.4,
            nic_contention: true,
            consistency: None,
            seed: 1,
        }
    }
}

/// Everything one testbed run measures.
#[derive(Debug, Clone)]
pub struct TestbedReport {
    /// Name of the placement algorithm the controller ran.
    pub algorithm: &'static str,
    /// The controller's plan (validated).
    pub plan: Solution,
    /// Volume the controller *planned* to admit, GB.
    pub planned_volume: f64,
    /// Queries the controller planned to admit.
    pub planned_admitted: usize,
    /// Volume of queries that actually met their deadline, GB.
    pub measured_volume: f64,
    /// Queries that actually met their deadline.
    pub measured_admitted: usize,
    /// Total queries issued.
    pub total_queries: usize,
    /// Measured throughput: met / total.
    pub measured_throughput: f64,
    /// Mean measured response time over completed queries, seconds.
    pub mean_response_s: f64,
    /// Median measured response time, seconds.
    pub p50_response_s: f64,
    /// 95th-percentile measured response time, seconds.
    pub p95_response_s: f64,
    /// Worst measured response time, seconds.
    pub max_response_s: f64,
    /// GB moved to materialize replicas (proactive phase).
    pub replication_gb: f64,
    /// Wall-clock of the slowest replica transfer, seconds.
    pub replication_time_s: f64,
    /// GB of consistency updates pushed to replicas (§2.4).
    pub consistency_gb: f64,
    /// Number of consistency synchronization rounds.
    pub consistency_rounds: usize,
    /// Demands redirected to an alternative live replica after a fault.
    pub failovers: usize,
    /// Queries lost to faults (no live feasible replica, or in flight on a
    /// failing node).
    pub queries_lost_to_faults: usize,
    /// Mean simulated time demands spent queued for compute, seconds
    /// (demands that started immediately contribute zero).
    pub mean_queue_wait_s: f64,
    /// Mean simulated result-transfer time (including NIC serialization
    /// wait), seconds.
    pub mean_transfer_s: f64,
    /// Discrete events processed by the simulator loop.
    pub events_processed: u64,
    /// Largest event-queue depth observed during the run.
    pub peak_event_queue: usize,
    /// Analytics answers produced (one per completed query).
    pub answers: Vec<(QueryId, AnalyticsResult)>,
}

#[derive(Debug)]
enum Event {
    Arrival {
        q: QueryId,
    },
    ProcDone {
        q: QueryId,
        demand: usize,
        node: ComputeNodeId,
    },
    TransferDone {
        q: QueryId,
        demand: usize,
    },
    ConsistencyCheck,
    NodeDown {
        node: ComputeNodeId,
    },
}

#[derive(Debug, Clone)]
struct QueryRun {
    arrival: SimTime,
    outstanding: usize,
    finish: SimTime,
    partials: Vec<Option<AnalyticsResult>>,
    /// Serving node per demand, with failovers applied.
    nodes: Vec<ComputeNodeId>,
    /// Which demands are still incomplete (no TransferDone yet).
    incomplete: Vec<bool>,
}

/// A pending demand waiting for compute at a node.
#[derive(Debug, Clone, Copy)]
struct Waiting {
    q: QueryId,
    demand: usize,
    need_ghz: f64,
    /// When the demand joined the node's FIFO (for queue-wait accounting).
    enqueued: SimTime,
}

/// Runs one full testbed experiment without fault injection.
pub fn run_testbed(
    alg: &dyn PlacementAlgorithm,
    world: &TestbedWorld,
    cfg: &SimConfig,
) -> TestbedReport {
    run_testbed_with_faults(alg, world, cfg, &[])
}

/// Runs one full testbed experiment with injected node failures.
pub fn run_testbed_with_faults(
    alg: &dyn PlacementAlgorithm,
    world: &TestbedWorld,
    cfg: &SimConfig,
    faults: &[NodeFailure],
) -> TestbedReport {
    let inst = &world.instance;
    let cloud = inst.cloud();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let _run_span = obs::span("sim", "sim.run");
    // Per-event tracing is gated once per run; the loop then pays nothing
    // when the `sim` target is disabled.
    let trace_debug = obs::enabled_at("sim", obs::Level::Debug);

    // --- 1. Controller -------------------------------------------------
    let plan = alg.solve(inst);
    plan.validate(inst)
        .expect("controller produced an infeasible plan");

    // --- 2. Replication phase ------------------------------------------
    let mut replication_gb = 0.0;
    let mut replication_time_s: f64 = 0.0;
    for d in inst.dataset_ids() {
        let origin = inst.dataset(d).origin;
        for &v in plan.replicas_of(d) {
            if v == origin {
                continue; // the origin already holds the data
            }
            let gb = inst.size(d);
            let t = cloud.min_delay(origin, v) * gb;
            replication_gb += gb;
            replication_time_s = replication_time_s.max(t);
        }
    }

    // --- 3. Query phase --------------------------------------------------
    let mut queue: EventQueue<Event> = EventQueue::new();
    let mut t = SimTime::ZERO;
    let mut order: Vec<QueryId> = inst.query_ids().collect();
    // Shuffle arrival order (Fisher-Yates) then draw exponential gaps.
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    for q in order {
        let gap = -rng.gen::<f64>().max(1e-12).ln() / cfg.arrival_rate_per_s;
        t = t.after_secs(gap);
        queue.push(t, Event::Arrival { q });
    }
    let query_horizon = t;
    for f in faults {
        assert!(
            (f.node.0 as usize) < cloud.compute_count(),
            "fault on unknown node {}",
            f.node
        );
        queue.push(
            SimTime::from_secs_f64(f.at_s),
            Event::NodeDown { node: f.node },
        );
    }
    if let Some(c) = cfg.consistency {
        queue.push(
            SimTime::from_secs_f64(c.check_interval_s),
            Event::ConsistencyCheck,
        );
    }

    let mut runs: Vec<Option<QueryRun>> = vec![None; inst.queries().len()];
    let mut free_ghz: Vec<f64> = cloud.compute_ids().map(|v| cloud.available(v)).collect();
    let mut waiting: Vec<std::collections::VecDeque<Waiting>> =
        vec![std::collections::VecDeque::new(); cloud.compute_count()];
    let mut completed: Vec<(QueryId, SimTime, SimTime)> = Vec::new(); // (q, arrival, finish)
    let mut answers = Vec::new();
    let mut consistency_gb = 0.0;
    let mut consistency_rounds = 0usize;
    let mut new_data_gb: Vec<f64> = vec![0.0; inst.datasets().len()];
    let mut last_growth = SimTime::ZERO;
    let mut dead = vec![false; cloud.compute_count()];
    let mut failovers = 0usize;
    let mut queries_lost = 0usize;
    // Per-node NIC: the instant the egress link frees up.
    let mut nic_free_at = vec![SimTime::ZERO; cloud.compute_count()];
    // Loop statistics, tallied in plain integers and flushed to the metric
    // registry once after the drain.
    let mut events_processed: u64 = 0;
    let mut peak_event_queue: usize = 0;
    let mut demands_started: u64 = 0;
    let mut demands_queued: u64 = 0;
    let mut queue_wait_sum_s = 0.0;
    let mut transfer_sum_s = 0.0;
    let mut transfers: u64 = 0;

    let start_demand = |now: SimTime,
                        q: QueryId,
                        demand: usize,
                        node: ComputeNodeId,
                        free: &mut [f64],
                        waiting: &mut [std::collections::VecDeque<Waiting>],
                        queue: &mut EventQueue<Event>,
                        inst: &edgerep_model::Instance,
                        demands_queued: &mut u64| {
        let need = inst.size(inst.query(q).demands[demand].dataset) * inst.query(q).compute_rate;
        if free[node.index()] + 1e-9 >= need {
            free[node.index()] -= need;
            let proc = cloud.proc_delay(node) * inst.size(inst.query(q).demands[demand].dataset);
            queue.push(now.after_secs(proc), Event::ProcDone { q, demand, node });
        } else {
            *demands_queued += 1;
            waiting[node.index()].push_back(Waiting {
                q,
                demand,
                need_ghz: need,
                enqueued: now,
            });
        }
    };

    while let Some((now, ev)) = queue.pop() {
        events_processed += 1;
        peak_event_queue = peak_event_queue.max(queue.len() + 1);
        match ev {
            Event::Arrival { q } => {
                let Some(nodes) = plan.assignment_of(q) else {
                    continue; // controller rejected it; counted in totals
                };
                // Resolve dead serving nodes to live replicas (failover).
                let mut resolved = Vec::with_capacity(nodes.len());
                let mut this_failovers = 0usize;
                let mut servable = true;
                for (demand, &node) in nodes.iter().enumerate() {
                    if !dead[node.index()] {
                        resolved.push(node);
                        continue;
                    }
                    let d = inst.query(q).demands[demand].dataset;
                    let alt = plan
                        .replicas_of(d)
                        .iter()
                        .copied()
                        .filter(|v| !dead[v.index()])
                        .filter(|&v| {
                            edgerep_model::delay::assignment_delay(inst, q, demand, v)
                                <= inst.query(q).deadline + 1e-12
                        })
                        .min_by(|&a, &b| {
                            edgerep_model::delay::assignment_delay(inst, q, demand, a)
                                .partial_cmp(&edgerep_model::delay::assignment_delay(
                                    inst, q, demand, b,
                                ))
                                .expect("delays comparable")
                        });
                    match alt {
                        Some(v) => {
                            this_failovers += 1;
                            resolved.push(v);
                        }
                        None => {
                            servable = false;
                            break;
                        }
                    }
                }
                if !servable {
                    queries_lost += 1;
                    continue;
                }
                failovers += this_failovers;
                let n = resolved.len();
                runs[q.index()] = Some(QueryRun {
                    arrival: now,
                    outstanding: n,
                    finish: now,
                    partials: vec![None; n],
                    nodes: resolved.clone(),
                    incomplete: vec![true; n],
                });
                demands_started += n as u64;
                for (demand, node) in resolved.into_iter().enumerate() {
                    start_demand(
                        now,
                        q,
                        demand,
                        node,
                        &mut free_ghz,
                        &mut waiting,
                        &mut queue,
                        inst,
                        &mut demands_queued,
                    );
                }
            }
            Event::ProcDone { q, demand, node } => {
                if dead[node.index()] {
                    continue; // the node died mid-processing; work is lost
                }
                // Release compute and wake queued demands regardless of
                // whether the owning query is still alive.
                let d = inst.query(q).demands[demand].dataset;
                let need = inst.size(d) * inst.query(q).compute_rate;
                free_ghz[node.index()] += need;
                while let Some(w) = waiting[node.index()].front().copied() {
                    if free_ghz[node.index()] + 1e-9 >= w.need_ghz {
                        waiting[node.index()].pop_front();
                        free_ghz[node.index()] -= w.need_ghz;
                        let wait_s = now.as_secs_f64() - w.enqueued.as_secs_f64();
                        queue_wait_sum_s += wait_s;
                        if trace_debug {
                            obs::emit_debug(
                                "sim",
                                "sim.run",
                                "demand.dequeued",
                                &[
                                    ("query", w.q.index().into()),
                                    ("demand", w.demand.into()),
                                    ("node", node.index().into()),
                                    ("wait_s", wait_s.into()),
                                ],
                            );
                        }
                        let proc = cloud.proc_delay(node)
                            * inst.size(inst.query(w.q).demands[w.demand].dataset);
                        queue.push(
                            now.after_secs(proc),
                            Event::ProcDone {
                                q: w.q,
                                demand: w.demand,
                                node,
                            },
                        );
                    } else {
                        break;
                    }
                }
                // Poisoned queries produce nothing further.
                let Some(run) = runs[q.index()].as_mut() else {
                    continue;
                };
                // Evaluate the analytics for real, then ship the result.
                let partial = evaluate(world.query_kinds[q.index()], &world.records[d.index()]);
                run.partials[demand] = Some(partial);
                let query = inst.query(q);
                let trans = cloud.min_delay(node, query.home)
                    * query.demands[demand].selectivity
                    * inst.size(d);
                // Results leaving the same VM serialize on its NIC.
                let start = if cfg.nic_contention {
                    nic_free_at[node.index()].max(now)
                } else {
                    now
                };
                let done = start.after_secs(trans);
                if cfg.nic_contention {
                    nic_free_at[node.index()] = done;
                }
                transfer_sum_s += done.as_secs_f64() - now.as_secs_f64();
                transfers += 1;
                queue.push(done, Event::TransferDone { q, demand });
            }
            Event::TransferDone { q, demand } => {
                let Some(run) = runs[q.index()].as_mut() else {
                    continue; // poisoned by a fault mid-flight
                };
                run.incomplete[demand] = false;
                run.outstanding -= 1;
                run.finish = run.finish.max(now);
                if run.outstanding == 0 {
                    completed.push((q, run.arrival, run.finish));
                    if trace_debug {
                        obs::emit_debug(
                            "sim",
                            "sim.run",
                            "query.done",
                            &[
                                ("query", q.index().into()),
                                (
                                    "response_s",
                                    (run.finish.as_secs_f64() - run.arrival.as_secs_f64()).into(),
                                ),
                            ],
                        );
                    }
                    let partials: Vec<AnalyticsResult> =
                        run.partials.iter().flatten().cloned().collect();
                    if let Some(answer) = merge(partials) {
                        answers.push((q, answer));
                    }
                }
            }
            Event::NodeDown { node } => {
                if dead[node.index()] {
                    continue;
                }
                dead[node.index()] = true;
                waiting[node.index()].clear();
                // Poison every active query with an incomplete demand on
                // the failing node: its in-flight work is gone.
                for run_slot in runs.iter_mut() {
                    let poisoned = run_slot.as_ref().is_some_and(|run| {
                        run.nodes
                            .iter()
                            .zip(run.incomplete.iter())
                            .any(|(&n, &inc)| inc && n == node)
                    });
                    if poisoned {
                        *run_slot = None;
                        queries_lost += 1;
                    }
                }
            }
            Event::ConsistencyCheck => {
                let c = cfg.consistency.expect("check scheduled only with config");
                // Accrue growth since the last check.
                let dt_h = (now.as_secs_f64() - last_growth.as_secs_f64()) / 3600.0;
                last_growth = now;
                for g in &mut new_data_gb {
                    *g += c.growth_gb_per_hour * dt_h;
                }
                // Push updates where the threshold is crossed.
                for d in inst.dataset_ids() {
                    let original = inst.size(d);
                    if new_data_gb[d.index()] / original >= c.threshold {
                        let replicas = plan.replicas_of(d);
                        let origin = inst.dataset(d).origin;
                        let synced = replicas.iter().filter(|&&v| v != origin).count();
                        if synced > 0 {
                            consistency_gb += new_data_gb[d.index()] * synced as f64;
                            consistency_rounds += 1;
                            if trace_debug {
                                obs::emit_debug(
                                    "sim",
                                    "sim.run",
                                    "consistency.sync",
                                    &[
                                        ("dataset", d.index().into()),
                                        ("replicas_synced", synced.into()),
                                        ("gb", (new_data_gb[d.index()] * synced as f64).into()),
                                    ],
                                );
                            }
                        }
                        new_data_gb[d.index()] = 0.0;
                    }
                }
                // Keep checking until the query phase has drained.
                let next = now.after_secs(c.check_interval_s);
                if now <= query_horizon {
                    queue.push(next, Event::ConsistencyCheck);
                }
            }
        }
    }

    // --- 4. Report -------------------------------------------------------
    let mut measured_volume = 0.0;
    let mut measured_admitted = 0usize;
    let mut response_sum = 0.0;
    let mut response_max: f64 = 0.0;
    let mut responses = Vec::with_capacity(completed.len());
    for &(q, arrival, finish) in &completed {
        let resp = finish.as_secs_f64() - arrival.as_secs_f64();
        response_sum += resp;
        response_max = response_max.max(resp);
        responses.push(resp);
        if resp <= inst.query(q).deadline + 1e-9 {
            measured_admitted += 1;
            measured_volume += inst.demanded_volume(q);
        }
    }
    responses.sort_by(|a, b| a.partial_cmp(b).expect("finite responses"));
    let percentile = |p: f64| -> f64 {
        if responses.is_empty() {
            0.0
        } else {
            let idx = ((responses.len() as f64 - 1.0) * p).round() as usize;
            responses[idx]
        }
    };
    let planned_volume = plan.admitted_volume(inst);
    let planned_admitted = plan.admitted_count();
    let mean_queue_wait_s = if demands_started == 0 {
        0.0
    } else {
        queue_wait_sum_s / demands_started as f64
    };
    let mean_transfer_s = if transfers == 0 {
        0.0
    } else {
        transfer_sum_s / transfers as f64
    };
    obs::counter("sim.events").add(events_processed);
    obs::counter("sim.demands").add(demands_started);
    obs::counter("sim.demands_queued").add(demands_queued);
    obs::gauge("sim.peak_event_queue").set_max(peak_event_queue as f64);
    obs::emit(
        "sim",
        "sim.run",
        "sim.summary",
        &[
            ("algorithm", alg.name().into()),
            ("events", events_processed.into()),
            ("peak_event_queue", peak_event_queue.into()),
            ("demands", demands_started.into()),
            ("demands_queued", demands_queued.into()),
            ("mean_queue_wait_s", mean_queue_wait_s.into()),
            ("mean_transfer_s", mean_transfer_s.into()),
            ("consistency_gb", consistency_gb.into()),
            ("consistency_rounds", consistency_rounds.into()),
            ("measured_admitted", measured_admitted.into()),
        ],
    );
    TestbedReport {
        algorithm: alg.name(),
        planned_volume,
        planned_admitted,
        measured_volume,
        measured_admitted,
        total_queries: inst.queries().len(),
        measured_throughput: if inst.queries().is_empty() {
            0.0
        } else {
            measured_admitted as f64 / inst.queries().len() as f64
        },
        mean_response_s: if completed.is_empty() {
            0.0
        } else {
            response_sum / completed.len() as f64
        },
        p50_response_s: percentile(0.5),
        p95_response_s: percentile(0.95),
        max_response_s: response_max,
        replication_gb,
        replication_time_s,
        consistency_gb,
        consistency_rounds,
        failovers,
        queries_lost_to_faults: queries_lost,
        mean_queue_wait_s,
        mean_transfer_s,
        events_processed,
        peak_event_queue,
        answers,
        plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{build_testbed_instance, TestbedConfig};
    use edgerep_core::appro::{ApproG, ApproS};
    use edgerep_core::popularity::Popularity;

    fn small_world(f: usize, k: usize) -> TestbedWorld {
        let cfg = TestbedConfig {
            trace: edgerep_workload::mobile_trace::TraceConfig {
                users: 200,
                apps: 30,
                days: 10,
                ..Default::default()
            },
            windows: 6,
            query_count: 20,
            ..Default::default()
        }
        .with_max_datasets_per_query(f)
        .with_max_replicas(k);
        build_testbed_instance(&cfg, 11)
    }

    #[test]
    fn run_produces_consistent_accounting() {
        let world = small_world(2, 3);
        let report = run_testbed(&ApproG::default(), &world, &SimConfig::default());
        assert_eq!(report.total_queries, 20);
        assert!(report.measured_admitted <= report.planned_admitted);
        assert!(report.p50_response_s <= report.p95_response_s);
        assert!(report.p95_response_s <= report.max_response_s + 1e-12);
        assert!(report.p50_response_s >= 0.0);
        assert!(report.measured_volume <= report.planned_volume + 1e-9);
        assert!(report.measured_throughput <= 1.0);
        assert!(report.replication_gb >= 0.0);
        assert!(report.events_processed > 0);
        assert!(report.peak_event_queue >= 1);
        assert!(report.mean_queue_wait_s >= 0.0);
        assert!(report.mean_transfer_s >= 0.0);
        // Every completed query got an answer.
        assert_eq!(
            report.answers.len(),
            report.plan.admitted_count(),
            "all planned-admitted queries complete eventually"
        );
    }

    #[test]
    fn deterministic_given_seeds() {
        let world = small_world(2, 3);
        let a = run_testbed(&ApproG::default(), &world, &SimConfig::default());
        let b = run_testbed(&ApproG::default(), &world, &SimConfig::default());
        assert_eq!(a.measured_admitted, b.measured_admitted);
        assert_eq!(a.measured_volume, b.measured_volume);
        assert_eq!(a.mean_response_s, b.mean_response_s);
    }

    #[test]
    fn appro_beats_popularity_on_the_testbed() {
        // The Fig. 7/8 headline, at one configuration point.
        let world = small_world(3, 2);
        let appro = run_testbed(&ApproG::default(), &world, &SimConfig::default());
        let pop = run_testbed(&Popularity::general(), &world, &SimConfig::default());
        assert!(
            appro.measured_volume >= pop.measured_volume,
            "appro {} < popularity {}",
            appro.measured_volume,
            pop.measured_volume
        );
    }

    #[test]
    fn single_dataset_world_runs_with_appro_s() {
        let world = small_world(1, 3);
        let report = run_testbed(&ApproS::default(), &world, &SimConfig::default());
        assert!(report.measured_admitted <= report.total_queries);
    }

    #[test]
    fn consistency_updates_account_traffic() {
        let world = small_world(2, 3);
        let cfg = SimConfig {
            arrival_rate_per_s: 0.05, // long horizon: many check intervals
            consistency: Some(ConsistencyConfig {
                growth_gb_per_hour: 100.0, // aggressive growth
                threshold: 0.05,
                check_interval_s: 10.0,
            }),
            seed: 3,
            ..Default::default()
        };
        let report = run_testbed(&ApproG::default(), &world, &cfg);
        assert!(
            report.consistency_rounds > 0,
            "aggressive growth must trigger synchronization"
        );
        assert!(report.consistency_gb > 0.0);
    }

    #[test]
    fn no_consistency_config_no_traffic() {
        let world = small_world(2, 3);
        let report = run_testbed(&ApproG::default(), &world, &SimConfig::default());
        assert_eq!(report.consistency_rounds, 0);
        assert_eq!(report.consistency_gb, 0.0);
    }

    #[test]
    fn rejected_queries_never_execute() {
        let world = small_world(4, 1); // tight K: rejections guaranteed
        let report = run_testbed(&ApproG::default(), &world, &SimConfig::default());
        let planned = report.planned_admitted;
        assert!(
            planned < report.total_queries,
            "need rejections for this test"
        );
        assert!(report.answers.len() <= planned);
    }

    #[test]
    fn nic_contention_only_slows_things_down() {
        let world = small_world(3, 3);
        let storm = SimConfig {
            arrival_rate_per_s: 50.0, // heavy overlap: NICs matter
            ..Default::default()
        };
        let free = SimConfig {
            nic_contention: false,
            ..storm
        };
        let with_nic = run_testbed(&ApproG::default(), &world, &storm);
        let without = run_testbed(&ApproG::default(), &world, &free);
        assert!(
            with_nic.mean_response_s >= without.mean_response_s - 1e-9,
            "serialized NICs cannot be faster ({} vs {})",
            with_nic.mean_response_s,
            without.mean_response_s
        );
        assert!(with_nic.measured_admitted <= without.measured_admitted);
    }

    #[test]
    fn replication_skips_origin_copies() {
        // A plan whose only replica sits at the origin moves zero bytes.
        let world = small_world(1, 1);
        let report = run_testbed(&ApproG::default(), &world, &SimConfig::default());
        // Volume moved is bounded by replicas * max size.
        let max_possible: f64 = world
            .instance
            .datasets()
            .iter()
            .map(|d| d.size_gb * world.instance.max_replicas() as f64)
            .sum();
        assert!(report.replication_gb <= max_possible + 1e-9);
    }
}
